//! The paper's Observations 3 and 4 about the execution sets `E_z` / `E_z*`
//! (§3), as executable properties over random schedules.
//!
//! * **Observation 3:** if `α ∈ A(C)` and `β ∈ A(Cα)` then `αβ ∈ A(C)` —
//!   for `E_z*` this is concatenation closure *when the suffix re-earns its
//!   crashes*; for `E_z` (final totals) it is plain additivity. The `E_z*`
//!   form needs care: membership of `β` in `E_z*(Cα)` is a statement about
//!   `β`'s own counters starting from zero, which is exactly how the
//!   [`CrashBudget`] checker treats a schedule, so the concatenation law
//!   holds verbatim.
//! * **Observation 4:** appending a crash-free schedule preserves
//!   membership in both sets.

use proptest::prelude::*;
use rcn::model::{BudgetKind, CrashBudget, Event, ProcessId, Schedule};

fn arb_event(n: u16) -> impl Strategy<Value = Event> {
    (0..n, prop::bool::ANY).prop_map(|(p, crash)| {
        if crash {
            Event::Crash(ProcessId(p))
        } else {
            Event::Step(ProcessId(p))
        }
    })
}

fn arb_schedule(n: u16, max_len: usize) -> impl Strategy<Value = Schedule> {
    prop::collection::vec(arb_event(n), 0..max_len).prop_map(Schedule::from_events)
}

fn arb_crash_free(n: u16, max_len: usize) -> impl Strategy<Value = Schedule> {
    prop::collection::vec(0..n, 0..max_len)
        .prop_map(|pids| Schedule::of_steps(pids.into_iter().map(ProcessId)))
}

proptest! {
    /// Observation 3 for `E_z` and `E_z*`: concatenating two admissible
    /// schedules stays admissible.
    #[test]
    fn observation_3_concatenation(
        alpha in arb_schedule(3, 20),
        beta in arb_schedule(3, 20),
        z in 1usize..3,
    ) {
        let budget = CrashBudget::new(z, 3);
        for kind in [BudgetKind::Final, BudgetKind::EveryPrefix] {
            if budget.admits(&alpha, kind) && budget.admits(&beta, kind) {
                prop_assert!(
                    budget.admits(&alpha.concat(&beta), kind),
                    "α={alpha} β={beta} kind={kind:?}"
                );
            }
        }
    }

    /// Observation 4: appending a crash-free schedule preserves membership.
    #[test]
    fn observation_4_crash_free_extension(
        alpha in arb_schedule(3, 25),
        sigma in arb_crash_free(3, 15),
        z in 1usize..3,
    ) {
        let budget = CrashBudget::new(z, 3);
        for kind in [BudgetKind::Final, BudgetKind::EveryPrefix] {
            if budget.admits(&alpha, kind) {
                prop_assert!(
                    budget.admits(&alpha.concat(&sigma), kind),
                    "α={alpha} σ={sigma} kind={kind:?}"
                );
            }
        }
    }

    /// Crash-free schedules are themselves always admissible (degenerate
    /// form of Observation 4 from the empty execution).
    #[test]
    fn crash_free_schedules_admissible(sigma in arb_crash_free(4, 25), z in 1usize..4) {
        let budget = CrashBudget::new(z, 4);
        prop_assert!(budget.admits(&sigma, BudgetKind::Final));
        prop_assert!(budget.admits(&sigma, BudgetKind::EveryPrefix));
    }

    /// λ_k schedules (the construction's crash bursts) are admissible after
    /// a step by a lower-identifier process, for z·n ≥ n − k crashes.
    #[test]
    fn lambda_after_low_step_is_admissible(k in 1usize..4) {
        let n = 4;
        let budget = CrashBudget::new(1, n);
        // p_{k-1} steps (funding everyone above it), then λ_k.
        let mut sched = Schedule::of_steps([ProcessId((k - 1) as u16)]);
        sched.extend(&Schedule::lambda(k, n));
        prop_assert!(budget.admits(&sched, BudgetKind::EveryPrefix), "{sched}");
        // Without the funding step it is not.
        prop_assert!(
            !budget.admits(&Schedule::lambda(k, n), BudgetKind::EveryPrefix),
            "λ_{k} alone must be inadmissible"
        );
    }
}
