//! Every zoo type round-trips through its table normal form: capturing it
//! with `TableType::from_type` yields a valid table that agrees with the
//! original on every observable (sizes, names, outcomes, readability) and
//! survives a JSON round-trip — and the whole zoo satisfies the analyzer's
//! spec lints without errors.

use rcn::analyze::Registry;
use rcn::spec::zoo::{
    BoundedQueue, BoundedStack, CompareAndSwap, ConsensusObject, FetchAndAdd, MultiConsensus,
    Register, StickyBit, Swap, TeamCounter, TestAndSet, Tnn, WithRead,
};
use rcn::spec::{ObjectType, OpId, Response, TableType, ValueId};

fn zoo() -> Vec<Box<dyn ObjectType>> {
    vec![
        Box::new(Register::new(2)),
        Box::new(Register::new(4)),
        Box::new(TestAndSet::new()),
        Box::new(FetchAndAdd::new(4)),
        Box::new(Swap::new(3)),
        Box::new(CompareAndSwap::new(3)),
        Box::new(StickyBit::new()),
        Box::new(ConsensusObject::new()),
        Box::new(MultiConsensus::new(3)),
        Box::new(BoundedQueue::new(2, 2)),
        Box::new(BoundedStack::new(2, 2)),
        Box::new(Tnn::new(5, 2)),
        Box::new(Tnn::new(3, 1)),
        Box::new(TeamCounter::new(3)),
        Box::new(rcn::shipped_xn(4).expect("shipped X_4")),
        Box::new(WithRead::new(TestAndSet::new())),
        Box::new(WithRead::new(BoundedQueue::new(2, 2))),
    ]
}

#[test]
fn every_zoo_type_round_trips_through_a_valid_table() {
    for ty in zoo() {
        let name = ty.name();
        let table = TableType::from_type(&*ty);
        table
            .validate()
            .unwrap_or_else(|e| panic!("{name}: captured table invalid: {e}"));

        assert_eq!(table.name(), name);
        assert_eq!(table.num_values(), ty.num_values(), "{name}");
        assert_eq!(table.num_ops(), ty.num_ops(), "{name}");
        assert_eq!(table.num_responses(), ty.num_responses(), "{name}");
        assert_eq!(table.is_readable(), ty.is_readable(), "{name}");

        for v in 0..ty.num_values() {
            let value = ValueId(v as u16);
            assert_eq!(table.value_name(value), ty.value_name(value), "{name}");
            for op in 0..ty.num_ops() {
                let op = OpId(op as u16);
                assert_eq!(table.apply(value, op), ty.apply(value, op), "{name}");
            }
        }
        for op in 0..ty.num_ops() {
            let op = OpId(op as u16);
            assert_eq!(table.op_name(op), ty.op_name(op), "{name}");
        }
        for r in 0..ty.num_responses() {
            let r = Response(r as u16);
            assert_eq!(table.response_name(r), ty.response_name(r), "{name}");
        }
    }
}

#[test]
fn every_zoo_table_survives_json() {
    for ty in zoo() {
        let table = TableType::from_type(&*ty);
        let json = serde_json::to_string(&table).unwrap();
        let back: TableType = serde_json::from_str(&json).unwrap();
        assert!(back.validate().is_ok(), "{}", ty.name());
        assert_eq!(back, table, "{}", ty.name());
    }
}

#[test]
fn the_zoo_is_lint_error_free() {
    let registry = Registry::with_defaults();
    for ty in zoo() {
        let report = registry.lint_type(&*ty);
        assert_eq!(
            report.errors(),
            0,
            "{}:\n{}",
            ty.name(),
            report.render_text()
        );
    }
}
