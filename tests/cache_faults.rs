//! The disk-cache fail-point sweep: inject a filesystem fault at *every*
//! I/O operation the cache performs — each read, write, rename, and
//! directory creation, in hard-error, torn-write (truncation),
//! write-reordering, and write-duplication flavors — and demand the same
//! classification as a fault-free run at every single injection point,
//! with zero panics and no lasting damage (the next clean run
//! self-repairs back to a warm cache).
//!
//! This is the executable form of the cache's availability contract: the
//! persistent layer is an *accelerator*, so no single filesystem fault may
//! change an answer or crash a search.

use rcn::decide::{CacheIo, DiskCache, FaultMode, FaultyIo, SearchEngine, TypeClassification};
use rcn::spec::zoo::TestAndSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const CAP: usize = 4;

/// A fresh per-test scratch directory (no tempfile crate in the tree).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcn-cache-faults-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn classify_with_io(dir: &Path, io: Arc<FaultyIo>) -> TypeClassification {
    let engine =
        SearchEngine::sequential().with_disk_cache(DiskCache::with_io(dir, io as Arc<dyn CacheIo>));
    engine
        .classify(&TestAndSet::new(), CAP)
        .expect("cap in range")
}

fn assert_same(a: &TypeClassification, b: &TypeClassification, ctx: &str) {
    assert_eq!(a.discerning, b.discerning, "{ctx}: discerning");
    assert_eq!(a.recording, b.recording, "{ctx}: recording");
    assert_eq!(a.consensus_number, b.consensus_number, "{ctx}: CN");
    assert_eq!(
        a.recoverable_consensus_number, b.recoverable_consensus_number,
        "{ctx}: RCN"
    );
}

/// The fault-free baseline, plus the number of I/O operations a cold and a
/// warm run perform — the sweep's injection points.
fn baseline() -> (TypeClassification, u64, u64) {
    let dir = scratch("baseline");
    let cold_io = Arc::new(FaultyIo::counting());
    let reference = classify_with_io(&dir, cold_io.clone());
    let cold_ops = cold_io.ops_seen();
    let warm_io = Arc::new(FaultyIo::counting());
    let warm = classify_with_io(&dir, warm_io.clone());
    let warm_ops = warm_io.ops_seen();
    assert_same(&reference, &warm, "fault-free warm run");
    assert!(cold_ops > 0, "cold run must touch the disk");
    assert!(warm_ops > 0, "warm run must touch the disk");
    std::fs::remove_dir_all(&dir).ok();
    (reference, cold_ops, warm_ops)
}

#[test]
fn every_cold_run_injection_point_falls_back_to_recompute() {
    let (reference, cold_ops, _) = baseline();
    let mut injected_points = 0;
    for mode in [
        FaultMode::Error,
        FaultMode::Truncate,
        FaultMode::Reorder,
        FaultMode::Duplicate,
    ] {
        for k in 0..cold_ops {
            let dir = scratch(&format!("cold-{mode:?}-{k}"));
            let io = Arc::new(FaultyIo::new(k, mode));
            let hurt = classify_with_io(&dir, io.clone());
            assert_same(&reference, &hurt, &format!("cold sweep {mode:?} @ op {k}"));
            assert_eq!(io.injected(), 1, "cold {mode:?} @ {k}: fault must fire");
            injected_points += 1;

            // Self-repair: whatever the fault left behind (a missing entry,
            // a truncated file now quarantined to `.bad`), the next clean
            // run still answers correctly — and the run after that is warm.
            let clean = classify_with_io(&dir, Arc::new(FaultyIo::counting()));
            assert_same(&reference, &clean, &format!("repair after {mode:?} @ {k}"));
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    // 100% coverage in all four modes, by construction of the loop bounds.
    assert_eq!(injected_points, 4 * cold_ops);
}

#[test]
fn every_warm_run_injection_point_falls_back_to_recompute() {
    let (reference, _, warm_ops) = baseline();
    for mode in [
        FaultMode::Error,
        FaultMode::Truncate,
        FaultMode::Reorder,
        FaultMode::Duplicate,
    ] {
        for k in 0..warm_ops {
            let dir = scratch(&format!("warm-{mode:?}-{k}"));
            // Populate the cache cleanly first; the fault then hits one of
            // the warm run's reads (or its re-persist traffic).
            let reference_again = classify_with_io(&dir, Arc::new(FaultyIo::counting()));
            assert_same(&reference, &reference_again, "clean populate");

            let io = Arc::new(FaultyIo::new(k, mode));
            let hurt = classify_with_io(&dir, io.clone());
            assert_same(&reference, &hurt, &format!("warm sweep {mode:?} @ op {k}"));
            assert_eq!(io.injected(), 1, "warm {mode:?} @ {k}: fault must fire");

            let clean = classify_with_io(&dir, Arc::new(FaultyIo::counting()));
            assert_same(&reference, &clean, &format!("repair after {mode:?} @ {k}"));
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn torn_writes_are_caught_by_the_next_reader_and_quarantined() {
    // A truncating write *reports success* — the half-written file can only
    // be caught by the next run's validation. Sweep every cold-run
    // injection point and demand the quarantine actually happens somewhere:
    // at least one fault lands on an entry write, whose torn file the next
    // run must move to `.bad` (not silently delete) while still answering
    // correctly — and `.bad` litter never breaks the run after that.
    let (reference, cold_ops, _) = baseline();
    let mut saw_quarantine = false;
    for k in 0..cold_ops {
        let dir = scratch(&format!("quarantine-{k}"));
        let io = Arc::new(FaultyIo::new(k, FaultMode::Truncate));
        let hurt = classify_with_io(&dir, io.clone());
        assert_same(&reference, &hurt, &format!("torn op {k}"));
        assert_eq!(io.injected(), 1, "op {k}: fault must fire");

        let after = classify_with_io(&dir, Arc::new(FaultyIo::counting()));
        assert_same(&reference, &after, &format!("run discovering torn op {k}"));
        let quarantined = std::fs::read_dir(&dir)
            .expect("cache dir exists")
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "bad"))
            .count();
        if quarantined > 0 {
            saw_quarantine = true;
            // Quarantined litter never breaks later runs.
            let third = classify_with_io(&dir, Arc::new(FaultyIo::counting()));
            assert_same(&reference, &third, &format!("litter after op {k}"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(
        saw_quarantine,
        "some torn write must end in a .bad quarantine across the sweep"
    );
}

#[test]
fn sweep_coverage_is_printable() {
    // Not an assertion-bearing test so much as the experiment's coverage
    // record: how many injection points each sweep covers (see
    // EXPERIMENTS.md E13). Kept as a test so the numbers cannot rot.
    let (_, cold_ops, warm_ops) = baseline();
    println!("cold-run injection points per mode: {cold_ops}");
    println!("warm-run injection points per mode: {warm_ops}");
    println!("total swept (4 modes): {}", 4 * (cold_ops + warm_ops));
    assert!(
        cold_ops >= 3,
        "cold run: create_dir + write + rename at least"
    );
    assert!(warm_ops >= 1, "warm run: at least one read");
}
