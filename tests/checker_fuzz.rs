//! Soundness fuzzing of the model checker: generate random (mostly broken)
//! protocols and check the two engines against each other.
//!
//! * If a random crashy *drive* stumbles on a safety violation, the
//!   exhaustive checker must also find one (the checker never under-reports).
//! * If the exhaustive checker says a protocol is correct, no drive under
//!   any seed may find a violation, and every drive that decides must
//!   decide unanimously.

use proptest::prelude::*;
use rcn::model::{
    drive, Action, CrashBudget, CrashyAdversary, HeapLayout, LocalState, ObjectId, ProcessId,
    Program, System,
};
use rcn::spec::zoo::Register;
use rcn::spec::{OpId, Response, ValueId};
use rcn::valency::{check_consensus, Verdict};
use std::sync::Arc;

/// A random table-driven program over one shared register.
///
/// States `0..s` are "active": state `k` invokes a random op and moves to a
/// random next state per response; states `s..s+2` are output states for
/// 0 and 1.
#[derive(Debug, Clone)]
struct RandomProgram {
    reg: ObjectId,
    active_states: usize,
    /// `op[state]`: the register op invoked in that state.
    op: Vec<u16>,
    /// `next[state][response]`: successor state.
    next: Vec<Vec<u32>>,
    /// Initial state per input value (0 or 1).
    start: [u32; 2],
}

impl Program for RandomProgram {
    fn name(&self) -> String {
        "random-program".into()
    }

    fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
        LocalState::word1(self.start[input as usize])
    }

    fn action(&self, _pid: ProcessId, state: &LocalState) -> Action {
        let s = state.word(0) as usize;
        if s < self.active_states {
            Action::Invoke {
                object: self.reg,
                op: OpId::new(self.op[s]),
            }
        } else {
            Action::Output((s - self.active_states) as u32)
        }
    }

    fn transition(&self, _pid: ProcessId, state: &LocalState, response: Response) -> LocalState {
        let s = state.word(0) as usize;
        LocalState::word1(self.next[s][response.index()])
    }
}

fn build_system(
    active_states: usize,
    op: Vec<u16>,
    next: Vec<Vec<u32>>,
    start: [u32; 2],
    inputs: Vec<u32>,
) -> System {
    let mut layout = HeapLayout::new();
    let reg = layout.add_object("R", Arc::new(Register::new(2)), ValueId::new(0));
    System::new(
        Arc::new(RandomProgram {
            reg,
            active_states,
            op,
            next,
            start,
        }),
        Arc::new(layout),
        inputs,
    )
}

/// Strategy: a random program with `s` active states over a binary
/// register (3 ops, 3 responses).
fn arb_program(s: usize) -> impl Strategy<Value = (Vec<u16>, Vec<Vec<u32>>, [u32; 2])> {
    let total = (s + 2) as u32;
    (
        prop::collection::vec(0u16..3, s),
        prop::collection::vec(prop::collection::vec(0u32..total, 3), s + 2),
        prop::collection::vec(0u32..total, 2),
    )
        .prop_map(|(op, next, start)| (op, next, [start[0], start[1]]))
}

/// The shrunk cases from `checker_fuzz.proptest-regressions`, replayed as
/// plain unit tests so they run under any property-test runner (the
/// offline stand-in does not consume proptest's seed files).
mod regressions {
    use super::*;

    /// `cc e1cf9cd7…`: a program whose input-0 start state is an output
    /// state (outputs 0 immediately) while input 1 wanders the table —
    /// historically a checker/driver divergence on time-zero outputs.
    #[test]
    fn soundness_holds_for_time_zero_output_program() {
        let op = vec![0u16, 1, 0, 0];
        let next = vec![
            vec![0u32, 0, 4],
            vec![0, 0, 3],
            vec![0, 0, 0],
            vec![0, 0, 0],
            vec![0, 0, 0],
            vec![0, 0, 0],
        ];
        let start = [0u32, 5];
        let sys = build_system(4, op, next, start, vec![0, 1]);
        let report = check_consensus(&sys, 500_000).expect("small state space");
        let mut adv = CrashyAdversary::new(0, 0.3, CrashBudget::new(1, 2));
        let run = drive(&sys, &mut adv, 2_000);
        if matches!(report.verdict, Verdict::Correct) {
            assert!(run.violation.is_none(), "drive found what checker missed");
            assert!(
                run.config.outputs().len() <= 1,
                "disagreement in a checker-correct protocol"
            );
        }
    }

    /// `cc 38231946…`: both start states are output states (4 → output 1,
    /// 3 → output 0), so the counterexample prefix is empty — replay must
    /// go through `check_initial_outputs`, not `run_from_start`.
    #[test]
    fn empty_prefix_counterexamples_replay_at_time_zero() {
        let op = vec![0u16, 0, 0];
        let next = vec![vec![0u32; 3]; 5];
        let start = [4u32, 3];
        let sys = build_system(3, op, next, start, vec![0, 1]);
        let report = check_consensus(&sys, 500_000).expect("small state space");
        if let Verdict::Unsafe { counterexample, .. } = &report.verdict {
            if counterexample.prefix.is_empty() {
                let config = sys.initial_config();
                assert!(sys.check_initial_outputs(&config).is_some());
            } else {
                let (_, violation) = sys.run_from_start(&counterexample.prefix);
                assert!(
                    violation.is_some(),
                    "stale counterexample {}",
                    counterexample.prefix
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drive-found violations imply checker-found violations, and
    /// checker-correct protocols never misbehave under any drive.
    #[test]
    fn checker_is_sound_for_random_programs(
        (op, next, start) in arb_program(4),
        seed in 0u64..1_000,
    ) {
        let sys = build_system(4, op, next, start, vec![0, 1]);
        let report = check_consensus(&sys, 500_000).expect("small state space");
        let mut adv = CrashyAdversary::new(seed, 0.3, CrashBudget::new(1, 2));
        let run = drive(&sys, &mut adv, 2_000);
        match &report.verdict {
            Verdict::Correct => {
                prop_assert!(run.violation.is_none(), "drive found what checker missed");
                prop_assert!(
                    run.config.outputs().len() <= 1,
                    "disagreement in a checker-correct protocol"
                );
            }
            _ => {
                // Broken protocols may or may not misbehave under this
                // particular seed; nothing to assert beyond not panicking.
            }
        }
    }

    /// The converse direction on safety: replaying a checker counterexample
    /// always reproduces the violation.
    #[test]
    fn checker_counterexamples_always_replay(
        (op, next, start) in arb_program(3),
    ) {
        let sys = build_system(3, op, next, start, vec![0, 1]);
        let report = check_consensus(&sys, 500_000).expect("small state space");
        if let Verdict::Unsafe { counterexample, .. } = &report.verdict {
            if counterexample.prefix.is_empty() {
                // Time-zero violation: outputs in the initial configuration.
                let config = sys.initial_config();
                prop_assert!(sys.check_initial_outputs(&config).is_some());
            } else {
                let (_, violation) = sys.run_from_start(&counterexample.prefix);
                prop_assert!(violation.is_some(), "stale counterexample {}", counterexample.prefix);
            }
        }
    }
}
