//! Differential tests: the parallel search engine must agree with the
//! sequential deciders on every membership question and every computed
//! level, for the whole readable zoo — and parallel runs must be
//! level-deterministic (witnesses may differ; levels may not).

use rcn::decide::{
    check_discerning, check_recording, discerning_number, is_n_discerning, is_n_recording,
    recording_number, Analysis, PartitionSharding, SearchEngine,
};
use rcn::spec::zoo::{
    CompareAndSwap, ConsensusObject, FetchAndAdd, Register, StickyBit, Swap, TeamCounter,
    TestAndSet, Tnn,
};
use rcn::spec::{ObjectType, OpId, ValueId};

const CAP: usize = 4;

fn zoo() -> Vec<Box<dyn ObjectType + Send + Sync>> {
    vec![
        Box::new(Register::new(2)),
        Box::new(TestAndSet::new()),
        Box::new(FetchAndAdd::new(4)),
        Box::new(Swap::new(2)),
        Box::new(CompareAndSwap::new(3)),
        Box::new(StickyBit::new()),
        Box::new(ConsensusObject::new()),
        Box::new(Tnn::new(4, 2)),
        Box::new(TeamCounter::new(4)),
    ]
}

#[test]
fn engine_membership_matches_sequential_for_whole_zoo() {
    let engine = SearchEngine::new(4);
    for ty in zoo() {
        for n in 2..=CAP {
            assert_eq!(
                engine
                    .find_recording_witness(&*ty, n)
                    .expect("level in range")
                    .is_some(),
                is_n_recording(&*ty, n),
                "{}: is_n_recording({n})",
                ty.name()
            );
            assert_eq!(
                engine
                    .find_discerning_witness(&*ty, n)
                    .expect("level in range")
                    .is_some(),
                is_n_discerning(&*ty, n),
                "{}: is_n_discerning({n})",
                ty.name()
            );
        }
    }
}

#[test]
fn engine_levels_match_sequential_for_whole_zoo() {
    let engine = SearchEngine::new(4);
    for ty in zoo() {
        let seq = recording_number(&*ty, CAP);
        let par = engine.recording_number(&*ty, CAP).expect("cap in range");
        assert_eq!(par.level, seq.level, "{}: recording level", ty.name());
        assert_eq!(par.capped, seq.capped, "{}: recording capped", ty.name());

        let seq = discerning_number(&*ty, CAP);
        let par = engine.discerning_number(&*ty, CAP).expect("cap in range");
        assert_eq!(par.level, seq.level, "{}: discerning level", ty.name());
        assert_eq!(par.capped, seq.capped, "{}: discerning capped", ty.name());
    }
}

#[test]
fn engine_witnesses_are_valid_certificates() {
    // Witnesses from a parallel search may differ from the sequential ones
    // (and between runs); each must still replay through the independent
    // checkers.
    let engine = SearchEngine::new(4);
    for ty in zoo() {
        let rec = engine.recording_number(&*ty, CAP).expect("cap in range");
        if let Some(w) = &rec.witness {
            assert_eq!(
                check_recording(&*ty, w),
                Ok(true),
                "{}: recording witness replays",
                ty.name()
            );
        }
        let dis = engine.discerning_number(&*ty, CAP).expect("cap in range");
        if let Some(w) = &dis.witness {
            assert_eq!(
                check_discerning(&*ty, w),
                Ok(true),
                "{}: discerning witness replays",
                ty.name()
            );
        }
    }
}

#[test]
fn parallel_runs_are_level_deterministic() {
    let ty = Tnn::new(4, 1);
    let reference = SearchEngine::new(4)
        .classify(&ty, CAP)
        .expect("cap in range");
    for round in 0..5 {
        let again = SearchEngine::new(4)
            .classify(&ty, CAP)
            .expect("cap in range");
        assert_eq!(
            again.recording.level, reference.recording.level,
            "round {round}: recording level"
        );
        assert_eq!(
            again.discerning.level, reference.discerning.level,
            "round {round}: discerning level"
        );
        assert_eq!(again.consensus_number, reference.consensus_number);
        assert_eq!(
            again.recoverable_consensus_number,
            reference.recoverable_consensus_number
        );
    }
}

#[test]
fn partition_sharded_search_matches_sequential_for_whole_zoo() {
    // Partition-level sharding changes the task grain (chunks of one
    // instance's partitions instead of whole instances), not the answers:
    // forced-on sharding must agree with the sequential deciders on every
    // level across the zoo, at both thread counts.
    for threads in [1usize, 4] {
        let engine = SearchEngine::new(threads).with_partition_sharding(PartitionSharding::Always);
        for ty in zoo() {
            let seq = recording_number(&*ty, CAP);
            let par = engine.recording_number(&*ty, CAP).expect("cap in range");
            assert_eq!(
                par.level,
                seq.level,
                "{} (threads={threads}): sharded recording level",
                ty.name()
            );
            assert_eq!(par.capped, seq.capped);
            if let Some(w) = &par.witness {
                assert_eq!(check_recording(&*ty, w), Ok(true), "{}", ty.name());
            }

            let seq = discerning_number(&*ty, CAP);
            let par = engine.discerning_number(&*ty, CAP).expect("cap in range");
            assert_eq!(
                par.level,
                seq.level,
                "{} (threads={threads}): sharded discerning level",
                ty.name()
            );
            assert_eq!(par.capped, seq.capped);
            if let Some(w) = &par.witness {
                assert_eq!(check_discerning(&*ty, w), Ok(true), "{}", ty.name());
            }
        }
    }
}

#[test]
fn sequential_sharded_witnesses_are_canonical() {
    // With one worker the sharded task list still visits (instance,
    // partition) pairs in sequential order, so the returned witness must be
    // identical to the unsharded engine's — not merely valid.
    let base = SearchEngine::sequential().with_partition_sharding(PartitionSharding::Never);
    let sharded = SearchEngine::sequential().with_partition_sharding(PartitionSharding::Always);
    for ty in zoo() {
        for n in 2..=CAP {
            assert_eq!(
                sharded.find_recording_witness(&*ty, n).unwrap(),
                base.find_recording_witness(&*ty, n).unwrap(),
                "{}: recording witness at n={n}",
                ty.name()
            );
            assert_eq!(
                sharded.find_discerning_witness(&*ty, n).unwrap(),
                base.find_discerning_witness(&*ty, n).unwrap(),
                "{}: discerning witness at n={n}",
                ty.name()
            );
        }
    }
}

/// All non-decreasing `n`-element op sequences over `num_ops` operations —
/// exactly the sorted multisets the search space enumerates.
fn op_multisets(num_ops: usize, n: usize) -> Vec<Vec<OpId>> {
    fn go(num_ops: usize, n: usize, min: usize, prefix: &mut Vec<OpId>, out: &mut Vec<Vec<OpId>>) {
        if prefix.len() == n {
            out.push(prefix.clone());
            return;
        }
        for op in min..num_ops {
            prefix.push(OpId::new(op as u16));
            go(num_ops, n, op, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    go(num_ops, n, 0, &mut Vec::new(), &mut out);
    out
}

#[test]
fn analysis_construction_paths_are_bit_identical_across_zoo() {
    // The kernelized default, the bit-at-a-time scalar reference, the
    // popcount-wave parallel path, and the incremental extend chain are
    // four implementations of the same function. Sweep every instance of
    // the zoo up to the differential cap and require full structural
    // equality (firsts, value sets, and pair sets all compared by Eq) —
    // not just equal verdicts downstream.
    for ty in zoo() {
        for n in 2..=CAP {
            for ops in op_multisets(ty.num_ops(), n) {
                for u in 0..ty.num_values() {
                    let u = ValueId::new(u as u16);
                    let kernel = Analysis::new(&*ty, u, &ops);
                    let ctx = || format!("{} u={} ops={:?}", ty.name(), u.index(), ops);
                    assert_eq!(kernel, Analysis::new_scalar(&*ty, u, &ops), "{}", ctx());
                    assert_eq!(
                        kernel,
                        Analysis::with_threads(&*ty, u, &ops, 4),
                        "{}",
                        ctx()
                    );
                    // Chain extend from the single-process base. Every
                    // prefix of a sorted multiset is itself a valid
                    // smaller instance.
                    let mut chained = Analysis::new(&*ty, u, &ops[..1]);
                    for m in 2..=n {
                        chained = Analysis::extend(&*ty, u, &chained, &ops[..m], 1);
                    }
                    assert_eq!(kernel, chained, "extend chain: {}", ctx());
                }
            }
        }
    }
}

#[test]
fn incremental_engine_matches_from_scratch_across_zoo() {
    // Seeding level n+1 analyses from memoized level-n prefixes must not
    // change a single verdict. Classify the whole zoo both ways and also
    // check the counters prove which path ran.
    let mut total_incremental = 0;
    for ty in zoo() {
        let seeded = SearchEngine::sequential().with_incremental(true);
        let scratch = SearchEngine::sequential().with_incremental(false);
        let a = seeded.classify(&*ty, CAP).expect("cap in range");
        let b = scratch.classify(&*ty, CAP).expect("cap in range");
        assert_eq!(
            a.recording.level,
            b.recording.level,
            "{}: recording level",
            ty.name()
        );
        assert_eq!(
            a.discerning.level,
            b.discerning.level,
            "{}: discerning level",
            ty.name()
        );
        assert_eq!(a.consensus_number, b.consensus_number, "{}", ty.name());
        assert_eq!(
            a.recoverable_consensus_number,
            b.recoverable_consensus_number,
            "{}",
            ty.name()
        );
        assert_eq!(
            scratch.stats().incremental_hits,
            0,
            "{}: disabled engine must never extend",
            ty.name()
        );
        total_incremental += seeded.stats().incremental_hits;
    }
    assert!(
        total_incremental > 0,
        "incremental seeding never fired across the zoo"
    );
}

#[test]
fn analysis_threads_do_not_change_sequential_witnesses() {
    // Intra-analysis parallelism nests inside the search; with one search
    // worker the visit order is unchanged, so the witnesses must be
    // identical to the baseline engine's — not merely valid.
    let base = SearchEngine::sequential();
    let threaded = SearchEngine::sequential().with_analysis_threads(4);
    for ty in zoo() {
        for n in 2..=CAP {
            assert_eq!(
                threaded.find_recording_witness(&*ty, n).unwrap(),
                base.find_recording_witness(&*ty, n).unwrap(),
                "{}: recording witness at n={n}",
                ty.name()
            );
            assert_eq!(
                threaded.find_discerning_witness(&*ty, n).unwrap(),
                base.find_discerning_witness(&*ty, n).unwrap(),
                "{}: discerning witness at n={n}",
                ty.name()
            );
        }
    }
}

#[test]
fn classify_reports_cache_hits() {
    // `classify` runs both deciders over the same instance space; the
    // second scan must be served (partly) from the shared analysis cache.
    for threads in [1usize, 4] {
        let engine = SearchEngine::new(threads);
        engine
            .classify(&TestAndSet::new(), CAP)
            .expect("cap in range");
        let stats = engine.stats();
        assert!(
            stats.cache_hits > 0,
            "threads={threads}: expected cache hits, got {stats}"
        );
        assert!(stats.analyses_computed > 0);
        assert!(stats.instances_visited >= stats.analyses_computed);
    }
}
