//! Replay fidelity across the protocol zoo: every schedule the crash
//! explorer reports must mean the same thing everywhere — bit-identical
//! outputs when the abstract executor re-runs it, and the same outputs and
//! the same violation when the threaded runtime executes it over simulated
//! non-volatile memory. A counterexample that only reproduces in the model
//! that found it is not a counterexample.
//!
//! Also pins the two schedules the explorer *rediscovers from scratch*
//! (Golab's test&set separation and `T_{2,1}`'s ⊥-divergence): they are
//! deterministic, so any drift in the search order or the executor shows
//! up here as a changed schedule.

use rcn::faults::{crashtest, replay, shrink_counterexample, CrashtestConfig};
use rcn::model::{Execution, Schedule, System};
use rcn::protocols::{TasConsensus, TnnRecoverable, TnnWaitFree, TournamentConsensus};
use rcn::runtime::run_schedule;
use rcn::spec::zoo::{CompareAndSwap, StickyBit};
use std::sync::Arc;

/// The protocol zoo under test: name, system, and whether the default
/// crash budget is expected to break it.
fn zoo() -> Vec<(&'static str, System, bool)> {
    vec![
        ("tas", TasConsensus::system(vec![0, 1]), true),
        (
            "tnn-wait-free:2,1",
            TnnWaitFree::system(2, 1, vec![0, 1]),
            true,
        ),
        (
            "tnn-recoverable:5,2",
            TnnRecoverable::system(5, 2, vec![0, 1]),
            false,
        ),
        (
            "tournament:sticky",
            TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![1, 0]).unwrap(),
            false,
        ),
        (
            "tournament:cas",
            TournamentConsensus::try_new(Arc::new(CompareAndSwap::new(3)), vec![0, 1]).unwrap(),
            false,
        ),
        (
            "tournament:sticky x3",
            TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![0, 1, 1]).unwrap(),
            false,
        ),
    ]
}

/// Abstract determinism: recording the same schedule twice is bit-identical.
fn assert_abstract_replay_is_deterministic(sys: &System, schedule: &Schedule, ctx: &str) {
    let a = Execution::record(sys, schedule);
    let b = Execution::record(sys, schedule);
    assert_eq!(a.outputs(), b.outputs(), "{ctx}: outputs drifted");
    assert_eq!(
        a.first_violation(),
        b.first_violation(),
        "{ctx}: violation drifted"
    );
}

#[test]
fn every_zoo_counterexample_replays_identically_through_both_executors() {
    for (name, sys, breaks) in zoo() {
        let report = crashtest(&sys, CrashtestConfig::default());
        match report.counterexample {
            Some(cex) => {
                assert!(breaks, "{name}: unexpected counterexample: {cex}");
                for (tag, schedule) in [
                    ("raw", cex.schedule.clone()),
                    ("shrunk", shrink_counterexample(&sys, &cex).schedule),
                ] {
                    let ctx = format!("{name} ({tag})");
                    assert_abstract_replay_is_deterministic(&sys, &schedule, &ctx);
                    let rep = replay(&sys, &schedule);
                    assert!(
                        rep.confirmed(),
                        "{ctx}: threaded replay must confirm the violation: {rep}"
                    );
                }
            }
            None => {
                assert!(!breaks, "{name}: expected a counterexample, found none");
                assert!(
                    report.is_certified_clean(),
                    "{name}: clean but not exhaustive at the default budget: {}",
                    report.stats
                );
            }
        }
    }
}

#[test]
fn clean_protocol_schedules_agree_across_executors_too() {
    // Fidelity is not only about violations: on correct protocols, crashy
    // schedules must produce the same outputs through the threaded runtime
    // as through the abstract executor (and no violation in either).
    let schedules = [
        "p0 p1 p0 p1 p0 p1 p0 p1 p0 p1 p0 p1 p0 p1",
        "p0 c0 p0 p1 c1 p1 p0 p1 p0 p1 p0 p1 p0 p1 p0 p1",
        "p1 p1 c1 p0 p0 c0 p0 p1 p0 p1 p0 p1 p0 p1 p0 p1",
    ];
    for (name, sys, breaks) in zoo() {
        if breaks {
            continue;
        }
        for text in schedules {
            let schedule: Schedule = text.parse().unwrap();
            let ctx = format!("{name} on `{text}`");
            assert_abstract_replay_is_deterministic(&sys, &schedule, &ctx);
            let exec = Execution::record(&sys, &schedule);
            assert_eq!(exec.first_violation(), None, "{ctx}: abstract violation");
            let threaded = run_schedule(&sys, &schedule);
            assert_eq!(threaded.violation, None, "{ctx}: threaded violation");
            assert_eq!(
                exec.outputs(),
                &threaded.outputs[..],
                "{ctx}: executors disagree on outputs"
            );
            assert_eq!(threaded.trace, schedule, "{ctx}: trace must be faithful");
        }
    }
}

#[test]
fn the_rediscovered_schedules_are_pinned() {
    // Golab's separation: the explorer rediscovers a crash-then-retry
    // schedule against test&set consensus and shrinks it to 7 events.
    let sys = TasConsensus::system(vec![0, 1]);
    let report = crashtest(&sys, CrashtestConfig::default());
    let cex = report.counterexample.expect("tas breaks under one crash");
    assert_eq!(cex.schedule.to_string(), "p0 p0 p1 p1 p1 c0 p0 p0 p0");
    let minimal = shrink_counterexample(&sys, &cex);
    assert_eq!(minimal.schedule.to_string(), "p0 p0 p1 c0 p0 p0 p0");
    assert_eq!(
        minimal.violation.to_string(),
        "agreement violated: p0 output 1, earlier output 0"
    );

    // T_{2,1}: the ⊥-divergence needs only four events, and the raw
    // discovery is already minimal.
    let sys = TnnWaitFree::system(2, 1, vec![0, 1]);
    let report = crashtest(&sys, CrashtestConfig::default());
    let cex = report.counterexample.expect("T_{2,1} diverges after ⊥");
    assert_eq!(cex.schedule.to_string(), "p1 p0 c0 p0");
    let minimal = shrink_counterexample(&sys, &cex);
    assert_eq!(minimal.schedule.to_string(), "p1 p0 c0 p0");
    let divergence = minimal.divergence.expect("the violation is a divergence");
    assert_eq!(divergence.to_string(), "p0 diverged: output 1 then 0");
}
