//! Tracing transparency: observability must never perturb results.
//!
//! The tracer only *reads* the computations it watches, so every verdict —
//! classification levels, witnesses, crashtest counterexamples — must be
//! bit-identical with tracing on and off. These tests pin that across the
//! curated zoo, random readable tables (proptest), and every sink kind
//! (disabled, metrics-only, ring, JSONL), and check the JSONL schema
//! itself: every emitted line parses back via serde and span opens and
//! closes balance exactly.

use proptest::prelude::*;
use rcn::decide::{synthesis, SearchEngine};
use rcn::faults::{crashtest, crashtest_traced, CrashtestConfig};
use rcn::obs::{parse_jsonl, TraceEvent, Tracer, KIND_CLOSE, KIND_OPEN};
use rcn::protocols::{TasConsensus, TnnRecoverable, TnnWaitFree};
use rcn::spec::zoo::{FetchAndAdd, StickyBit, TeamCounter, TestAndSet};
use rcn::spec::ObjectType;
use std::collections::HashMap;

fn trace_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rcn-transparency-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Every span open must have exactly one close with the same id and name,
/// and no close may appear before its open.
fn assert_spans_balance(events: &[TraceEvent]) {
    let mut open: HashMap<u64, &str> = HashMap::new();
    for e in events {
        match e.kind.as_str() {
            k if k == KIND_OPEN => {
                assert!(
                    open.insert(e.id, &e.name).is_none(),
                    "span id {} opened twice",
                    e.id
                );
            }
            k if k == KIND_CLOSE => {
                let name = open
                    .remove(&e.id)
                    .unwrap_or_else(|| panic!("close without open: {e:?}"));
                assert_eq!(name, e.name, "close renames span {}", e.id);
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "unclosed spans at end of trace: {open:?}");
}

#[test]
fn zoo_classifications_are_identical_under_every_sink() {
    let dir = trace_dir();
    let types: Vec<(&str, Box<dyn ObjectType + Sync>)> = vec![
        ("tas", Box::new(TestAndSet::new())),
        ("sticky", Box::new(StickyBit::new())),
        ("faa", Box::new(FetchAndAdd::new(6))),
        ("team-counter", Box::new(TeamCounter::new(4))),
    ];
    for (name, ty) in &types {
        let baseline = SearchEngine::sequential()
            .classify(ty.as_ref(), 4)
            .expect("cap in range");
        for sink in ["metrics", "ring", "jsonl"] {
            let tracer = match sink {
                "metrics" => Tracer::metrics_only(),
                "ring" => Tracer::ring(1 << 16),
                _ => Tracer::to_jsonl(dir.join(format!("{name}.jsonl"))).expect("open trace"),
            };
            let traced = SearchEngine::sequential()
                .with_tracer(tracer.clone())
                .classify(ty.as_ref(), 4)
                .expect("cap in range");
            assert_eq!(
                traced, baseline,
                "{name}: classification differs under the {sink} sink"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crashtest_verdicts_are_identical_with_tracing_on() {
    let systems = [
        TasConsensus::system(vec![0, 1]),
        TnnWaitFree::system(2, 1, vec![0, 1]),
        TnnRecoverable::system(5, 2, vec![0, 1]),
    ];
    let config = CrashtestConfig {
        max_crashes: 1,
        max_depth: 8,
        ..Default::default()
    };
    for sys in &systems {
        let plain = crashtest(sys, config);
        let tracer = Tracer::ring(1 << 14);
        let traced = crashtest_traced(sys, config, &tracer);
        assert_eq!(traced, plain, "tracing perturbed a crashtest verdict");
        assert_spans_balance(&tracer.ring_events());
    }
}

#[test]
fn jsonl_traces_parse_and_balance() {
    let dir = trace_dir();
    let path = dir.join("schema.jsonl");
    {
        let tracer = Tracer::to_jsonl(&path).expect("open trace");
        let engine = SearchEngine::sequential().with_tracer(tracer.clone());
        engine
            .classify(&TeamCounter::new(5), 4)
            .expect("cap in range");
        crashtest_traced(
            &TasConsensus::system(vec![0, 1]),
            CrashtestConfig::default(),
            &tracer,
        );
        tracer.flush().expect("flush");
    }
    let text = std::fs::read_to_string(&path).expect("read trace");
    let events = parse_jsonl(&text).expect("every line is a valid TraceEvent");
    assert!(!events.is_empty());
    assert_spans_balance(&events);
    // The flat schema: ids are unique and positive, timestamps monotone
    // per thread.
    let mut seen = std::collections::HashSet::new();
    let mut last_t: HashMap<u64, u64> = HashMap::new();
    for e in &events {
        assert!(e.id > 0, "row ids start at 1: {e:?}");
        if e.kind != KIND_CLOSE {
            assert!(seen.insert(e.id), "duplicate row id {}", e.id);
        }
        let last = last_t.entry(e.thread).or_insert(0);
        assert!(
            e.t_ns >= *last,
            "timestamps must be monotone per thread: {e:?}"
        );
        *last = e.t_ns;
    }
    // Both subsystems landed in one trace.
    assert!(events.iter().any(|e| e.name == "engine.level"));
    assert!(events.iter().any(|e| e.name == "crashtest.explore"));
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Classification of random readable tables is bit-identical with the
    /// tracer attached — across the full verdict, including witnesses.
    #[test]
    fn random_table_classification_is_tracing_invariant(seed in 0u64..400) {
        let mut rng = synthesis::rng(seed);
        let t = synthesis::random_readable_table(&mut rng, 4, 2);
        let plain = SearchEngine::sequential().classify(&t, 3).expect("cap in range");
        let traced = SearchEngine::sequential()
            .with_tracer(Tracer::ring(1 << 14))
            .classify(&t, 3)
            .expect("cap in range");
        prop_assert_eq!(traced, plain);
    }

    /// Crashtest verdicts on T&S stay identical under tracing for every
    /// small budget (the DFS path, memoization, and verdict must not
    /// depend on the instruments).
    #[test]
    fn crashtest_budget_sweep_is_tracing_invariant(
        max_crashes in 0usize..3,
        max_depth in 2usize..9,
    ) {
        let sys = TasConsensus::system(vec![0, 1]);
        let config = CrashtestConfig { max_crashes, max_depth, ..Default::default() };
        let plain = crashtest(&sys, config);
        let traced = crashtest_traced(&sys, config, &Tracer::metrics_only());
        prop_assert_eq!(traced, plain);
    }
}
