//! Integration tests: exhaustive model-checking of every protocol in the
//! repository, positive and negative — the executable form of Lemma 16 and
//! of the robustness theorem's algorithmic direction.

use rcn::model::Schedule;
use rcn::protocols::{TasConsensus, TnnRecoverable, TnnWaitFree, TournamentConsensus};
use rcn::spec::zoo::{CompareAndSwap, StickyBit, TeamCounter, Tnn};
use rcn::valency::{check_consensus, check_graph, ConfigGraph, Verdict};
use std::sync::Arc;

fn inputs(n: usize) -> Vec<u32> {
    (0..n as u32).map(|i| i % 2).collect()
}

/// Lemma 16, algorithmic half: the recoverable algorithm is correct at
/// exactly n' processes — for every (n, n') we can afford.
#[test]
fn tnn_recoverable_correct_at_n_prime() {
    for (n, n_prime) in [(2usize, 1usize), (3, 1), (3, 2), (4, 2), (5, 2), (4, 3)] {
        let ins = if n_prime >= 2 {
            inputs(n_prime)
        } else {
            vec![0]
        };
        let sys = TnnRecoverable::system(n, n_prime, ins);
        let report = check_consensus(&sys, 10_000_000).expect("fits");
        assert!(
            report.verdict.is_correct(),
            "T_({n},{n_prime}) at {n_prime} procs: {}",
            report.verdict
        );
    }
}

/// Lemma 16, impossibility half (for this protocol): one extra process
/// breaks it, with a concrete replayable counterexample.
#[test]
fn tnn_recoverable_breaks_at_n_prime_plus_1() {
    for (n, n_prime) in [(3usize, 1usize), (4, 2), (5, 2), (4, 3)] {
        let sys = TnnRecoverable::system(n, n_prime, inputs(n_prime + 1));
        let report = check_consensus(&sys, 10_000_000).expect("fits");
        match report.verdict {
            Verdict::Unsafe {
                ref counterexample, ..
            } => {
                // Counterexamples replay to a real violation.
                let (_, violation) = sys.run_from_start(&counterexample.prefix);
                assert!(
                    violation.is_some(),
                    "T_({n},{n_prime}): stale counterexample"
                );
            }
            Verdict::NotRecoverableWaitFree { .. } => {}
            Verdict::Correct => panic!("T_({n},{n_prime}) at {} procs must fail", n_prime + 1),
        }
    }
}

/// The wait-free algorithm is exactly wait-free: correct on the crash-free
/// graph at n processes, broken once crash edges are added.
#[test]
fn tnn_wait_free_is_exactly_wait_free() {
    for (n, n_prime) in [(2usize, 1usize), (3, 1), (4, 2)] {
        let sys = TnnWaitFree::system(n, n_prime, inputs(n));
        let crash_free = ConfigGraph::explore_with(&sys, 10_000_000, false).expect("fits");
        assert!(
            check_graph(&crash_free).is_correct(),
            "T_({n},{n_prime}) crash-free"
        );
        let crashy = check_consensus(&sys, 10_000_000).expect("fits");
        assert!(
            !crashy.verdict.is_correct(),
            "T_({n},{n_prime}) with crashes"
        );
    }
}

/// Golab's protocol-level separation: classic T&S consensus is wait-free
/// correct and crash-broken.
#[test]
fn tas_consensus_is_exactly_wait_free() {
    let sys = TasConsensus::system(vec![0, 1]);
    let crash_free = ConfigGraph::explore_with(&sys, 1_000_000, false).expect("fits");
    assert!(check_graph(&crash_free).is_correct());
    let crashy = check_consensus(&sys, 1_000_000).expect("fits");
    assert!(!crashy.verdict.is_correct());
}

/// The tournament construction is exhaustively correct under crashes for
/// every type/size pair we can afford to explore.
#[test]
fn tournament_verifies_exhaustively() {
    // 2 processes across several witness types.
    for (label, sys) in [
        (
            "sticky 2",
            TournamentConsensus::try_new(Arc::new(StickyBit::new()), inputs(2)).unwrap(),
        ),
        (
            "cas3 2",
            TournamentConsensus::try_new(Arc::new(CompareAndSwap::new(3)), inputs(2)).unwrap(),
        ),
        (
            "tnn(3,2) 2",
            TournamentConsensus::try_new(Arc::new(Tnn::new(3, 2)), inputs(2)).unwrap(),
        ),
        (
            "team-counter(4) 2",
            TournamentConsensus::try_new(Arc::new(TeamCounter::new(4)), inputs(2)).unwrap(),
        ),
    ] {
        let report = check_consensus(&sys, 10_000_000).expect("fits");
        assert!(report.verdict.is_correct(), "{label}: {}", report.verdict);
    }
}

/// The 3-process sticky tournament also verifies exhaustively (a larger
/// state space: two contest objects plus four candidate registers).
#[test]
fn tournament_three_processes_verifies() {
    let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), inputs(3)).unwrap();
    let report = check_consensus(&sys, 20_000_000).expect("fits");
    assert!(report.verdict.is_correct(), "{}", report.verdict);
}

/// Uniform inputs decide the unique input (validity), under any schedule.
#[test]
fn uniform_inputs_decide_that_input() {
    for v in [0u32, 1] {
        let sys = TnnRecoverable::system(4, 2, vec![v, v]);
        let report = check_consensus(&sys, 1_000_000).expect("fits");
        assert!(report.verdict.is_correct());
        // Any concrete run decides v.
        let mut config = sys.initial_config();
        let sched: Schedule = "p0 p0 p1 p1 p1".parse().unwrap();
        sys.run(&mut config, &sched);
        assert_eq!(config.outputs(), vec![v]);
    }
}

/// Counterexample schedules in verdicts are valid schedules (parse/print
/// round trip) — keeps the reporting layer honest.
#[test]
fn counterexamples_round_trip_as_schedules() {
    let sys = TnnRecoverable::system(5, 2, inputs(3));
    let report = check_consensus(&sys, 10_000_000).expect("fits");
    if let Verdict::Unsafe {
        ref counterexample, ..
    } = report.verdict
    {
        let text = counterexample.prefix.to_string();
        let parsed: Schedule = text.parse().expect("schedule text parses");
        assert_eq!(parsed, counterexample.prefix);
    } else {
        panic!("expected unsafe verdict");
    }
}
