//! The readability hypothesis, quantified: augmenting a non-readable type
//! with a read operation (Herlihy's "augmented queue") jumps it to the top
//! of *both* hierarchies — and the whole pipeline (decider → witness →
//! tournament protocol → model checker) agrees.

use rcn::decide::{classify, is_n_discerning, is_n_recording, Bound};
use rcn::spec::zoo::{BoundedQueue, BoundedStack, WithRead};
use rcn::spec::ObjectType;
use rcn::{solve_recoverable, verify};
use std::sync::Arc;

/// The augmented queue is readable and n-discerning/n-recording for every
/// n we test: consensus number and recoverable consensus number both
/// exceed any cap (classically: infinite).
#[test]
fn augmented_queue_tops_both_hierarchies() {
    let aug = WithRead::new(BoundedQueue::new(2, 2));
    assert!(aug.is_readable());
    let c = classify(&aug, 4);
    assert_eq!(c.consensus_number, Bound::AtLeast(4));
    assert_eq!(c.recoverable_consensus_number, Bound::AtLeast(4));
}

/// Same for the augmented stack.
#[test]
fn augmented_stack_tops_both_hierarchies() {
    let aug = WithRead::new(BoundedStack::new(2, 2));
    for n in 2..5 {
        assert!(is_n_discerning(&aug, n), "n={n}");
        assert!(is_n_recording(&aug, n), "n={n}");
    }
}

/// The pipeline end-to-end: derive a recoverable consensus protocol from
/// the augmented queue's own witnesses and verify it exhaustively under
/// crashes. (The plain queue cannot even start: it is not readable.)
#[test]
fn augmented_queue_solves_recoverable_consensus() {
    let plain = BoundedQueue::new(2, 2);
    assert!(solve_recoverable(Arc::new(plain), vec![0, 1]).is_err());

    let aug = WithRead::new(BoundedQueue::new(2, 2));
    let sys = solve_recoverable(Arc::new(aug), vec![0, 1]).expect("witnesses exist");
    let verdict = verify(&sys, 10_000_000).expect("state space fits");
    assert!(verdict.is_correct(), "{verdict}");
}

/// Three processes through a queue-based tournament, still exhaustively
/// correct.
#[test]
fn augmented_queue_three_processes() {
    let aug = WithRead::new(BoundedQueue::new(2, 3));
    let sys = solve_recoverable(Arc::new(aug), vec![1, 0, 1]).expect("witnesses exist");
    let verdict = verify(&sys, 50_000_000).expect("state space fits");
    assert!(verdict.is_correct(), "{verdict}");
}
