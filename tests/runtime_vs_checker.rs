//! Cross-validation: the threaded runtime and the abstract executor agree
//! with the exhaustive model checker — no run of a checker-verified
//! protocol may ever violate safety, under any seed, adversary, or thread
//! interleaving.

use rcn::model::{drive, CrashBudget, CrashyAdversary, RoundRobin};
use rcn::protocols::{TnnRecoverable, TournamentConsensus};
use rcn::runtime::{run_threaded, RunOptions};
use rcn::spec::zoo::{CompareAndSwap, StickyBit};
use rcn::valency::check_consensus;
use std::sync::Arc;

/// Verified protocols stay clean under the abstract crash adversary for
/// many seeds.
#[test]
fn abstract_adversary_agrees_with_checker() {
    let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
    assert!(check_consensus(&sys, 1_000_000)
        .unwrap()
        .verdict
        .is_correct());
    for seed in 0..40 {
        let mut adv = CrashyAdversary::new(seed, 0.4, CrashBudget::new(2, 2));
        let report = drive(&sys, &mut adv, 50_000);
        assert!(
            report.is_clean_consensus(),
            "seed {seed}: {:?} via {}",
            report.violation,
            report.schedule
        );
    }
}

/// Verified protocols stay clean on real threads for many seeds.
#[test]
fn threaded_runtime_agrees_with_checker() {
    let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![1, 0]).unwrap();
    assert!(check_consensus(&sys, 1_000_000)
        .unwrap()
        .verdict
        .is_correct());
    for seed in 0..25 {
        let report = run_threaded(
            &sys,
            RunOptions {
                seed,
                crash_prob: 0.2,
                max_crashes: 4,
                ..Default::default()
            },
        );
        assert!(report.is_clean_consensus(), "seed {seed}: {report}");
    }
}

/// The runtime scales past what the explicit-state checker can explore:
/// 8 threads over a CAS tournament, heavy crashes, all clean.
#[test]
fn runtime_scales_beyond_the_checker() {
    let inputs: Vec<u32> = (0..8u32).map(|i| (i / 3) % 2).collect();
    let sys = TournamentConsensus::try_new(Arc::new(CompareAndSwap::new(3)), inputs).unwrap();
    for seed in 0..10 {
        let report = run_threaded(
            &sys,
            RunOptions {
                seed,
                crash_prob: 0.15,
                max_crashes: 3,
                ..Default::default()
            },
        );
        assert!(report.is_clean_consensus(), "seed {seed}: {report}");
    }
}

/// Crash-free round-robin runs of every verified protocol decide promptly.
#[test]
fn round_robin_decides_quickly() {
    let sys = TnnRecoverable::system(4, 3, vec![1, 0, 1]);
    let report = drive(&sys, &mut RoundRobin::new(), 1_000);
    assert!(report.is_clean_consensus());
    // Each process takes at most 2 object steps in this protocol.
    assert!(report.schedule.len() <= 3 * 2 + 3, "{}", report.schedule);
}

/// The abstract executor and the threaded runtime agree on decisions for a
/// crash-free deterministic schedule (sequential consistency of the heap).
#[test]
fn solo_runs_match_between_engines() {
    let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
    // Abstract engine: p0 runs solo, then p1.
    let mut config = sys.initial_config();
    let a0 = sys
        .run_solo(&mut config, rcn::model::ProcessId::new(0), 100)
        .unwrap();
    let a1 = sys
        .run_solo(&mut config, rcn::model::ProcessId::new(1), 100)
        .unwrap();
    // Threaded engine without crashes: decisions must agree with each
    // other; the winner depends on thread timing but agreement pins both.
    let report = run_threaded(
        &sys,
        RunOptions {
            seed: 9,
            crash_prob: 0.0,
            max_crashes: 0,
            ..Default::default()
        },
    );
    assert!(report.is_clean_consensus());
    assert_eq!(a0, a1);
    assert_eq!(a0, 1, "solo p0 decides its own input");
}

/// The strongest cross-validation: record the threaded run's linearized
/// trace and replay it through the abstract executor — the decisions must
/// match exactly (the NvHeap really implements the model's atomic-step
/// semantics).
#[test]
fn recorded_traces_replay_in_the_abstract_model() {
    for seed in 0..15 {
        let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
        let report = run_threaded(
            &sys,
            RunOptions {
                seed,
                crash_prob: 0.2,
                max_crashes: 3,
                record_trace: true,
                ..Default::default()
            },
        );
        assert!(report.is_clean_consensus(), "seed {seed}");
        let trace = report.trace.clone().expect("trace recorded");
        let (mut config, violation) = sys.run_from_start(&trace);
        assert!(violation.is_none(), "seed {seed}: trace {trace}");
        // Finish any process that is poised to output.
        for i in 0..sys.n() {
            let p = rcn::model::ProcessId::new(i as u16);
            let replayed = sys.run_solo(&mut config, p, 0);
            assert_eq!(
                replayed, report.processes[i].decision,
                "seed {seed}: {p} decision mismatch after replaying {trace}"
            );
        }
    }
}

/// Trace replay also matches for the multi-object tournament protocol.
#[test]
fn tournament_traces_replay() {
    let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![0, 1, 1]).unwrap();
    for seed in 0..8 {
        let report = run_threaded(
            &sys,
            RunOptions {
                seed,
                crash_prob: 0.15,
                max_crashes: 3,
                record_trace: true,
                ..Default::default()
            },
        );
        assert!(report.is_clean_consensus(), "seed {seed}");
        let trace = report.trace.clone().expect("trace recorded");
        let (config, violation) = sys.run_from_start(&trace);
        assert!(violation.is_none(), "seed {seed}");
        // The trace contains exactly the steps the workers took.
        let total_steps: usize = report.processes.iter().map(|p| p.steps).sum();
        let total_crashes: usize = report.processes.iter().map(|p| p.crashes).sum();
        assert_eq!(
            trace.len(),
            total_steps + total_crashes,
            "seed {seed}: trace length mismatch"
        );
        let _ = config;
    }
}
