//! Differential tests between the independent BFS model checker
//! (`rcn-mc`) and the rest of the stack: the DFS crash explorer
//! (`rcn-faults`), the budgeted valency graph (`rcn-valency`), and the
//! abstract↔threaded replay bridge.
//!
//! The checker shares no search code with any of them — same question,
//! different algorithm, different state representation — so agreement
//! here is evidence about the *engines*, not just the protocols.

use rcn::faults::{crashtest, replay, CrashtestConfig};
use rcn::mc::{model_check, valency_check, Coverage, McConfig, ValencyConfig};
use rcn::protocols::{TasConsensus, TnnRecoverable, TnnWaitFree, TournamentConsensus};
use rcn::spec::zoo::{CompareAndSwap, StickyBit, Tnn};
use rcn::valency::BudgetedGraph;
use rcn_model::{FaultModel, System};
use std::sync::Arc;

fn protocols() -> Vec<(&'static str, System)> {
    vec![
        ("tas", TasConsensus::system(vec![0, 1])),
        ("tnn-wait-free:2,1", TnnWaitFree::system(2, 1, vec![0, 1])),
        (
            "tnn-recoverable:5,2",
            TnnRecoverable::system(5, 2, vec![0, 1]),
        ),
        (
            "tournament:sticky",
            TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![1, 0]).unwrap(),
        ),
    ]
}

/// The four CLI fault models the differential sweeps quantify over.
const FAULT_MODELS: [FaultModel; 4] = [
    FaultModel::PER_PROCESS,
    FaultModel::SYSTEM,
    FaultModel::MID_OP,
    FaultModel::ALL,
];

/// The two engines must agree on violation *existence* at every shared
/// budget and under every fault model: BFS over the same event semantics
/// reaches a violating configuration within depth D and K crashes iff
/// the memoized DFS does.
#[test]
fn verdicts_agree_across_a_budget_sweep() {
    for (name, sys) in protocols() {
        for fault_model in FAULT_MODELS {
            for (max_crashes, max_depth) in
                [(0, 6), (1, 4), (1, 5), (1, 6), (2, 6), (1, 8), (2, 10)]
            {
                let dfs = crashtest(
                    &sys,
                    CrashtestConfig {
                        max_crashes,
                        max_depth,
                        max_states: 500_000,
                        fault_model,
                    },
                );
                let bfs = model_check(
                    &sys,
                    McConfig {
                        max_crashes,
                        max_depth,
                        max_states: 500_000,
                        fault_model,
                    },
                );
                assert!(
                    dfs.stats.exhaustive(),
                    "{name} model={fault_model} dfs capped at {max_depth}"
                );
                assert_eq!(
                    bfs.coverage,
                    Coverage::Exhaustive,
                    "{name} model={fault_model} bfs capped at {max_depth}"
                );
                assert_eq!(
                    dfs.counterexample.is_some(),
                    bfs.counterexample.is_some(),
                    "{name} verdicts diverge at model={fault_model}, crashes={max_crashes}, \
                     depth={max_depth}: dfs={:?} bfs={:?}",
                    dfs.counterexample.as_ref().map(|c| c.schedule.to_string()),
                    bfs.counterexample.as_ref().map(|c| c.schedule.to_string()),
                );
            }
        }
    }
}

/// BFS counterexamples are minimal in schedule length: re-checking with
/// the depth budget one below the reported schedule certifies clean.
#[test]
fn bfs_counterexamples_are_depth_minimal() {
    for (name, sys) in protocols() {
        let config = McConfig::default();
        let Some(cex) = model_check(&sys, config).counterexample else {
            continue;
        };
        let tighter = model_check(
            &sys,
            McConfig {
                max_depth: cex.schedule.len() - 1,
                ..config
            },
        );
        assert!(
            tighter.is_certified_clean(),
            "{name}: a schedule shorter than {} exists",
            cex.schedule.len()
        );
    }
}

/// Every counterexample the checker reports — under every fault model,
/// including schedules containing system-wide (`C`) and mid-operation
/// (`d_i`) crashes — replays identically through the abstract executor
/// and the threaded runtime (the RCN203 bridge).
#[test]
fn bfs_counterexamples_replay_on_both_executors() {
    for (name, sys) in protocols() {
        for fault_model in FAULT_MODELS {
            let config = McConfig {
                fault_model,
                ..McConfig::default()
            };
            if let Some(cex) = model_check(&sys, config).counterexample {
                let replayed = replay(&sys, &cex.schedule);
                assert!(
                    replayed.confirmed(),
                    "{name} model={fault_model}: `{}` not confirmed: {replayed}",
                    cex.schedule
                );
            }
        }
    }
}

/// The decider stack's budgeted `E_z*` graph and the checker's worklist
/// fixpoint agree on the initial configuration's valency at identical
/// `(z, clamp)` budgets.
#[test]
fn valency_verdicts_agree_with_the_budgeted_graph() {
    for (name, sys) in protocols() {
        for (z, clamp) in [(1, 2), (1, 4), (2, 3)] {
            let graph = BudgetedGraph::explore(&sys, z, clamp, 500_000)
                .unwrap_or_else(|e| panic!("{name} graph at z={z}: {e:?}"));
            let checker = valency_check(
                &sys,
                ValencyConfig {
                    z,
                    clamp,
                    max_states: 500_000,
                },
            );
            assert_eq!(checker.coverage, Coverage::Exhaustive, "{name} capped");
            assert_eq!(
                graph.initial_valency().to_string(),
                checker.valency.to_string(),
                "{name} valency diverges at z={z}, clamp={clamp}"
            );
        }
    }
}

/// The acceptance bar from the paper: the checker independently
/// re-derives Golab's test&set separation and the `T_{2,1}` ⊥-divergence,
/// and certifies the §4 algorithm and every tournament variant clean.
#[test]
fn checker_rederives_the_papers_separations() {
    let config = McConfig::default();

    let golab = model_check(&TasConsensus::system(vec![0, 1]), config);
    let cex = golab.counterexample.expect("test&set diverges");
    assert!(!cex.schedule.is_crash_free());

    let bottom = model_check(&TnnWaitFree::system(2, 1, vec![0, 1]), config);
    assert!(bottom.counterexample.is_some(), "T_{{2,1}} diverges");

    assert!(model_check(&TnnRecoverable::system(5, 2, vec![0, 1]), config).is_certified_clean());

    let variants: Vec<(&str, System)> = vec![
        (
            "sticky",
            TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![1, 0]).unwrap(),
        ),
        (
            "cas",
            TournamentConsensus::try_new(Arc::new(CompareAndSwap::new(3)), vec![1, 0]).unwrap(),
        ),
        (
            "tnn:3,2",
            TournamentConsensus::try_new(Arc::new(Tnn::new(3, 2)), vec![1, 0]).unwrap(),
        ),
    ];
    for (name, sys) in variants {
        let report = model_check(&sys, config);
        assert!(
            report.is_certified_clean(),
            "tournament:{name} not certified: {:?}",
            report.counterexample.map(|c| c.schedule.to_string())
        );
    }
}
