//! Integration tests for the universal constructions (§1's universality,
//! executable): one-shot and scripted simulations of zoo objects, verified
//! exhaustively and cross-checked on the threaded runtime.

use rcn::runtime::{run_threaded, RunOptions};
use rcn::spec::zoo::{BoundedQueue, FetchAndAdd, Swap, TestAndSet};
use rcn::spec::{OpId, ValueId};
use rcn::universal::{verify_scripted, verify_simulation, ScriptedSim, UniversalSim};
use std::sync::Arc;

/// Simulating a *swap* object: the simulation preserves the exact
/// last-write-wins + old-value-return semantics under every interleaving
/// and crash pattern.
#[test]
fn one_shot_swap_simulation_is_linearizable() {
    let sw = Swap::new(3);
    let inputs = vec![sw.swap_op(1).index() as u32, sw.swap_op(2).index() as u32];
    let sys = UniversalSim::system(Arc::new(sw), ValueId::new(0), inputs);
    let report = verify_simulation(&sys, &sw, ValueId::new(0), 10_000_000).unwrap();
    assert!(report.is_linearizable(), "{:?}", report.violation);
}

/// The simulated test-and-set behaves like a real one on threads: exactly
/// one winner per run, across seeds and crash rates.
#[test]
fn threaded_simulated_tas_has_one_winner() {
    for seed in 0..15 {
        let tas = TestAndSet::new();
        let sys = UniversalSim::system(Arc::new(tas), ValueId::new(0), vec![0, 0, 0]);
        let report = run_threaded(
            &sys,
            RunOptions {
                seed,
                crash_prob: 0.2,
                max_crashes: 3,
                ..Default::default()
            },
        );
        assert!(
            report.processes.iter().all(|p| p.decision.is_some()),
            "seed {seed}"
        );
        let zeros = report
            .processes
            .iter()
            .filter(|p| p.decision == Some(0))
            .count();
        assert_eq!(zeros, 1, "seed {seed}: exactly one process wins the bit");
    }
}

/// Scripted simulation: a queue driven by scripts (enqueue then dequeue)
/// stays linearizable in every reachable configuration.
#[test]
fn scripted_queue_verifies_exhaustively() {
    let q = BoundedQueue::new(2, 3);
    let scripts = vec![vec![q.enq_op(0), q.deq_op()], vec![q.enq_op(1)]];
    let sys = ScriptedSim::system(Arc::new(q.clone()), ValueId::new(0), scripts.clone());
    let report = verify_scripted(&sys, &q, ValueId::new(0), &scripts, 50_000_000).unwrap();
    assert!(report.is_linearizable(), "{:?}", report.violation);
}

/// Scripted counter on threads: 3 threads × 2 increments each always sum
/// to 6, whatever the crash pattern — the log loses nothing.
#[test]
fn scripted_counter_never_loses_increments() {
    let faa = FetchAndAdd::new(16);
    let inc = OpId::new(0);
    let scripts = vec![vec![inc, inc], vec![inc, inc], vec![inc, inc]];
    for seed in 0..10 {
        let sys = ScriptedSim::system(Arc::new(faa), ValueId::new(0), scripts.clone());
        let report = run_threaded(
            &sys,
            RunOptions {
                seed,
                crash_prob: 0.15,
                max_crashes: 3,
                ..Default::default()
            },
        );
        assert!(
            report.processes.iter().all(|p| p.decision.is_some()),
            "seed {seed}"
        );
        // The largest old-value seen by any last increment is 5 (counter
        // reached 6).
        let max = report
            .processes
            .iter()
            .filter_map(|p| p.decision)
            .max()
            .unwrap();
        assert_eq!(max, 5, "seed {seed}");
    }
}
