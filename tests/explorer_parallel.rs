//! Differential tests of the sharded and persistent crash explorer: the
//! parallel engine and the disk-resumed engine must be *bit-identical* to
//! the sequential work-list search — same verdict, same (lexicographically
//! least) counterexample — at every thread count, on every protocol in the
//! zoo, on random table-driven programs, and at every filesystem fault
//! injection point in the memo's I/O.

use proptest::prelude::*;
use rcn::decide::{CacheIo, FaultMode, FaultyIo};
use rcn::faults::{CrashExplorer, CrashtestConfig, CrashtestReport, ExplorerMemo};
use rcn::model::{
    Action, FaultModel, HeapLayout, LocalState, ObjectId, ProcessId, Program, System,
};
use rcn::protocols::{TasConsensus, TnnRecoverable, TnnWaitFree, TournamentConsensus};
use rcn::spec::zoo::{Register, StickyBit};
use rcn::spec::{OpId, Response, ValueId};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn protocols() -> Vec<(&'static str, System)> {
    vec![
        ("tas", TasConsensus::system(vec![0, 1])),
        ("tnn-wait-free:2,1", TnnWaitFree::system(2, 1, vec![0, 1])),
        (
            "tnn-recoverable:5,2",
            TnnRecoverable::system(5, 2, vec![0, 1]),
        ),
        (
            "tournament:sticky",
            TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![1, 0]).unwrap(),
        ),
    ]
}

/// A fresh per-test scratch directory (no tempfile crate in the tree).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcn-explorer-par-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn assert_same(a: &CrashtestReport, b: &CrashtestReport, ctx: &str) {
    assert_eq!(
        a.counterexample.as_ref().map(|c| c.schedule.to_string()),
        b.counterexample.as_ref().map(|c| c.schedule.to_string()),
        "{ctx}: counterexample"
    );
    assert_eq!(a.counterexample, b.counterexample, "{ctx}: diagnosis");
    assert_eq!(
        a.is_certified_clean(),
        b.is_certified_clean(),
        "{ctx}: certification"
    );
}

/// The four CLI fault models every differential sweep in this file
/// quantifies over.
const FAULT_MODELS: [FaultModel; 4] = [
    FaultModel::PER_PROCESS,
    FaultModel::SYSTEM,
    FaultModel::MID_OP,
    FaultModel::ALL,
];

/// The tentpole's acceptance bar: at every budget in the sweep and under
/// every fault model, 2- and 4-thread sharded searches return the same
/// verdict and the same lex-least counterexample as the sequential
/// work-list.
#[test]
fn sharded_search_matches_sequential_across_the_zoo() {
    for (name, sys) in protocols() {
        for fault_model in FAULT_MODELS {
            for (max_crashes, max_depth) in [(0, 6), (1, 4), (1, 6), (2, 6), (1, 8)] {
                let config = CrashtestConfig {
                    max_crashes,
                    max_depth,
                    max_states: 500_000,
                    fault_model,
                };
                let seq = CrashExplorer::new(&sys, config).explore();
                assert!(
                    seq.stats.exhaustive(),
                    "{name} model={fault_model} capped at {max_depth}"
                );
                for threads in [2, 4] {
                    let par = CrashExplorer::new(&sys, config)
                        .with_threads(threads)
                        .explore();
                    assert_same(
                        &seq,
                        &par,
                        &format!(
                            "{name} model={fault_model} crashes={max_crashes} \
                             depth={max_depth} threads={threads}"
                        ),
                    );
                    assert!(
                        par.stats.exhaustive(),
                        "{name} model={fault_model} parallel run not exhaustive"
                    );
                }
            }
        }
    }
}

/// Persistence round-trip: a warm run (same system fingerprint, same
/// budget triple) reproduces the cold verdict bit-for-bit and actually
/// resumes (`resumed_states > 0`) — for both a counterexample protocol
/// (stored-verdict short-circuit) and a certified-clean one (stored memo
/// facts). A warm *sharded* run agrees too.
#[test]
fn memo_resume_reproduces_the_verdict_bit_for_bit() {
    for fault_model in FAULT_MODELS {
        memo_resume_under(fault_model);
    }
}

fn memo_resume_under(fault_model: FaultModel) {
    let config = CrashtestConfig {
        max_crashes: 1,
        max_depth: 6,
        max_states: 500_000,
        fault_model,
    };
    for (name, sys) in protocols() {
        let name = &format!("{name} model={fault_model}");
        let dir = scratch(&format!(
            "resume-{}",
            name.replace([':', ',', ' ', '=', '+'], "-")
        ));
        let cold = CrashExplorer::new(&sys, config)
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        let warm = CrashExplorer::new(&sys, config)
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        assert_same(&cold, &warm, &format!("{name} warm resume"));
        assert!(
            warm.stats.resumed_states > 0,
            "{name}: the warm run must resume from disk, not recompute"
        );
        let warm_sharded = CrashExplorer::new(&sys, config)
            .with_threads(2)
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        assert_same(&cold, &warm_sharded, &format!("{name} warm sharded"));
        // A different budget is a different key: no stale cross-talk.
        let tighter = CrashtestConfig {
            max_depth: 4,
            ..config
        };
        let other = CrashExplorer::new(&sys, tighter)
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        let reference = CrashExplorer::new(&sys, tighter).explore();
        assert_same(&reference, &other, &format!("{name} budget isolation"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Fault-model key isolation: a memo written under one fault model is
/// never consumed under another. A clean verdict under `per-process`
/// proves nothing about `system` or `mid-op` crashes, so resuming across
/// models would be unsound — the run under the other model must be cold
/// (`resumed_states == 0`) and must still match its own memo-less
/// reference bit-for-bit.
#[test]
fn memo_written_under_one_fault_model_is_never_consumed_under_another() {
    for (name, sys) in protocols() {
        let dir = scratch(&format!("isolate-{}", name.replace([':', ','], "-")));
        for writer in FAULT_MODELS {
            let config = CrashtestConfig {
                max_crashes: 1,
                max_depth: 6,
                max_states: 500_000,
                fault_model: writer,
            };
            let cold = CrashExplorer::new(&sys, config)
                .with_memo(ExplorerMemo::new(&dir))
                .explore();
            assert_same(
                &CrashExplorer::new(&sys, config).explore(),
                &cold,
                &format!("{name} writer={writer}"),
            );
            for reader in FAULT_MODELS {
                if reader == writer {
                    continue;
                }
                let other = CrashtestConfig {
                    fault_model: reader,
                    ..config
                };
                let run = CrashExplorer::new(&sys, other)
                    .with_memo(ExplorerMemo::new(&dir))
                    .explore();
                assert_eq!(
                    run.stats.resumed_states, 0,
                    "{name}: a {reader} run resumed from a {writer} memo"
                );
                assert_same(
                    &CrashExplorer::new(&sys, other).explore(),
                    &run,
                    &format!("{name} writer={writer} reader={reader}"),
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

// ---------------------------------------------------------------------------
// Fail-point sweep of the persistent memo: inject a filesystem fault at
// every I/O operation (cold-run store traffic and warm-run load traffic,
// hard-error and torn-write flavors) and demand the fault-free verdict at
// every single injection point. The memo is an accelerator: no fault may
// change an answer or crash a search.
// ---------------------------------------------------------------------------

fn explore_with_io(
    sys: &System,
    config: CrashtestConfig,
    dir: &Path,
    io: Arc<FaultyIo>,
) -> CrashtestReport {
    CrashExplorer::new(sys, config)
        .with_memo(ExplorerMemo::with_io(dir, io as Arc<dyn CacheIo>))
        .explore()
}

fn sweep_protocol(name: &str, sys: &System) {
    let config = CrashtestConfig {
        max_crashes: 1,
        max_depth: 6,
        max_states: 500_000,
        ..Default::default()
    };
    let reference = CrashExplorer::new(sys, config).explore();

    // Count the injection points of a cold store and a warm load.
    let dir = scratch(&format!("sweep-base-{name}"));
    let cold_io = Arc::new(FaultyIo::counting());
    let cold = explore_with_io(sys, config, &dir, cold_io.clone());
    assert_same(&reference, &cold, &format!("{name} fault-free cold"));
    let cold_ops = cold_io.ops_seen();
    let warm_io = Arc::new(FaultyIo::counting());
    let warm = explore_with_io(sys, config, &dir, warm_io.clone());
    assert_same(&reference, &warm, &format!("{name} fault-free warm"));
    let warm_ops = warm_io.ops_seen();
    std::fs::remove_dir_all(&dir).ok();
    assert!(cold_ops > 0, "{name}: cold run must touch the disk");
    assert!(warm_ops > 0, "{name}: warm run must touch the disk");

    let mut saw_quarantine = false;
    for mode in [
        FaultMode::Error,
        FaultMode::Truncate,
        FaultMode::Reorder,
        FaultMode::Duplicate,
    ] {
        // Cold sweep: the fault lands in the store path (or the initial
        // miss-read); the verdict is computed, not read, so it must be
        // byte-identical regardless.
        for k in 0..cold_ops {
            let dir = scratch(&format!("sweep-cold-{name}-{mode:?}-{k}"));
            let io = Arc::new(FaultyIo::new(k, mode));
            let hurt = explore_with_io(sys, config, &dir, io.clone());
            assert_same(&reference, &hurt, &format!("{name} cold {mode:?} @ {k}"));
            assert_eq!(io.injected(), 1, "{name} cold {mode:?} @ {k}: must fire");

            // Self-repair: whatever the fault left behind (a missing file,
            // a torn file the next run quarantines to `.bad`), the next
            // clean run answers identically.
            let after = explore_with_io(sys, config, &dir, Arc::new(FaultyIo::counting()));
            assert_same(&reference, &after, &format!("{name} repair {mode:?} @ {k}"));
            if std::fs::read_dir(&dir).is_ok_and(|entries| {
                entries
                    .filter_map(Result::ok)
                    .any(|e| e.path().extension().is_some_and(|x| x == "bad"))
            }) {
                saw_quarantine = true;
            }
            std::fs::remove_dir_all(&dir).ok();
        }
        // Warm sweep: populate cleanly, then fault one of the load's reads.
        for k in 0..warm_ops {
            let dir = scratch(&format!("sweep-warm-{name}-{mode:?}-{k}"));
            let populate = explore_with_io(sys, config, &dir, Arc::new(FaultyIo::counting()));
            assert_same(&reference, &populate, &format!("{name} populate"));

            let io = Arc::new(FaultyIo::new(k, mode));
            let hurt = explore_with_io(sys, config, &dir, io.clone());
            assert_same(&reference, &hurt, &format!("{name} warm {mode:?} @ {k}"));
            assert_eq!(io.injected(), 1, "{name} warm {mode:?} @ {k}: must fire");

            let after = explore_with_io(sys, config, &dir, Arc::new(FaultyIo::counting()));
            assert_same(&reference, &after, &format!("{name} warm repair @ {k}"));
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    assert!(
        saw_quarantine,
        "{name}: some torn write must end in a .bad quarantine across the sweep"
    );
}

#[test]
fn memo_fault_sweep_never_changes_a_counterexample_verdict() {
    sweep_protocol("tas", &TasConsensus::system(vec![0, 1]));
}

#[test]
fn memo_fault_sweep_never_changes_a_clean_verdict() {
    sweep_protocol(
        "tnn-recoverable:3,1",
        &TnnRecoverable::system(3, 1, vec![0, 1]),
    );
}

// ---------------------------------------------------------------------------
// Random table-driven programs (the checker-fuzz generator): the sharded
// and resumed engines must agree with the sequential one on arbitrary
// protocols, not just the hand-written zoo.
// ---------------------------------------------------------------------------

/// A random table-driven program over one shared register: states `0..s`
/// invoke a random op and branch on the response; states `s..s+2` output
/// 0 and 1 (mirrors `tests/checker_fuzz.rs`).
#[derive(Debug, Clone)]
struct RandomProgram {
    reg: ObjectId,
    active_states: usize,
    op: Vec<u16>,
    next: Vec<Vec<u32>>,
    start: [u32; 2],
}

impl Program for RandomProgram {
    fn name(&self) -> String {
        "random-program".into()
    }

    fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
        LocalState::word1(self.start[input as usize])
    }

    fn action(&self, _pid: ProcessId, state: &LocalState) -> Action {
        let s = state.word(0) as usize;
        if s < self.active_states {
            Action::Invoke {
                object: self.reg,
                op: OpId::new(self.op[s]),
            }
        } else {
            Action::Output((s - self.active_states) as u32)
        }
    }

    fn transition(&self, _pid: ProcessId, state: &LocalState, response: Response) -> LocalState {
        let s = state.word(0) as usize;
        LocalState::word1(self.next[s][response.index()])
    }
}

fn build_system(
    active_states: usize,
    op: Vec<u16>,
    next: Vec<Vec<u32>>,
    start: [u32; 2],
) -> System {
    let mut layout = HeapLayout::new();
    let reg = layout.add_object("R", Arc::new(Register::new(2)), ValueId::new(0));
    System::new(
        Arc::new(RandomProgram {
            reg,
            active_states,
            op,
            next,
            start,
        }),
        Arc::new(layout),
        vec![0, 1],
    )
}

fn arb_program(s: usize) -> impl Strategy<Value = (Vec<u16>, Vec<Vec<u32>>, [u32; 2])> {
    let total = (s + 2) as u32;
    (
        prop::collection::vec(0u16..3, s),
        prop::collection::vec(prop::collection::vec(0u32..total, 3), s + 2),
        prop::collection::vec(0u32..total, 2),
    )
        .prop_map(|(op, next, start)| (op, next, [start[0], start[1]]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sequential, sharded, and disk-resumed searches agree — verdict and
    /// counterexample — on random (mostly broken) readable-table programs,
    /// under every fault model.
    #[test]
    fn engines_agree_on_random_programs(
        (op, next, start) in arb_program(4),
        model_idx in 0usize..4,
    ) {
        let sys = build_system(4, op, next, start);
        let config = CrashtestConfig {
            max_crashes: 1,
            max_depth: 6,
            max_states: 500_000,
            fault_model: FAULT_MODELS[model_idx],
        };
        let seq = CrashExplorer::new(&sys, config).explore();
        for threads in [2, 4] {
            let par = CrashExplorer::new(&sys, config).with_threads(threads).explore();
            prop_assert_eq!(&seq.counterexample, &par.counterexample);
            prop_assert_eq!(seq.is_certified_clean(), par.is_certified_clean());
        }
        let dir = scratch("fuzz");
        let cold = CrashExplorer::new(&sys, config)
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        let warm = CrashExplorer::new(&sys, config)
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(&seq.counterexample, &cold.counterexample);
        prop_assert_eq!(&seq.counterexample, &warm.counterexample);
        prop_assert_eq!(seq.is_certified_clean(), warm.is_certified_clean());
    }
}
