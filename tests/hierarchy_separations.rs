//! Integration tests: the hierarchy separations the paper is about, checked
//! end-to-end across the decider, model-checker and protocol layers.

use rcn::decide::{classify, is_n_discerning, is_n_recording, Bound};
use rcn::spec::zoo::{
    CompareAndSwap, ConsensusObject, FetchAndAdd, Register, StickyBit, Swap, TeamCounter,
    TestAndSet, Tnn,
};
use rcn::spec::ObjectType;

/// Golab's separation (§1 of the paper): CN(test-and-set) = 2 but
/// RCN(test-and-set) = 1, derived entirely by the deciders.
#[test]
fn golab_test_and_set_separation() {
    let c = classify(&TestAndSet::new(), 4);
    assert_eq!(c.consensus_number, Bound::Exact(2));
    assert_eq!(c.recoverable_consensus_number, Bound::Exact(1));
}

/// The decider discovers that fetch-and-add and swap also lose all power
/// in the recoverable hierarchy (the value after the race is independent
/// of the order, just like test-and-set's).
#[test]
fn faa_and_swap_drop_to_level_1() {
    for ty in [
        &FetchAndAdd::new(4) as &dyn ObjectType,
        &FetchAndAdd::new(6),
        &Swap::new(2),
        &Swap::new(3),
    ] {
        let c = classify(ty, 3);
        assert_eq!(c.consensus_number, Bound::Exact(2), "{}", ty.name());
        assert_eq!(
            c.recoverable_consensus_number,
            Bound::Exact(1),
            "{}",
            ty.name()
        );
    }
}

/// Types whose single mutation permanently records the winner keep their
/// full power: sticky bit, consensus object, CAS over ≥ 3 values.
#[test]
fn recording_types_keep_full_power() {
    for ty in [
        &StickyBit::new() as &dyn ObjectType,
        &ConsensusObject::new(),
        &CompareAndSwap::new(3),
    ] {
        for n in 2..5 {
            assert!(is_n_discerning(ty, n), "{} discerning at {n}", ty.name());
            assert!(is_n_recording(ty, n), "{} recording at {n}", ty.name());
        }
    }
}

/// Registers sit at level 1 of both hierarchies.
#[test]
fn registers_are_level_1() {
    for domain in [2, 3, 4] {
        let c = classify(&Register::new(domain), 3);
        assert_eq!(c.consensus_number, Bound::Exact(1), "domain {domain}");
        assert_eq!(c.recoverable_consensus_number, Bound::Exact(1));
    }
}

/// Lemma 15's sweep: `T_{n,n'}` is n-discerning and not (n+1)-discerning
/// for every legal parameter pair we can afford to check.
#[test]
fn lemma15_discerning_sweep() {
    for n in 2..=5usize {
        for n_prime in 1..n {
            let t = Tnn::new(n, n_prime);
            assert!(is_n_discerning(&t, n), "{} at {n}", t.name());
            assert!(!is_n_discerning(&t, n + 1), "{} at {}", t.name(), n + 1);
        }
    }
}

/// The recording number of `T_{n,n'}` is n−1 for every n' — recording
/// tracks the value counter, not the op_R breakage, and since `T_{n,n'}` is
/// non-readable (for n' < n−1) this is only the Theorem 13 upper bound, not
/// the RCN itself (which Lemma 16 pins at n').
#[test]
fn tnn_recording_number_is_n_minus_1() {
    for n in 3..=5usize {
        for n_prime in 1..n {
            let t = Tnn::new(n, n_prime);
            assert!(is_n_recording(&t, n - 1), "{} at {}", t.name(), n - 1);
            assert!(!is_n_recording(&t, n), "{} at {n}", t.name());
        }
    }
}

/// The readable boundary case `n' = n−1`: `T_{n,n-1}` is readable (op_R is
/// a true read), so Theorem 13 + DFFR Thm 8 pin its RCN to exactly n−1 —
/// consistent with Lemma 16's RCN = n'.
#[test]
fn readable_tnn_boundary_case() {
    for n in 2..=5usize {
        let t = Tnn::new(n, n - 1);
        assert!(t.is_readable(), "T_({n},{}) must be readable", n - 1);
        let c = classify(&t, n + 1);
        assert_eq!(
            c.recoverable_consensus_number,
            Bound::Exact(n - 1),
            "T_({n},{})",
            n - 1
        );
        assert_eq!(c.consensus_number, Bound::Exact(n));
    }
}

/// The gap-1 readable family: CN n, RCN n−1.
#[test]
fn team_counter_gap_1_family() {
    for n in 2..=5usize {
        let c = classify(&TeamCounter::new(n), n + 1);
        assert_eq!(c.consensus_number, Bound::Exact(n), "n={n}");
        assert_eq!(
            c.recoverable_consensus_number,
            Bound::Exact((n - 1).max(1)),
            "n={n}"
        );
    }
}

/// E6: the shipped synthesized X_4 has the full DFFR profile: readable,
/// CN 4, RCN 2 — the paper's gap-2 corollary instantiated.
#[test]
fn shipped_x4_has_gap_2() {
    let x4 = rcn::shipped_xn(4).expect("X_4 ships with rcn-core");
    let c = classify(&x4, 5);
    assert!(c.readable);
    assert_eq!(c.consensus_number, Bound::Exact(4));
    assert_eq!(c.recoverable_consensus_number, Bound::Exact(2));
}

/// Robustness (Theorem 14): the power of a set is the max of its members —
/// the report's robust level never exceeds any individual exact RCN + the
/// set maximum.
#[test]
fn robustness_is_max_of_members() {
    let mut report = rcn::HierarchyReport::new(3);
    report.add(&Register::new(2));
    report.add(&TestAndSet::new());
    report.add(&FetchAndAdd::new(4));
    // All members have RCN 1: combining them cannot exceed level 1.
    assert_eq!(report.robust_level().0, 1);
    report.add(&StickyBit::new());
    assert_eq!(report.robust_level().0, 3); // capped at the search cap
}
