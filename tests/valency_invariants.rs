//! Invariants of the valency machinery, checked against live protocols:
//! the structural facts the paper's §3 lemmas rely on must hold in every
//! explored graph.

use rcn::protocols::{TnnRecoverable, TournamentConsensus};
use rcn::spec::zoo::StickyBit;
use rcn::valency::{BudgetedGraph, Valency};
use std::sync::Arc;

fn graphs() -> Vec<(String, rcn::model::System)> {
    vec![
        (
            "sticky tournament 2p".into(),
            TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![0, 1]).unwrap(),
        ),
        (
            "tnn(4,2) 2p".into(),
            TnnRecoverable::system(4, 2, vec![0, 1]),
        ),
        (
            "tnn(3,1) uniform".into(),
            TnnRecoverable::system(3, 1, vec![1]),
        ),
    ]
}

/// Valency is monotone along edges: a v-univalent state has only
/// v-univalent successors, and a bivalent state has at least one deciding
/// extension of each value somewhere downstream.
#[test]
fn univalence_is_absorbing() {
    for (label, sys) in graphs() {
        let graph = BudgetedGraph::explore(&sys, 1, 5, 2_000_000).unwrap();
        for id in 0..graph.len() {
            if let Valency::Univalent(v) = graph.valency(id) {
                for &(event, target) in graph.successors(id) {
                    match graph.valency(target) {
                        Valency::Univalent(w) => assert_eq!(
                            v, w,
                            "{label}: univalence flipped on {event} from state {id}"
                        ),
                        other => panic!("{label}: {v}-univalent state {id} has {other} successor"),
                    }
                }
            }
        }
        // The initial state of a mixed-input system is bivalent; of a
        // uniform-input system univalent.
        let mixed = sys.inputs().iter().any(|&x| x != sys.inputs()[0]);
        match graph.initial_valency() {
            Valency::Bivalent => assert!(mixed, "{label}: bivalent needs mixed inputs"),
            Valency::Univalent(v) => {
                assert!(!mixed, "{label}: univalent with mixed inputs?");
                assert_eq!(v, sys.inputs()[0], "{label}: validity pins the value");
            }
            Valency::Undetermined => panic!("{label}: initial state must reach a decision"),
        }
    }
}

/// Every mixed-input graph contains a critical state, and its analysis
/// satisfies Lemma 7 (both teams nonempty) and Lemma 9 (a single common
/// object) — the paper's preconditions for Observation 11.
#[test]
fn critical_states_satisfy_lemmas_7_and_9() {
    for (label, sys) in graphs() {
        if sys.inputs().iter().all(|&x| x == sys.inputs()[0]) {
            continue; // uniform inputs: univalent, no critical state
        }
        let graph = BudgetedGraph::explore(&sys, 1, 5, 2_000_000).unwrap();
        let critical = graph
            .find_critical()
            .unwrap_or_else(|| panic!("{label}: Lemma 6(a) critical state"));
        let info = graph.analyze_critical(critical);
        let teams: Vec<u32> = info.teams.iter().flatten().copied().collect();
        assert!(
            teams.contains(&0) && teams.contains(&1),
            "{label}: Lemma 7 violated: {teams:?}"
        );
        assert!(info.object.is_some(), "{label}: Lemma 9 violated");
        assert!(info.class.is_some(), "{label}: classification must exist");
    }
}

/// The critical execution replays to an undecided configuration (critical
/// means bivalent, and bivalent means nobody has decided in a correct
/// protocol).
#[test]
fn critical_executions_replay_undecided() {
    for (label, sys) in graphs() {
        if sys.inputs().iter().all(|&x| x == sys.inputs()[0]) {
            continue;
        }
        let graph = BudgetedGraph::explore(&sys, 1, 5, 2_000_000).unwrap();
        let critical = graph.find_critical().unwrap();
        let schedule = graph.path_to(critical);
        let (config, violation) = sys.run_from_start(&schedule);
        assert!(violation.is_none(), "{label}");
        assert!(config.outputs().is_empty(), "{label}: {schedule}");
    }
}

/// Raising the budget multiplier z can only grow the explored set.
#[test]
fn bigger_budgets_explore_more() {
    let sys = TnnRecoverable::system(4, 2, vec![0, 1]);
    let g1 = BudgetedGraph::explore(&sys, 1, 4, 2_000_000).unwrap();
    let g2 = BudgetedGraph::explore(&sys, 2, 8, 2_000_000).unwrap();
    assert!(g2.len() >= g1.len());
}
