//! Round-trip and corruption tests for the persistent analysis cache:
//! a warm run must reproduce the cold run's classification exactly while
//! computing nothing, and damaged cache files must degrade to a silent
//! full recompute — never a wrong answer, never an error.

use rcn::decide::{DiskCache, PartitionSharding, SearchEngine, TypeClassification};
use rcn::spec::zoo::{
    CompareAndSwap, ConsensusObject, FetchAndAdd, Register, StickyBit, Swap, TeamCounter,
    TestAndSet, Tnn,
};
use rcn::spec::ObjectType;
use std::path::PathBuf;

const CAP: usize = 4;

fn zoo() -> Vec<Box<dyn ObjectType + Send + Sync>> {
    vec![
        Box::new(Register::new(2)),
        Box::new(TestAndSet::new()),
        Box::new(FetchAndAdd::new(4)),
        Box::new(Swap::new(2)),
        Box::new(CompareAndSwap::new(3)),
        Box::new(StickyBit::new()),
        Box::new(ConsensusObject::new()),
        Box::new(Tnn::new(4, 2)),
        Box::new(TeamCounter::new(4)),
    ]
}

/// A fresh per-test scratch directory (no tempfile crate in the tree).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcn-disk-cache-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Field-by-field classification equality (including witnesses), used to
/// pin the warm run to the cold run bit-for-bit.
fn assert_same_classification(a: &TypeClassification, b: &TypeClassification, ctx: &str) {
    assert_eq!(a.type_name, b.type_name, "{ctx}: type name");
    assert_eq!(a.readable, b.readable, "{ctx}: readable");
    assert_eq!(a.discerning, b.discerning, "{ctx}: discerning result");
    assert_eq!(a.recording, b.recording, "{ctx}: recording result");
    assert_eq!(a.consensus_number, b.consensus_number, "{ctx}: CN");
    assert_eq!(
        a.recoverable_consensus_number, b.recoverable_consensus_number,
        "{ctx}: RCN"
    );
}

#[test]
fn warm_run_reproduces_cold_run_across_the_zoo() {
    let root = scratch("zoo");
    for ty in zoo() {
        // One subdirectory per type: fingerprints are content hashes, so
        // zoo types with identical tables (e.g. the consensus object vs. a
        // sticky bit) would legitimately share entries in a common dir —
        // here we want every type's cold run to be genuinely cold.
        let dir = root.join(ty.name());
        let cold = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
        let reference = cold.classify(&*ty, CAP).expect("cap in range");
        let cold_stats = cold.stats();
        assert!(
            cold_stats.disk_entries_written > 0,
            "{}: cold run should persist analyses, got {cold_stats}",
            ty.name()
        );
        assert_eq!(cold_stats.disk_hits, 0, "{}: cold run", ty.name());

        let warm = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
        let again = warm.classify(&*ty, CAP).expect("cap in range");
        assert_same_classification(&reference, &again, &ty.name());
        let warm_stats = warm.stats();
        assert!(
            warm_stats.disk_hits > 0,
            "{}: warm run should hit the disk cache, got {warm_stats}",
            ty.name()
        );
        assert_eq!(
            warm_stats.analyses_computed,
            0,
            "{}: warm run should recompute nothing, got {warm_stats}",
            ty.name()
        );
        assert_eq!(
            warm_stats.disk_entries_written,
            0,
            "{}: warm run should rewrite nothing, got {warm_stats}",
            ty.name()
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn warm_cache_agrees_under_threads_and_partition_sharding() {
    // The cache stores analyses, not search results: a warm parallel,
    // partition-sharded engine must land on the cold sequential answers.
    let dir = scratch("sharded");
    let ty = Tnn::new(4, 2);
    let cold = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
    let reference = cold.classify(&ty, 5).expect("cap in range");

    let warm = SearchEngine::new(4)
        .with_partition_sharding(PartitionSharding::Always)
        .with_disk_cache(DiskCache::new(&dir));
    let again = warm.classify(&ty, 5).expect("cap in range");
    assert_eq!(again.discerning.level, reference.discerning.level);
    assert_eq!(again.recording.level, reference.recording.level);
    assert_eq!(again.consensus_number, reference.consensus_number);
    assert_eq!(
        again.recoverable_consensus_number,
        reference.recoverable_consensus_number
    );
    assert!(warm.stats().disk_hits > 0, "stats: {}", warm.stats());
    assert_eq!(warm.stats().analyses_computed, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Damages every cache file in `dir` with `f`, returning how many files
/// were touched.
fn damage_all(dir: &std::path::Path, f: impl Fn(&str) -> String) -> usize {
    let mut touched = 0;
    for entry in std::fs::read_dir(dir).expect("cache dir exists") {
        let path = entry.expect("dir entry").path();
        let text = std::fs::read_to_string(&path).expect("cache file is text");
        std::fs::write(&path, f(&text)).expect("rewrite cache file");
        touched += 1;
    }
    touched
}

type Damage = Box<dyn Fn(&str) -> String>;

#[test]
fn damaged_cache_files_fall_back_to_full_recompute() {
    let ty = TestAndSet::new();
    let damages: Vec<(&str, Damage)> = vec![
        ("garbage", Box::new(|_: &str| "not json at all {{{".into())),
        ("truncated", Box::new(|t: &str| t[..t.len() / 2].into())),
        ("empty", Box::new(|_: &str| String::new())),
        (
            "version-mismatch",
            Box::new(|t: &str| t.replacen("\"version\":", "\"version\": 999, \"v\":", 1)),
        ),
    ];
    for (tag, damage) in damages {
        let dir = scratch(tag);
        let cold = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
        let reference = cold.classify(&ty, CAP).expect("cap in range");
        assert!(
            damage_all(&dir, damage) > 0,
            "{tag}: no cache files written"
        );

        let warm = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
        let again = warm.classify(&ty, CAP).expect("cap in range");
        assert_same_classification(&reference, &again, tag);
        let stats = warm.stats();
        assert_eq!(stats.disk_hits, 0, "{tag}: damaged entries must not hit");
        assert!(
            stats.analyses_computed > 0,
            "{tag}: must recompute, got {stats}"
        );
        // The recompute repairs the cache: a third run is warm again.
        let repaired = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
        let third = repaired.classify(&ty, CAP).expect("cap in range");
        assert_same_classification(&reference, &third, tag);
        assert!(
            repaired.stats().disk_hits > 0,
            "{tag}: repair run should be warm, got {}",
            repaired.stats()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Rewrites each cache file into the version-1 format: version stamp 1 and
/// no `firsts` field (v1 analyses persisted only the value/pair sets).
fn downgrade_to_v1(text: &str) -> String {
    let mut out = text.replacen("\"version\":2", "\"version\":1", 1);
    while let Some(i) = out.find("\"firsts\":[") {
        let after = i + "\"firsts\":[".len();
        let end = after + out[after..].find(']').expect("firsts array closes");
        // Also eat the comma separating `firsts` from the next field, so
        // the result is exactly the old shape (valid JSON, no firsts).
        let end = if out[end + 1..].starts_with(',') {
            end + 1
        } else {
            end
        };
        out.replace_range(i..=end, "");
    }
    out
}

#[test]
fn version_one_cache_files_fall_back_to_recompute() {
    // Regression for the v1 → v2 wire change (Analysis now persists its
    // `firsts` labels): a genuine old-format file — correct path, correct
    // fingerprint, old version stamp, no `firsts` — must degrade to a
    // silent full recompute, and the recompute must repair the cache.
    let ty = TeamCounter::new(4);
    let dir = scratch("v1-format");
    let cold = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
    let reference = cold.classify(&ty, CAP).expect("cap in range");
    let touched = damage_all(&dir, downgrade_to_v1);
    assert!(touched > 0, "no cache files written");

    let warm = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
    let again = warm.classify(&ty, CAP).expect("cap in range");
    assert_same_classification(&reference, &again, "v1-format");
    let stats = warm.stats();
    assert_eq!(stats.disk_hits, 0, "stale-version entries must not hit");
    assert!(stats.analyses_computed > 0, "must recompute, got {stats}");

    let repaired = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
    let third = repaired.classify(&ty, CAP).expect("cap in range");
    assert_same_classification(&reference, &third, "v1-format repair");
    assert!(
        repaired.stats().disk_hits > 0,
        "repair run should be warm, got {}",
        repaired.stats()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shape_mismatched_entries_are_skipped_individually() {
    // Damage one entry per file (an extra element makes its `firsts`
    // length disagree with the instance's level) while its neighbours stay
    // valid: the warm run must skip exactly the damaged entries —
    // recomputing them — and still serve the rest from disk.
    let ty = TeamCounter::new(4);
    let dir = scratch("entry-shape");
    let cold = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
    let reference = cold.classify(&ty, CAP).expect("cap in range");
    let touched = damage_all(&dir, |t| t.replacen("\"firsts\":[", "\"firsts\":[0,", 1));
    assert!(touched > 0, "no cache files written");

    let warm = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
    let again = warm.classify(&ty, CAP).expect("cap in range");
    assert_same_classification(&reference, &again, "entry-shape");
    let stats = warm.stats();
    assert!(
        stats.disk_hits > 0,
        "undamaged entries must still hit, got {stats}"
    );
    assert!(
        stats.analyses_computed > 0,
        "damaged entries must recompute, got {stats}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_from_a_different_type_is_ignored() {
    // Cache keys are content hashes of the transition table: warming the
    // cache on one type must not leak analyses into another type that
    // happens to share dimensions.
    let dir = scratch("cross-type");
    let cold = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
    cold.classify(&TestAndSet::new(), CAP)
        .expect("cap in range");

    let other = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
    other
        .classify(&StickyBit::new(), CAP)
        .expect("cap in range");
    let stats = other.stats();
    assert_eq!(stats.disk_hits, 0, "cross-type run must miss: {stats}");
    assert!(stats.analyses_computed > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_cache_dir_means_no_disk_traffic() {
    let engine = SearchEngine::sequential();
    engine
        .classify(&TestAndSet::new(), CAP)
        .expect("cap in range");
    let stats = engine.stats();
    assert_eq!(stats.disk_hits, 0);
    assert_eq!(stats.disk_entries_written, 0);
}
