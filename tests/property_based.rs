//! Property-based tests (proptest) over the core data structures and
//! invariants: type closure, schedule algebra, budget laws, analysis
//! consistency, random-table robustness of the deciders.

use proptest::prelude::*;
use rcn::decide::{check_discerning, check_recording, synthesis, Analysis, Team, Witness};
use rcn::model::{BudgetKind, CrashBudget, Event, FaultModel, ProcessId, Schedule};
use rcn::spec::zoo::{Register, TestAndSet, Tnn};
use rcn::spec::{apply_all, check_closed, ObjectType, OpId, TableType, ValueId};

fn arb_event(n: u16) -> impl Strategy<Value = Event> {
    // All four event families, so the algebraic laws below cover
    // mixed-model schedules (steps, per-process, system-wide and
    // mid-operation crashes in one sequence).
    (0..n, 0usize..4).prop_map(|(p, kind)| match kind {
        0 => Event::Step(ProcessId(p)),
        1 => Event::Crash(ProcessId(p)),
        2 => Event::SystemCrash,
        _ => Event::CrashDuring(ProcessId(p)),
    })
}

fn arb_schedule(n: u16, max_len: usize) -> impl Strategy<Value = Schedule> {
    prop::collection::vec(arb_event(n), 0..max_len).prop_map(Schedule::from_events)
}

proptest! {
    /// Schedules round-trip through their textual form.
    #[test]
    fn schedule_parse_display_roundtrip(sched in arb_schedule(5, 20)) {
        let text = sched.to_string();
        let parsed: Schedule = text.parse().unwrap();
        prop_assert_eq!(parsed, sched);
    }

    /// `E_z* ⊆ E_z` for every schedule (the paper's containment).
    #[test]
    fn prefix_budget_implies_final_budget(
        sched in arb_schedule(4, 30),
        z in 1usize..3,
    ) {
        let budget = CrashBudget::new(z, 4);
        if budget.admits(&sched, BudgetKind::EveryPrefix) {
            prop_assert!(budget.admits(&sched, BudgetKind::Final));
        }
    }

    /// `E_z*` is prefix-closed (the property the paper names it for).
    #[test]
    fn prefix_budget_is_prefix_closed(
        sched in arb_schedule(4, 30),
        z in 1usize..3,
        cut in 0usize..30,
    ) {
        let budget = CrashBudget::new(z, 4);
        if budget.admits(&sched, BudgetKind::EveryPrefix) {
            let cut = cut.min(sched.len());
            let prefix = Schedule::from_events(sched.events()[..cut].iter().copied());
            prop_assert!(budget.admits(&prefix, BudgetKind::EveryPrefix));
        }
    }

    /// Budgets are monotone in z: anything E_z admits, E_{z+1} admits.
    #[test]
    fn budgets_are_monotone_in_z(sched in arb_schedule(3, 25), z in 1usize..3) {
        let smaller = CrashBudget::new(z, 3);
        let larger = CrashBudget::new(z + 1, 3);
        for kind in [BudgetKind::Final, BudgetKind::EveryPrefix] {
            if smaller.admits(&sched, kind) {
                prop_assert!(larger.admits(&sched, kind));
            }
        }
    }

    /// Applying a schedule of ops never leaves a type's value set
    /// (closure), for the paper's T_{n,n'}.
    #[test]
    fn tnn_is_closed_under_random_schedules(
        ops in prop::collection::vec(0u16..3, 0..12),
        n in 2usize..6,
    ) {
        let n_prime = 1 + (n % (n - 1));
        let t = Tnn::new(n, n_prime.min(n - 1));
        prop_assert!(check_closed(&t).is_ok());
        let ops: Vec<OpId> = ops.into_iter().map(OpId::new).collect();
        let (outs, v) = apply_all(&t, t.s(), &ops);
        prop_assert!(v.index() < t.num_values());
        for out in outs {
            prop_assert!(out.response.index() < t.num_responses());
        }
    }

    /// The first operation on T_{n,n'} determines the next n−1 responses
    /// (the agreement core of §4's wait-free algorithm), for random op
    /// sequences of mutators.
    #[test]
    fn tnn_first_op_determines_responses(
        first in 0u16..2,
        rest in prop::collection::vec(0u16..2, 0..4),
    ) {
        let t = Tnn::new(5, 2);
        let mut ops = vec![OpId::new(first)];
        ops.extend(rest.iter().map(|&x| OpId::new(x)));
        let (outs, _) = apply_all(&t, t.s(), &ops);
        for out in &outs {
            prop_assert_eq!(out.response.index(), first as usize);
        }
    }

    /// Analysis value sets are supersets of any concrete schedule's result:
    /// run a random permutation-ish schedule of assigned ops, and the final
    /// value must appear in the first mover's value set.
    #[test]
    fn analysis_covers_concrete_runs(
        perm in prop::sample::subsequence(vec![0usize,1,2,3], 1..=4),
        assignment in prop::collection::vec(0u16..2, 4),
    ) {
        let t = TestAndSet::new();
        let ops: Vec<OpId> = assignment.iter().map(|&x| OpId::new(x)).collect();
        let analysis = Analysis::new(&t, ValueId::new(0), &ops);
        let seq: Vec<OpId> = perm.iter().map(|&i| ops[i]).collect();
        let (_, v) = apply_all(&t, ValueId::new(0), &seq);
        let first = perm[0];
        prop_assert!(analysis.value_set(&[first]).contains(v.index()));
    }

    /// Witness checking never panics on random (valid-shape) witnesses, and
    /// discerning/recording verdicts are stable under re-checking.
    #[test]
    fn witness_checks_are_total_and_deterministic(
        u in 0u16..2,
        teams in prop::collection::vec(prop::bool::ANY, 2..5),
        ops in prop::collection::vec(0u16..2, 2..5),
    ) {
        let n = teams.len().min(ops.len());
        let mut team_of: Vec<Team> = teams[..n]
            .iter()
            .map(|&b| if b { Team::T1 } else { Team::T0 })
            .collect();
        // Force both teams nonempty.
        team_of[0] = Team::T0;
        if !team_of.contains(&Team::T1) {
            team_of[n - 1] = Team::T1;
        }
        let w = Witness::new(
            ValueId::new(u),
            team_of,
            ops[..n].iter().map(|&x| OpId::new(x)).collect(),
        );
        let tas = TestAndSet::new();
        let d1 = check_discerning(&tas, &w);
        let d2 = check_discerning(&tas, &w);
        prop_assert_eq!(d1, d2);
        let r1 = check_recording(&tas, &w);
        let r2 = check_recording(&tas, &w);
        prop_assert_eq!(r1, r2);
    }

    /// Random synthesized tables are valid, readable, and their table
    /// normal form round-trips through behaviour.
    #[test]
    fn random_tables_are_wellformed(seed in 0u64..500) {
        let mut rng = synthesis::rng(seed);
        let t = synthesis::random_readable_table(&mut rng, 4, 2);
        prop_assert!(t.validate().is_ok());
        prop_assert!(t.is_readable());
        let t2 = TableType::from_type(&t);
        prop_assert_eq!(&t, &t2);
    }

    /// Kernelized, scalar, parallel, and incremental `Analysis`
    /// construction agree bit-for-bit on random readable tables, not just
    /// on the curated zoo.
    #[test]
    fn analysis_paths_agree_on_random_tables(
        seed in 0u64..200,
        raw_ops in prop::collection::vec(0u16..3, 2..5),
        u in 0u16..4,
    ) {
        let mut rng = synthesis::rng(seed);
        // 4 values, 2 mutators + 1 read => op ids 0..3, value ids 0..4.
        let t = synthesis::random_readable_table(&mut rng, 4, 2);
        let mut ops: Vec<OpId> = raw_ops.into_iter().map(OpId::new).collect();
        ops.sort();
        let u = ValueId::new(u);
        let kernel = Analysis::new(&t, u, &ops);
        prop_assert_eq!(&kernel, &Analysis::new_scalar(&t, u, &ops));
        prop_assert_eq!(&kernel, &Analysis::with_threads(&t, u, &ops, 3));
        let mut chained = Analysis::new(&t, u, &ops[..1]);
        for m in 2..=ops.len() {
            chained = Analysis::extend(&t, u, &chained, &ops[..m], 2);
        }
        prop_assert_eq!(&kernel, &chained);
    }

    /// The abstract↔threaded replay bridge holds on *random mixed-model
    /// schedules*: any sequence of steps, per-process crashes, system-wide
    /// crashes and mid-operation crashes replays through the threaded
    /// runtime with the same trace, outputs, decisions and violation as
    /// the abstract executor.
    #[test]
    fn threaded_replay_matches_abstract_on_mixed_fault_schedules(
        sched in arb_schedule(2, 12),
        proto in 0usize..3,
    ) {
        let sys = match proto {
            0 => rcn::protocols::TasConsensus::system(vec![0, 1]),
            1 => rcn::protocols::TnnWaitFree::system(2, 1, vec![0, 1]),
            _ => rcn::protocols::TnnRecoverable::system(5, 2, vec![1, 0]),
        };
        let exec = rcn::model::Execution::record(&sys, &sched);
        let report = rcn::runtime::run_schedule(&sys, &sched);
        prop_assert_eq!(&report.trace, &sched);
        prop_assert_eq!(report.outputs, exec.outputs());
        prop_assert_eq!(report.violation, exec.first_violation());
        prop_assert_eq!(report.decisions, exec.final_config().decided.clone());
    }

    /// Register semantics: the last write wins regardless of interleaving.
    #[test]
    fn register_last_write_wins(writes in prop::collection::vec(0u16..3, 1..10)) {
        let reg = Register::new(3);
        let ops: Vec<OpId> = writes.iter().map(|&k| OpId::new(k)).collect();
        let (_, v) = apply_all(&reg, ValueId::new(0), &ops);
        prop_assert_eq!(v.index(), *writes.last().unwrap() as usize);
    }

    /// Differential second opinion over random protocols: the DFS crash
    /// explorer (`rcn-faults`) and the independent BFS model checker
    /// (`rcn-mc`) must agree on crash-divergence verdicts at identical
    /// budgets, and the decider stack's budgeted `E_z*` graph must agree
    /// with the checker's worklist fixpoint on the initial valency —
    /// on tournaments built from random readable tables, not just the
    /// curated zoo.
    #[test]
    fn dfs_and_bfs_checkers_agree_on_random_tables(
        seed in 0u64..80,
        inputs in prop::collection::vec(0u32..2, 2..4),
        model_idx in 0usize..4,
    ) {
        let fault_model = [
            FaultModel::PER_PROCESS,
            FaultModel::SYSTEM,
            FaultModel::MID_OP,
            FaultModel::ALL,
        ][model_idx];
        let mut rng = synthesis::rng(seed);
        let t = synthesis::random_readable_table(&mut rng, 4, 2);
        let Ok(sys) = rcn::solve_recoverable(std::sync::Arc::new(t), inputs) else {
            // No 2-recording witness for this table: nothing to build.
            return Ok(());
        };
        let dfs = rcn::faults::crashtest(&sys, rcn::faults::CrashtestConfig {
            max_crashes: 1,
            max_depth: 8,
            max_states: 100_000,
            fault_model,
        });
        let bfs = rcn::mc::model_check(&sys, rcn::mc::McConfig {
            max_crashes: 1,
            max_depth: 8,
            max_states: 100_000,
            fault_model,
        });
        prop_assert!(dfs.stats.exhaustive());
        prop_assert_eq!(bfs.coverage, rcn::mc::Coverage::Exhaustive);
        prop_assert_eq!(
            dfs.counterexample.is_some(),
            bfs.counterexample.is_some(),
            "crashtest verdicts diverge: dfs {:?} vs bfs {:?}",
            dfs.counterexample.map(|c| c.schedule.to_string()),
            bfs.counterexample.map(|c| c.schedule.to_string())
        );
        if let Ok(graph) = rcn::valency::BudgetedGraph::explore(&sys, 1, 2, 100_000) {
            let checker = rcn::mc::valency_check(&sys, rcn::mc::ValencyConfig {
                z: 1,
                clamp: 2,
                max_states: 100_000,
            });
            prop_assert_eq!(checker.coverage, rcn::mc::Coverage::Exhaustive);
            prop_assert_eq!(
                graph.initial_valency().to_string(),
                checker.valency.to_string()
            );
        }
    }
}
