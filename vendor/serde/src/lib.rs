//! Offline stand-in for `serde`, API-compatible with the subset this
//! workspace uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums (no `#[serde(...)]` attributes), consumed by the sibling
//! `serde_json` stand-in.
//!
//! The design replaces serde's visitor machinery with a concrete
//! self-describing [`Value`] tree. The derive macros (re-exported from
//! `serde_derive`) generate `to_value`/`from_value` implementations that
//! follow serde's JSON conventions exactly — named structs become objects,
//! newtype structs are transparent, fieldless enum variants become strings,
//! and data-carrying variants become externally tagged single-key objects —
//! so JSON produced by the real serde (e.g. the checked-in `xn_4.json`)
//! parses unchanged.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing value: the common currency between [`Serialize`],
/// [`Deserialize`] and the `serde_json` stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the shape a
/// [`Deserialize`] implementation expects.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl fmt::Display) -> Error {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a field in an object's entries (derive-generated code calls
/// this; missing fields are reported by name).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Types that can be converted to a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data-model tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the data-model tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(u) => i64::try_from(*u)
                        .ok()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| Error::custom("integer out of range")),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($($name::from_value(
                    items.get($idx).ok_or_else(|| Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u16::from_value(&7u16.to_value()), Ok(7));
        assert_eq!(i32::from_value(&(-3i32).to_value()), Ok(-3));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u16>::from_value(&vec![1u16, 2].to_value()),
            Ok(vec![1, 2])
        );
        assert_eq!(Option::<u16>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u16::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(field(&[], "missing").is_err());
    }
}
