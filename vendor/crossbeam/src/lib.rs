//! Offline stand-in for `crossbeam`, covering the one API this workspace
//! uses: `crossbeam::scope` with `Scope::spawn`.
//!
//! Implemented on `std::thread::scope` (stable since 1.63), which provides
//! the same borrow-from-the-stack guarantee. Unlike real crossbeam, a
//! panicking child thread propagates at scope exit instead of being
//! collected into the `Err` variant — callers here immediately `.expect()`
//! the result, so the observable behavior is identical.

use std::marker::PhantomData;
use std::thread;

/// A handle for spawning scoped threads (subset of `crossbeam::thread::Scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// A handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
    _marker: PhantomData<&'scope ()>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish.
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload if it panicked.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope (ignored by
    /// every caller in this workspace, hence the `|_|` idiom).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            }),
            _marker: PhantomData,
        }
    }
}

/// Creates a scope in which borrowed-data threads can be spawned; all
/// threads are joined before `scope` returns.
///
/// # Errors
///
/// Never returns `Err` — child panics propagate at scope exit (see the
/// crate docs). The `Result` exists so call sites written against real
/// crossbeam (`.expect("threads join")`) compile unchanged.
#[allow(clippy::missing_panics_doc)]
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| {
        let scope = Scope { inner: s };
        f(&scope)
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .expect("threads join");
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn join_returns_value() {
        let out =
            super::scope(|s| s.spawn(|_| 41 + 1).join().expect("no panic")).expect("threads join");
        assert_eq!(out, 42);
    }

    #[test]
    fn nested_spawn_from_child() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .expect("threads join");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
