//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Implemented directly over `proc_macro::TokenTree` (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the shapes this
//! workspace serializes, matching serde's JSON conventions:
//!
//! * named-field structs → objects;
//! * newtype (1-field tuple) structs → transparent;
//! * wider tuple structs → arrays;
//! * fieldless enum variants → variant-name strings;
//! * tuple enum variants → externally tagged `{"Variant": …}` objects
//!   (single field transparent, multiple fields as an array).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported
//! and produce a compile error rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field-less/tuple variant or struct layout.
enum Shape {
    /// `struct S { a, b, … }`
    NamedStruct(Vec<String>),
    /// `struct S(T, …);` with the arity recorded.
    TupleStruct(usize),
    /// `enum E { A, B(T), C(T, U), … }` as `(variant, arity)` pairs.
    Enum(Vec<(String, usize)>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Parsed) -> String) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen(&parsed).parse().expect("generated impl parses"),
        Err(message) => format!("::core::compile_error!({message:?});")
            .parse()
            .expect("compile_error parses"),
    }
}

fn parse(input: TokenStream) -> Result<Parsed, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`# [ ... ]`) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!("serde stand-in: generic type `{name}` unsupported"));
        }
    }
    let shape = match (kind.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_top_level_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream())?)
        }
        (k, t) => return Err(format!("serde stand-in: cannot derive for {k} body {t:?}")),
    };
    Ok(Parsed { name, shape })
}

/// Splits a field list on commas that sit outside `<…>` nesting. Delimited
/// groups (parens, brackets) are single trees, so only angle brackets need
/// explicit depth tracking.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut depth = 0i32;
    let mut saw_token = false;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        fields += 1;
    }
    fields
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip per-field attributes (doc comments) and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(field) = tree else {
            return Err(format!("expected field name, found {tree:?}"));
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        names.push(field.to_string());
        // Skip the type up to the next comma outside angle brackets.
        let mut depth = 0i32;
        for tree in tokens.by_ref() {
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(names)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(variant) = tree else {
            return Err(format!("expected variant name, found {tree:?}"));
        };
        let mut arity = 0usize;
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = count_top_level_fields(g.stream());
                tokens.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde stand-in: struct variant `{}` unsupported",
                    variant
                ));
            }
            _ => {}
        }
        variants.push((variant.to_string(), arity));
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => return Err(format!("expected `,` between variants, found {other:?}")),
        }
    }
    Ok(variants)
}

fn gen_serialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("serde::Value::Object(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{name}::{v} => \
                         serde::Value::Str(::std::string::String::from({v:?}))"
                    ),
                    1 => format!(
                        "{name}::{v}(f0) => serde::Value::Object(::std::vec![\
                         (::std::string::String::from({v:?}), \
                          serde::Serialize::to_value(f0))])"
                    ),
                    k => {
                        let binds: Vec<String> = (0..*k).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*k)
                            .map(|i| format!("serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => serde::Value::Object(::std::vec![\
                             (::std::string::String::from({v:?}), \
                              serde::Value::Array(::std::vec![{items}]))])",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(\
                         serde::field(entries, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "let entries = value.as_object().ok_or_else(|| \
                 serde::Error::custom(\"expected object for {name}\"))?;\n\
                 ::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(serde::Deserialize::from_value(value)?))")
        }
        Shape::TupleStruct(arity) => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                         serde::Error::custom(\"tuple too short for {name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| \
                 serde::Error::custom(\"expected array for {name}\"))?;\n\
                 ::core::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(v, _)| format!("{v:?} => ::core::result::Result::Ok({name}::{v})"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity > 0)
                .map(|(v, arity)| {
                    if *arity == 1 {
                        format!(
                            "{v:?} => ::core::result::Result::Ok(\
                             {name}::{v}(serde::Deserialize::from_value(inner)?))"
                        )
                    } else {
                        let inits: Vec<String> = (0..*arity)
                            .map(|i| {
                                format!(
                                    "serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                                     serde::Error::custom(\"variant tuple too short\"))?)?"
                                )
                            })
                            .collect();
                        format!(
                            "{v:?} => {{ let items = inner.as_array().ok_or_else(|| \
                             serde::Error::custom(\"expected array variant\"))?;\n\
                             ::core::result::Result::Ok({name}::{v}({})) }}",
                            inits.join(", ")
                        )
                    }
                })
                .collect();
            let mut outer_arms = Vec::new();
            if !unit_arms.is_empty() {
                outer_arms.push(format!(
                    "serde::Value::Str(s) => match s.as_str() {{\n\
                     {},\n\
                     _ => ::core::result::Result::Err(serde::Error::custom(\
                     \"unknown variant of {name}\")),\n\
                     }}",
                    unit_arms.join(",\n")
                ));
            }
            if !data_arms.is_empty() {
                outer_arms.push(format!(
                    "serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                     let (tag, inner) = &entries[0];\n\
                     match tag.as_str() {{\n\
                     {},\n\
                     _ => ::core::result::Result::Err(serde::Error::custom(\
                     \"unknown variant of {name}\")),\n\
                     }}\n\
                     }}",
                    data_arms.join(",\n")
                ));
            }
            outer_arms.push(format!(
                "_ => ::core::result::Result::Err(serde::Error::custom(\
                 \"expected variant of {name}\"))"
            ));
            format!("match value {{\n{}\n}}", outer_arms.join(",\n"))
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(value: &serde::Value) -> \
         ::core::result::Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
