//! Offline stand-in for `rand`, covering the subset this workspace uses:
//! `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`
//! over integer ranges, and `Rng::gen_bool`.
//!
//! The generator is splitmix64 — deterministic per seed, statistically fine
//! for test-case generation and randomized search, and dependency-free. It
//! intentionally does NOT reproduce the real `StdRng` stream; all in-repo
//! uses treat seeds as opaque reproducibility handles, not cross-library
//! contracts.

/// Integer types that [`Rng::gen_range`] can sample.
pub trait SampleUniform: Copy {
    /// Converts from a `u64` sampled uniformly below some bound.
    fn from_u64(v: u64) -> Self;
    /// Converts to `u64` for bound arithmetic.
    fn to_u64(self) -> u64;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_u64(v: u64) -> Self { v as $t }
            fn to_u64(self) -> u64 { self as u64 }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

// Signed types map through an order-preserving bijection with u64
// (flip the sign bit), so the range arithmetic stays unsigned.
macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_u64(v: u64) -> Self { (v ^ (1 << 63)) as i64 as $t }
            fn to_u64(self) -> u64 { (self as i64 as u64) ^ (1 << 63) }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value in the range using the provided source of `u64`s.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "cannot sample empty range");
        T::from_u64(lo + uniform_below(hi - lo, next))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "cannot sample empty range");
        if lo == 0 && hi == u64::MAX {
            return T::from_u64(next());
        }
        T::from_u64(lo + uniform_below(hi - lo + 1, next))
    }
}

/// Unbiased uniform sample in `0..bound` by rejection.
fn uniform_below(bound: u64, next: &mut dyn FnMut() -> u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = next();
        if v < zone {
            return v % bound;
        }
    }
}

/// The random-generation trait (subset of the real `rand::Rng`).
pub trait Rng {
    /// Returns the next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from an integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, the same resolution the real rand uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Seedable generators (subset of the real `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// A deterministic seedable generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u16 = rng.gen_range(0u16..2);
            assert!(w < 2);
            let x: usize = rng.gen_range(1..=4);
            assert!((1..=4).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
