//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, integer
//! range strategies, tuples, `prop_map`, `prop::collection::vec`,
//! `prop::bool::ANY`, `prop::sample::subsequence`, and `ProptestConfig`.
//!
//! Differences from the real library, by design:
//!
//! * **No shrinking.** A failing case reports the exact generated input
//!   (which is why regression cases are also checked in as explicit unit
//!   tests rather than opaque `proptest-regressions` seeds).
//! * **Deterministic by default.** Case `i` of test `t` derives its seed
//!   from `(hash(t), i)`, so CI runs are reproducible; set
//!   `PROPTEST_RNG_SEED` to explore a different deterministic stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Test-case failure raised by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl fmt::Display) -> TestCaseError {
        TestCaseError::Fail(message.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
        }
    }
}

/// Result type the `proptest!` test bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values (subset of the real `Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, G: 5)
}

/// Sub-strategy namespaces (`prop::collection`, `prop::bool`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy for `Vec`s with element strategy `S`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose length falls in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = if self.size.min >= self.size.max {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..=self.size.max)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy generating both booleans uniformly.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.gen_bool(0.5)
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy generating ordered subsequences of a base vector.
        #[derive(Debug, Clone)]
        pub struct Subsequence<T> {
            base: Vec<T>,
            size: SizeRange,
        }

        /// Generates subsequences of `base` whose length falls in `size`.
        pub fn subsequence<T: Clone>(base: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
            let size = size.into();
            assert!(
                size.max <= base.len(),
                "subsequence length bound exceeds base length"
            );
            Subsequence { base, size }
        }

        impl<T: Clone> Strategy for Subsequence<T> {
            type Value = Vec<T>;

            fn generate(&self, rng: &mut StdRng) -> Vec<T> {
                let len = if self.size.min >= self.size.max {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..=self.size.max)
                };
                // Partial Fisher–Yates over the index set, then restore order.
                let mut indices: Vec<usize> = (0..self.base.len()).collect();
                for i in 0..len {
                    let j = rng.gen_range(i..indices.len());
                    indices.swap(i, j);
                }
                let mut chosen = indices[..len].to_vec();
                chosen.sort_unstable();
                chosen.iter().map(|&i| self.base[i].clone()).collect()
            }
        }
    }
}

/// An inclusive size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> SizeRange {
        SizeRange { min: len, max: len }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Everything the `proptest!` tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

fn seed_for(test_name: &str, case: u64) -> u64 {
    // FNV-1a over the test name, mixed with the case index and an optional
    // environment override so different streams can be explored.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let env: u64 = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ env
}

/// Drives one `proptest!`-declared test: generates `config.cases` inputs
/// and runs `test` on each, panicking with the offending input on the
/// first failure.
pub fn run_cases<S, F>(config: &ProptestConfig, test_name: &str, strategy: S, mut test: F)
where
    S: Strategy,
    S::Value: fmt::Debug + Clone,
    F: FnMut(S::Value) -> TestCaseResult,
{
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(seed_for(test_name, case as u64));
        let input = strategy.generate(&mut rng);
        let shown = format!("{input:?}");
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(input.clone())));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(TestCaseError::Fail(message))) => {
                panic!(
                    "proptest `{test_name}` failed at case {case}\n  input: {shown}\n  {message}"
                );
            }
            Err(panic_payload) => {
                eprintln!("proptest `{test_name}` panicked at case {case}\n  input: {shown}");
                std::panic::resume_unwind(panic_payload);
            }
        }
    }
}

/// Declares property tests: each `fn name(binding in strategy, …) { … }`
/// item becomes a `#[test]` running [`run_cases`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident(
        $($parm:pat in $strategy:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    &$config,
                    stringify!($name),
                    ($($strategy,)+),
                    |($($parm,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// the generated input reported) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u16..7, y in 1usize..=4) {
            prop_assert!(x < 7);
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_spec(
            v in prop::collection::vec(0u32..10, 2..5),
            w in prop::collection::vec(prop::bool::ANY, 3),
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn subsequences_preserve_order(
            sub in prop::sample::subsequence(vec![0usize, 1, 2, 3], 1..=4),
        ) {
            prop_assert!(!sub.is_empty());
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn prop_map_applies(doubled in (0u16..5).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0);
        }
    }

    #[test]
    fn failures_report_input() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(
                &ProptestConfig::with_cases(8),
                "always_fails",
                (0u16..3,),
                |(_x,)| Err(TestCaseError::fail("nope")),
            );
        });
        assert!(result.is_err());
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strategy = crate::prop::collection::vec(0u32..100, 0..10);
        let a: Vec<Vec<u32>> = (0..20)
            .map(|i| strategy.generate(&mut StdRng::seed_from_u64(i)))
            .collect();
        let b: Vec<Vec<u32>> = (0..20)
            .map(|i| strategy.generate(&mut StdRng::seed_from_u64(i)))
            .collect();
        assert_eq!(a, b);
    }
}
