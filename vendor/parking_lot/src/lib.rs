//! Offline stand-in for `parking_lot`, covering the subset this workspace
//! uses: `Mutex` (plus `RwLock` for symmetry) with the parking_lot lock API
//! — `lock()` returns the guard directly, no `Result`, no poisoning.
//!
//! Backed by `std::sync`; poison errors are unwrapped, matching
//! parking_lot's semantics of letting the next locker proceed after a
//! panicking holder (the protected data is test bookkeeping here).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed — the `&mut` receiver proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with the parking_lot (non-poisoning) API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
