//! Offline stand-in for `serde_json`: compact JSON emission and a strict
//! JSON parser over the serde stand-in's [`serde::Value`] data model.
//!
//! The emitted format matches real `serde_json::to_string` (no whitespace,
//! `"` / `\` / control-character escapes), so artifacts serialized by the
//! real library — like the checked-in `xn_4.json` table — round-trip.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(message: impl fmt::Display) -> Error {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serializes a value to human-readable, 2-space-indented JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0)?;
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::new("non-finite float"));
            }
            out.push_str(&x.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(value: &Value, out: &mut String, indent: usize) -> Result<(), Error> {
    let pad = |out: &mut String, level: usize| {
        for _ in 0..level * 2 {
            out.push(' ');
        }
    };
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_value_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_string(key, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
        }
        other => write_value(other, out)?,
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 character. Validate at
                    // most 4 bytes — validating the whole remaining input
                    // per character would make string parsing quadratic.
                    let chunk = &self.bytes[self.pos..(self.pos + 4).min(self.bytes.len())];
                    let valid = match std::str::from_utf8(chunk) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()]).expect("valid prefix")
                        }
                        Err(_) => return Err(Error::new("invalid UTF-8")),
                    };
                    let c = valid.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if let Some(digits) = text.strip_prefix('-') {
            digits
                .parse::<i64>()
                .map(|v| Value::Int(-v))
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<bool>(" true ").unwrap(), true);
        assert_eq!(
            from_str::<String>("\"a\\n\\\"b\\u0041\"").unwrap(),
            "a\n\"bA"
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![vec![1u16, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u16>>>(&json).unwrap(), v);
    }

    #[test]
    fn multibyte_strings_round_trip() {
        for s in ["héllo wörld", "日本語テキスト", "mixed ascii → 𝄞 clef"] {
            let json = to_string(&s.to_string()).unwrap();
            assert_eq!(from_str::<String>(&json).unwrap(), s);
        }
        // A multi-byte character straddling the end of input leaves the
        // string unterminated: an error, not a panic.
        assert!(from_str::<String>("\"日").is_err());
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
