//! Offline stand-in for `criterion`, covering the declaration surface this
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! `Criterion::{benchmark_group, bench_function}`, `BenchmarkGroup::
//! {sample_size, bench_with_input, finish}`, `BenchmarkId::from_parameter`,
//! `Bencher::iter`, and `black_box`.
//!
//! Instead of criterion's statistical machinery it runs a short warm-up,
//! then times `sample_size` batches and reports min/median/mean wall-clock
//! per iteration to stdout. Good enough to compare configurations of the
//! same code on the same machine, which is all the repo's experiment
//! scripts ask of it.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — defeats constant-folding of benchmark results.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// A benchmark identifier (`group/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-sample wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and pick an iteration count so one sample takes ≥ ~1 ms
        // (bounds timer noise for sub-microsecond routines).
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(1);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        let mut sorted = per_iter.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{name:<44} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark with an input parameter.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{id}", self.name));
        self
    }

    /// Runs one benchmark without a parameter.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{id}", self.name));
        self
    }

    /// Ends the group (separator line in the report).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) cargo-bench CLI arguments for compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: self.default_sample_size,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| black_box(x) + 1);
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1u64) * 2));
    }

    criterion_group!(smoke, trivial);

    #[test]
    fn harness_runs() {
        smoke();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(5).to_string(), "5");
        assert_eq!(BenchmarkId::new("f", 5).to_string(), "f/5");
    }
}
