//! End-to-end counterexample confirmation.
//!
//! A counterexample from the explorer is, so far, a claim about the
//! *abstract* executor. This module replays the schedule through two
//! independent implementations of the model and demands they agree:
//!
//! 1. the abstract executor ([`rcn_model::Execution`]), event by event;
//! 2. the threaded runtime ([`rcn_runtime::run_schedule`]): one OS thread
//!    per process over a real `NvHeap`, turn-coordinated to follow the
//!    schedule exactly.
//!
//! A confirmed counterexample produced the same outputs, the same first
//! violation, and (on the threaded side) a trace identical to the schedule
//! — there is nowhere left for a model-vs-implementation gap to hide.

use rcn_model::{Execution, ProcessId, Schedule, System, Violation};
use rcn_obs::Tracer;
use rcn_runtime::run_schedule_traced;
use std::fmt;

/// The two replays of one schedule, side by side.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// First violation per the abstract executor (initial-state outputs
    /// included).
    pub abstract_violation: Option<Violation>,
    /// First violation per the threaded runtime.
    pub threaded_violation: Option<Violation>,
    /// The outputs both sides produced (they are compared, so one copy
    /// suffices when [`outputs_match`](Self::outputs_match) holds).
    pub outputs: Vec<(ProcessId, u32)>,
    /// `true` if both replays produced identical output sequences.
    pub outputs_match: bool,
    /// `true` if the threaded runtime's recorded trace equals the input
    /// schedule event for event.
    pub trace_matches: bool,
}

impl ReplayReport {
    /// `true` if both replays violated identically, with matching outputs
    /// and a faithful threaded trace — the bar a counterexample must clear
    /// to be reported as confirmed.
    pub fn confirmed(&self) -> bool {
        self.abstract_violation.is_some()
            && self.abstract_violation == self.threaded_violation
            && self.outputs_match
            && self.trace_matches
    }
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = |v: &Option<Violation>| match v {
            Some(v) => v.to_string(),
            None => "no violation".to_string(),
        };
        write!(
            f,
            "abstract: {}; threaded: {}; outputs {}; trace {}",
            side(&self.abstract_violation),
            side(&self.threaded_violation),
            if self.outputs_match {
                "match"
            } else {
                "DIFFER"
            },
            if self.trace_matches {
                "faithful"
            } else {
                "DIVERGED"
            },
        )
    }
}

/// Replays `schedule` through both executors and compares them.
pub fn replay(system: &System, schedule: &Schedule) -> ReplayReport {
    replay_traced(system, schedule, &Tracer::disabled())
}

/// [`replay`] with observability: brackets both replays in a
/// `crashtest.replay` span, threads the tracer into the runtime's
/// [`run_schedule_traced`] (so the threaded side's `runtime.step` /
/// `runtime.crash` events land in the same trace), and counts confirmed
/// and diverged comparisons in `crashtest.replays_confirmed` /
/// `crashtest.replays_diverged`. With a disabled tracer this is exactly
/// [`replay`].
pub fn replay_traced(system: &System, schedule: &Schedule, tracer: &Tracer) -> ReplayReport {
    let span = tracer.span_with(
        "crashtest.replay",
        i64::try_from(schedule.len()).unwrap_or(i64::MAX),
        "",
    );
    let exec = Execution::record(system, schedule);
    let abstract_violation = system
        .check_initial_outputs(exec.initial())
        .or_else(|| exec.first_violation());
    let abstract_outputs = exec.outputs();

    let threaded = run_schedule_traced(system, schedule, tracer);
    drop(span);
    let report = ReplayReport {
        abstract_violation,
        threaded_violation: threaded.violation,
        outputs_match: abstract_outputs == threaded.outputs,
        trace_matches: threaded.trace == *schedule,
        outputs: abstract_outputs,
    };
    if report.confirmed() {
        tracer.add("crashtest.replays_confirmed", 1);
    } else if !report.outputs_match || !report.trace_matches {
        // A model-vs-implementation gap — always worth surfacing.
        tracer.add("crashtest.replays_diverged", 1);
        if tracer.recording() {
            tracer.event("crashtest.divergence", 0, &report.to_string());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{CrashExplorer, CrashtestConfig};
    use crate::shrink::shrink_counterexample;
    use rcn_protocols::{TasConsensus, TnnWaitFree};

    #[test]
    fn explorer_counterexamples_confirm_end_to_end() {
        for sys in [
            TasConsensus::system(vec![0, 1]),
            TnnWaitFree::system(2, 1, vec![0, 1]),
        ] {
            let report = CrashExplorer::new(&sys, CrashtestConfig::default()).explore();
            let cex = report.counterexample.expect("both protocols break");
            let full = replay(&sys, &cex.schedule);
            assert!(full.confirmed(), "raw schedule: {full}");
            let small = shrink_counterexample(&sys, &cex);
            let shrunk = replay(&sys, &small.schedule);
            assert!(shrunk.confirmed(), "shrunk schedule: {shrunk}");
            assert_eq!(shrunk.abstract_violation, Some(small.violation));
        }
    }

    #[test]
    fn clean_schedules_do_not_confirm() {
        let sys = TasConsensus::system(vec![0, 1]);
        let report = replay(&sys, &"p0 p0 p1 p1 p1".parse().unwrap());
        assert!(!report.confirmed());
        assert!(report.outputs_match);
        assert!(report.trace_matches);
        assert_eq!(report.abstract_violation, None);
        assert_eq!(report.threaded_violation, None);
    }
}
