//! # rcn-faults — systematic fault injection for crash-recovery protocols
//!
//! The paper's adversary chooses *where* processes crash; correctness means
//! surviving every choice. This crate makes that quantifier executable:
//!
//! * [`CrashExplorer`] — a bounded, memoized, deterministic work-list
//!   search over the abstract executor that enumerates every crash
//!   placement within a per-process crash budget and a depth cap, instead
//!   of sampling placements from an RNG; the frontier shards across a
//!   worker pool ([`CrashExplorer::with_threads`]) with a bit-identical
//!   verdict and counterexample at any thread count;
//! * [`ExplorerMemo`] — persistence for the explorer's verdicts and
//!   certified-clean memo facts through the `rcn-decide` `CacheIo`
//!   machinery, keyed by [`system_fingerprint`] plus the budget triple,
//!   so repeated `crashtest` runs resume instead of restarting;
//! * [`shrink_schedule`] / [`shrink_counterexample`] — delta-debugging
//!   reduction of a violating schedule to a 1-minimal one, so the reported
//!   counterexample contains only necessary events;
//! * [`replay`] — end-to-end confirmation: the shrunk schedule is
//!   re-executed through both the abstract executor and the threaded
//!   runtime ([`rcn_runtime::run_schedule`]) and must produce the same
//!   outputs and the same violation on both.
//!
//! The CLI surface is `rcn crashtest` (see the `rcn-cli` crate), which
//! rediscovers Golab's Test&Set counterexample and `T_{2,1}`'s
//! ⊥-divergence from scratch, and certifies `TnnRecoverable` and the
//! tournament protocol clean at the same budget.
//!
//! ## Quickstart
//!
//! ```
//! use rcn_faults::{crashtest, CrashtestConfig};
//! use rcn_protocols::TasConsensus;
//!
//! let sys = TasConsensus::system(vec![0, 1]);
//! let report = crashtest(&sys, CrashtestConfig::default());
//! let cex = report.counterexample.expect("T&S breaks under crashes");
//! assert!(!cex.schedule.is_crash_free());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diagnose;
mod explorer;
mod memo;
mod replay;
mod shrink;

pub use diagnose::{diagnose, Diagnosis, Divergence};
pub use explorer::{
    Counterexample, CrashExplorer, CrashtestConfig, CrashtestReport, ExploreStats, ExplorerStats,
};
pub use memo::{system_fingerprint, ExplorerMemo, EXPLORER_MEMO_VERSION};
pub use replay::{replay, replay_traced, ReplayReport};
pub use shrink::{
    shrink_counterexample, shrink_counterexample_traced, shrink_schedule, shrink_schedule_traced,
};

use rcn_model::System;
use rcn_obs::Tracer;

/// One-call crash exploration: runs a [`CrashExplorer`] over `system` with
/// the given budgets.
pub fn crashtest(system: &System, config: CrashtestConfig) -> CrashtestReport {
    CrashExplorer::new(system, config).explore()
}

/// [`crashtest`] with observability: the exploration is bracketed in a
/// `crashtest.explore` span and the `crashtest.*` counters and depth
/// histogram are maintained (see [`CrashExplorer::with_tracer`]).
pub fn crashtest_traced(
    system: &System,
    config: CrashtestConfig,
    tracer: &Tracer,
) -> CrashtestReport {
    CrashExplorer::new(system, config)
        .with_tracer(tracer.clone())
        .explore()
}
