//! Persistent crash-exploration memo: `crashtest` runs resume from disk.
//!
//! A crash exploration is pure in `(system, budget)` — the same system
//! explored under the same [`CrashtestConfig`] always yields the same
//! verdict and the same certified-clean memo facts. This module makes
//! that purity durable, exactly as `rcn-decide`'s `DiskCache` does for
//! reachability analyses:
//!
//! * one JSON file per `(system fingerprint, budget triple, fault
//!   model)`, named `crashtest-<fp>-c<K>-d<D>-s<S>-m<model>.json`,
//!   carrying a format-version header so stale layouts degrade to a
//!   cold run. The fault model is part of the key *and* the header: a
//!   clean verdict under `per-process` proves nothing about `system` or
//!   `mid-op` crashes, so memos written under one model must never be
//!   consumed under another;
//! * the key is a *content* hash ([`system_fingerprint`]): process
//!   count, inputs, every object's full transition table and initial
//!   value, plus a bounded walk of the crash-free step graph — renaming
//!   a protocol changes nothing, editing its table invalidates its memo;
//! * only *certified* results are stored: a found counterexample (a
//!   definitive verdict whatever else was cut short) or an exhaustive
//!   clean run together with its complete depth-aware memo. Partial
//!   runs (state-capped, timed out, panicked tasks) are never persisted
//!   — resuming from them could mislabel an under-explored state clean;
//! * a warm run with a stored counterexample replays it through the
//!   executor before trusting it (a stored schedule that no longer
//!   violates is damage, and quarantined); a warm run with stored clean
//!   facts re-runs the search seeded with them, so the traversal
//!   collapses onto the disk's work and [`resumed_states`] reports how
//!   much search the disk saved;
//! * damage handling is identical to `DiskCache`: unparseable or
//!   wrong-header files are quarantined to `.bad` (evidence preserved,
//!   recompute-forever loops broken), invalid facts are skipped at entry
//!   granularity, writes publish via unique temp file + atomic rename
//!   with one retry per operation, and every filesystem call goes
//!   through the [`CacheIo`] seam so the fail-point sweep covers each
//!   injection point.
//!
//! Trust model: as with `DiskCache`, a well-formed file whose *facts*
//! are falsified (states marked clean that are not) is indistinguishable
//! from a genuine one; counterexamples are replay-validated, clean facts
//! are not re-derived. Delete the memo directory to rebuild from
//! scratch.
//!
//! [`resumed_states`]: crate::ExplorerStats::resumed_states

use crate::explorer::{Counterexample, CrashtestConfig, CrashtestReport, ExplorerStats, MemoKey};
use rcn_decide::{type_fingerprint, CacheIo, SystemIo};
use rcn_model::{Action, Configuration, Event, LocalState, ProcessId, Schedule, System};
use rcn_obs::Tracer;
use rcn_spec::ValueId;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version stamp written into every explorer-memo file. Bump on any
/// change to the serialized shape; readers quarantine files with any
/// other version (unlike a wrong fingerprint, a wrong version at the
/// right path is damage worth evicting, not a neighbour's file).
///
/// Version history: 1 = budget triple only; 2 = the fault model joined
/// the header (and the file name), because a verdict under `per-process`
/// says nothing about `system` or `mid-op` crashes.
pub const EXPLORER_MEMO_VERSION: u32 = 2;

/// How many configurations the fingerprint's bounded crash-free walk
/// visits before truncating. The walk only needs to separate systems
/// whose object tables and inputs agree but whose programs differ, so a
/// bounded prefix of the step graph is plenty — and keeps fingerprinting
/// O(1)-ish even for systems whose full state space is the thing the
/// explorer is being paid to enumerate.
const FINGERPRINT_WALK_CAP: usize = 2048;

/// 64-bit FNV-1a content hash of a *system's* semantics: process count,
/// inputs, each heap object's [`type_fingerprint`] and initial value,
/// and a bounded breadth-first walk of the crash-free step graph
/// (configurations and step edges, in deterministic order).
///
/// Two systems with the same fingerprint behave identically under the
/// explored events (up to hash collision and walk truncation, which is
/// itself mixed in). Names and display strings deliberately do not
/// participate — two differently-named wrappers of one protocol share a
/// memo, and two random-table programs that share a name do not.
pub fn system_fingerprint(system: &System) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for byte in x.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mix_config = |mix: &mut dyn FnMut(u64), config: &Configuration| {
        for state in &config.states {
            mix(state.words().len() as u64);
            for &w in state.words() {
                mix(u64::from(w));
            }
        }
        for &v in &config.values {
            mix(u64::from(v.index() as u16));
        }
        for d in &config.decided {
            match d {
                Some(v) => mix(u64::from(*v) + 2),
                None => mix(1),
            }
        }
    };

    mix(system.n() as u64);
    for &input in system.inputs() {
        mix(u64::from(input));
    }
    let layout = system.layout();
    for id in layout.object_ids() {
        mix(type_fingerprint(layout.object_type(id)));
        mix(layout.initial(id).index() as u64);
    }

    // Bounded BFS over crash-free steps. `System::apply` is total (steps
    // of decided processes are no-ops), so unlike hashing raw transition
    // tables this can never panic on an infeasible (state, response)
    // combination.
    let initial = system.initial_config();
    let mut seen: HashSet<Configuration> = HashSet::new();
    let mut queue: VecDeque<Configuration> = VecDeque::new();
    seen.insert(initial.clone());
    queue.push_back(initial);
    let mut truncated = false;
    while let Some(config) = queue.pop_front() {
        mix_config(&mut mix, &config);
        for i in 0..system.n() {
            let p = ProcessId::new(i as u16);
            if matches!(system.action_of(&config, p), Action::Output(_)) {
                continue;
            }
            let mut next = config.clone();
            let effect = system.apply(&mut next, Event::Step(p));
            mix(i as u64);
            mix(u64::from(effect.violation.is_some()));
            if seen.len() < FINGERPRINT_WALK_CAP && seen.insert(next.clone()) {
                queue.push_back(next);
            } else if seen.len() >= FINGERPRINT_WALK_CAP {
                truncated = true;
            }
        }
    }
    mix(u64::from(truncated));
    hash
}

/// One persisted certified-clean memo fact: a `(configuration,
/// crash-counts)` state and the largest remaining schedule budget it was
/// exhaustively explored with.
#[derive(Serialize, Deserialize)]
struct FactRec {
    /// Per-process local-state words.
    states: Vec<Vec<u32>>,
    /// Per-object current values.
    values: Vec<u16>,
    /// Per-process first outputs (`None` = undecided).
    decided: Vec<Option<u32>>,
    /// Per-process crash counts spent reaching the state.
    counts: Vec<u64>,
    /// Remaining schedule budget the state was explored with.
    remaining: u64,
}

/// The stored verdict: the violating schedule (empty string = certified
/// clean) plus the effort counters of the run that produced it, so a
/// short-circuited warm run can report the original run's work as
/// `resumed_states`.
#[derive(Serialize, Deserialize)]
struct OutcomeRec {
    /// Paper-notation schedule (`p0 c1 …`); `""` means certified clean.
    schedule: String,
    states_visited: u64,
    events_applied: u64,
    memo_hits: u64,
    re_explored: u64,
    depth_limited: bool,
}

/// The on-disk file shape: versioned header, budget triple, verdict,
/// certified facts.
#[derive(Serialize, Deserialize)]
struct MemoFile {
    /// Must equal [`EXPLORER_MEMO_VERSION`].
    version: u32,
    /// Must equal the [`system_fingerprint`] of the system explored.
    fingerprint: u64,
    max_crashes: u64,
    max_depth: u64,
    max_states: u64,
    /// The three [`FaultModel`] flags the verdict was computed under.
    per_process: bool,
    system_wide: bool,
    mid_operation: bool,
    outcome: OutcomeRec,
    facts: Vec<FactRec>,
}

/// What a warm load produced.
pub(crate) enum MemoLoad {
    /// A stored, replay-validated verdict for this exact budget: the
    /// whole run short-circuits.
    Report(CrashtestReport),
    /// Stored certified-clean facts: pre-seed the memo and re-run.
    Facts(Vec<(MemoKey, usize)>),
    /// Nothing usable on disk.
    Miss,
}

/// Makes concurrent [`ExplorerMemo`] stores in one process use distinct
/// temp paths (same rationale as `DiskCache`).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory of persisted crash-exploration memos.
///
/// Cheap to construct; the directory is created lazily on the first
/// successful write. All read errors are silent misses — the memo is a
/// pure accelerator and must never turn a computable verdict into a
/// failure.
///
/// # Examples
///
/// ```
/// use rcn_faults::{CrashExplorer, CrashtestConfig, ExplorerMemo};
/// use rcn_protocols::TasConsensus;
///
/// let dir = std::env::temp_dir().join("rcn-doctest-explorer-memo");
/// let sys = TasConsensus::system(vec![0, 1]);
/// let cold = CrashExplorer::new(&sys, CrashtestConfig::default())
///     .with_memo(ExplorerMemo::new(&dir))
///     .explore();
/// let warm = CrashExplorer::new(&sys, CrashtestConfig::default())
///     .with_memo(ExplorerMemo::new(&dir))
///     .explore();
/// assert_eq!(warm.counterexample, cold.counterexample);
/// assert!(warm.stats.resumed_states > 0, "warm run resumes from disk");
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug, Clone)]
pub struct ExplorerMemo {
    dir: PathBuf,
    io: Arc<dyn CacheIo>,
}

impl ExplorerMemo {
    /// Creates a handle on `dir` (not touched until the first write).
    pub fn new(dir: impl Into<PathBuf>) -> ExplorerMemo {
        ExplorerMemo::with_io(dir, Arc::new(SystemIo))
    }

    /// Creates a handle performing all filesystem operations through
    /// `io` — the seam the fault-injection tests use.
    pub fn with_io(dir: impl Into<PathBuf>, io: Arc<dyn CacheIo>) -> ExplorerMemo {
        ExplorerMemo {
            dir: dir.into(),
            io,
        }
    }

    /// The memo directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file that holds the verdict and facts for this exact
    /// `(system, budget)` pair.
    fn file_path(&self, fingerprint: u64, config: &CrashtestConfig) -> PathBuf {
        self.dir.join(format!(
            "crashtest-{fingerprint:016x}-c{}-d{}-s{}-m{}.json",
            config.max_crashes,
            config.max_depth,
            config.max_states,
            config.fault_model.key()
        ))
    }

    /// Moves a damaged memo file aside to `.bad` — same semantics as
    /// `DiskCache`: evidence preserved, recompute-forever loops broken,
    /// best-effort.
    fn quarantine(&self, path: &Path, tracer: &Tracer) {
        let _ = self.io.rename(path, &path.with_extension("bad"));
        tracer.counter("crashtest.memo_quarantined").incr();
        if tracer.recording() {
            tracer.event("crashtest.memo.quarantine", 0, &path.to_string_lossy());
        }
    }

    /// Loads whatever this exact `(system, budget)` pair has on disk.
    ///
    /// A stored counterexample is replayed through the executor before
    /// being trusted; a schedule that does not violate (or does not fit
    /// the budget) is damage and quarantines the file. Stored clean
    /// facts are validated entry-by-entry; invalid facts are skipped.
    pub(crate) fn load(
        &self,
        system: &System,
        config: &CrashtestConfig,
        tracer: &Tracer,
    ) -> MemoLoad {
        let fingerprint = system_fingerprint(system);
        let path = self.file_path(fingerprint, config);
        let Ok(text) = self.io.read_to_string(&path) else {
            tracer.event("crashtest.memo.load", 0, "miss");
            return MemoLoad::Miss;
        };
        let bytes = i64::try_from(text.len()).unwrap_or(i64::MAX);
        let Ok(file) = serde_json::from_str::<MemoFile>(&text) else {
            self.quarantine(&path, tracer);
            tracer.event("crashtest.memo.load", bytes, "corrupt");
            return MemoLoad::Miss;
        };
        if file.version != EXPLORER_MEMO_VERSION
            || file.fingerprint != fingerprint
            || file.max_crashes != config.max_crashes as u64
            || file.max_depth != config.max_depth as u64
            || file.max_states != config.max_states as u64
            || file.per_process != config.fault_model.per_process
            || file.system_wide != config.fault_model.system_wide
            || file.mid_operation != config.fault_model.mid_operation
        {
            self.quarantine(&path, tracer);
            tracer.event("crashtest.memo.load", bytes, "header-mismatch");
            return MemoLoad::Miss;
        }

        if !file.outcome.schedule.is_empty() {
            // A stored violation: validate it is budget-legal and really
            // violates before short-circuiting the run on it.
            let Some(report) = self.validated_counterexample(system, config, &file.outcome) else {
                self.quarantine(&path, tracer);
                tracer.event("crashtest.memo.load", bytes, "replay-mismatch");
                return MemoLoad::Miss;
            };
            if tracer.recording() {
                tracer.event("crashtest.memo.load", bytes, "ok counterexample");
            }
            return MemoLoad::Report(report);
        }

        // A certified-clean outcome: validate facts entry-by-entry.
        let facts = self.validated_facts(system, config, file.facts);
        if tracer.recording() {
            tracer.event(
                "crashtest.memo.load",
                bytes,
                &format!("ok clean facts={}", facts.len()),
            );
        }
        MemoLoad::Facts(facts)
    }

    /// Replays a stored violating schedule; `None` means the record is
    /// damaged (illegal budget or no violation on replay).
    fn validated_counterexample(
        &self,
        system: &System,
        config: &CrashtestConfig,
        outcome: &OutcomeRec,
    ) -> Option<CrashtestReport> {
        let schedule: Schedule = outcome.schedule.parse().ok()?;
        if schedule.is_empty() || schedule.len() > config.max_depth {
            return None;
        }
        let n = system.n();
        let mut counts = vec![0usize; n];
        for event in schedule.iter() {
            if !config.fault_model.allows(event) {
                return None;
            }
            if let Some(p) = event.process() {
                if p.index() >= n {
                    return None;
                }
            }
            match event {
                Event::Crash(p) | Event::CrashDuring(p) => {
                    counts[p.index()] += 1;
                    if counts[p.index()] > config.max_crashes {
                        return None;
                    }
                }
                Event::SystemCrash => {
                    for c in counts.iter_mut() {
                        *c += 1;
                        if *c > config.max_crashes {
                            return None;
                        }
                    }
                }
                Event::Step(_) => {}
            }
        }
        let (_, violation) = system.run_from_start(&schedule);
        let violation = violation?;
        let stats = ExplorerStats {
            states_visited: outcome.states_visited,
            events_applied: outcome.events_applied,
            memo_hits: outcome.memo_hits,
            re_explored: outcome.re_explored,
            // The whole original search is what the disk saved.
            resumed_states: outcome.states_visited,
            depth_limited: outcome.depth_limited,
            ..ExplorerStats::default()
        };
        Some(CrashtestReport {
            stats,
            counterexample: Some(Counterexample {
                schedule,
                violation,
                // The caller re-runs diagnosis; divergence is derived, not
                // stored.
                divergence: None,
            }),
        })
    }

    /// Shape-validates stored facts against the system and budget;
    /// invalid records are skipped (entry granularity, like
    /// `DiskCache`'s per-entry validation).
    fn validated_facts(
        &self,
        system: &System,
        config: &CrashtestConfig,
        facts: Vec<FactRec>,
    ) -> Vec<(MemoKey, usize)> {
        let n = system.n();
        let layout = system.layout();
        let num_objects = layout.initial_values().len();
        let mut out = Vec::with_capacity(facts.len());
        for fact in facts {
            if fact.states.len() != n
                || fact.values.len() != num_objects
                || fact.decided.len() != n
                || fact.counts.len() != n
            {
                continue;
            }
            if fact
                .values
                .iter()
                .zip(layout.object_ids())
                .any(|(&v, id)| usize::from(v) >= layout.object_type(id).num_values())
            {
                continue;
            }
            if fact.counts.iter().any(|&c| c > config.max_crashes as u64)
                || fact.remaining > config.max_depth as u64
            {
                continue;
            }
            let key: MemoKey = (
                Configuration {
                    states: fact
                        .states
                        .into_iter()
                        .map(LocalState::from_words)
                        .collect(),
                    values: fact.values.into_iter().map(ValueId::new).collect(),
                    decided: fact.decided,
                },
                fact.counts.into_iter().map(|c| c as usize).collect(),
            );
            out.push((key, fact.remaining as usize));
        }
        out
    }

    /// Persists a certified result: a found counterexample, or an
    /// exhaustive clean verdict with its memo facts. Partial runs are
    /// not eligible and return `false` without touching the disk.
    /// Returns `true` on a successful publish; IO failures are silent
    /// (best-effort, reported through the tracer only), each operation
    /// retried once.
    pub(crate) fn store(
        &self,
        system: &System,
        config: &CrashtestConfig,
        report: &CrashtestReport,
        certified: &[(MemoKey, usize)],
        tracer: &Tracer,
    ) -> bool {
        let eligible = report.counterexample.is_some() || report.is_certified_clean();
        if !eligible {
            return false;
        }
        let fingerprint = system_fingerprint(system);
        let file = MemoFile {
            version: EXPLORER_MEMO_VERSION,
            fingerprint,
            max_crashes: config.max_crashes as u64,
            max_depth: config.max_depth as u64,
            max_states: config.max_states as u64,
            per_process: config.fault_model.per_process,
            system_wide: config.fault_model.system_wide,
            mid_operation: config.fault_model.mid_operation,
            outcome: OutcomeRec {
                schedule: report
                    .counterexample
                    .as_ref()
                    .map(|c| c.schedule.to_string())
                    .unwrap_or_default(),
                states_visited: report.stats.states_visited,
                events_applied: report.stats.events_applied,
                memo_hits: report.stats.memo_hits,
                re_explored: report.stats.re_explored,
                depth_limited: report.stats.depth_limited,
            },
            facts: if report.counterexample.is_some() {
                // A violation short-circuits warm runs entirely; partial
                // memo facts from an unwound search are not certified.
                Vec::new()
            } else {
                certified
                    .iter()
                    .map(|((config, counts), remaining)| FactRec {
                        states: config.states.iter().map(|s| s.words().to_vec()).collect(),
                        values: config.values.iter().map(|v| v.index() as u16).collect(),
                        decided: config.decided.clone(),
                        counts: counts.iter().map(|&c| c as u64).collect(),
                        remaining: *remaining as u64,
                    })
                    .collect()
            },
        };
        let fact_count = file.facts.len();
        let Ok(json) = serde_json::to_string(&file) else {
            return false;
        };
        let retries = tracer.counter("crashtest.memo_retries");
        let retry = |op: &dyn Fn() -> io::Result<()>| match op() {
            Ok(()) => true,
            // Transient fault: count the first failure, try once more.
            Err(_) => {
                retries.incr();
                op().is_ok()
            }
        };
        if !retry(&|| self.io.create_dir_all(&self.dir)) {
            self.store_event(tracer, false, 0, fact_count);
            return false;
        }
        let path = self.file_path(fingerprint, config);
        let tmp = path.with_extension(format!(
            "tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let json = json.as_bytes();
        let ok = retry(&|| self.io.write(&tmp, json)) && retry(&|| self.io.rename(&tmp, &path));
        if !ok {
            // Don't leave temp litter behind a failed publish; through
            // the io seam so the fail-point sweep covers it.
            let _ = self.io.remove_file(&tmp);
        }
        self.store_event(tracer, ok, json.len(), fact_count);
        ok
    }

    /// Records one `crashtest.memo.store` event plus the outcome counter.
    fn store_event(&self, tracer: &Tracer, ok: bool, bytes: usize, facts: usize) {
        tracer
            .counter(if ok {
                "crashtest.memo_stores"
            } else {
                "crashtest.memo_store_failures"
            })
            .incr();
        if tracer.recording() {
            tracer.event(
                "crashtest.memo.store",
                i64::try_from(bytes).unwrap_or(i64::MAX),
                &format!("{} facts={facts}", if ok { "ok" } else { "failed" }),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrashExplorer;
    use rcn_protocols::{TasConsensus, TnnRecoverable, TnnWaitFree};

    fn unit_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rcn-explorer-memo-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn fingerprint_is_semantic_and_deterministic() {
        let tas = TasConsensus::system(vec![0, 1]);
        assert_eq!(
            system_fingerprint(&tas),
            system_fingerprint(&TasConsensus::system(vec![0, 1]))
        );
        // Different inputs, different fingerprint.
        assert_ne!(
            system_fingerprint(&tas),
            system_fingerprint(&TasConsensus::system(vec![1, 0]))
        );
        // Different protocol dynamics, different fingerprint.
        assert_ne!(
            system_fingerprint(&TnnWaitFree::system(2, 1, vec![0, 1])),
            system_fingerprint(&TnnRecoverable::system(2, 1, vec![0, 1]))
        );
        // Different parameters of one family, different fingerprint.
        assert_ne!(
            system_fingerprint(&TnnRecoverable::system(5, 2, vec![0, 1])),
            system_fingerprint(&TnnRecoverable::system(5, 1, vec![0, 1]))
        );
    }

    #[test]
    fn warm_resume_short_circuits_on_a_stored_counterexample() {
        let dir = unit_dir("cex");
        let sys = TasConsensus::system(vec![0, 1]);
        let cold = CrashExplorer::new(&sys, CrashtestConfig::default())
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        let cold_cex = cold.counterexample.clone().expect("T&S breaks");
        assert_eq!(cold.stats.resumed_states, 0);

        let warm = CrashExplorer::new(&sys, CrashtestConfig::default())
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        assert_eq!(warm.counterexample, Some(cold_cex));
        assert!(
            warm.stats.resumed_states > 0,
            "the stored verdict must be credited as resumed work: {}",
            warm.stats
        );
        assert_eq!(warm.stats.resumed_states, cold.stats.states_visited);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_resume_collapses_a_clean_search_onto_disk_facts() {
        let dir = unit_dir("clean");
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let cfg = CrashtestConfig {
            max_crashes: 1,
            max_depth: 8,
            ..Default::default()
        };
        let cold = CrashExplorer::new(&sys, cfg)
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        assert!(cold.is_certified_clean());
        assert_eq!(cold.stats.resumed_states, 0);

        let warm = CrashExplorer::new(&sys, cfg)
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        assert!(warm.is_certified_clean());
        assert!(
            warm.stats.resumed_states > 0,
            "disk facts must prune the warm search: {}",
            warm.stats
        );
        assert!(
            warm.stats.states_visited < cold.stats.states_visited,
            "warm {} vs cold {}",
            warm.stats,
            cold.stats
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_is_part_of_the_key() {
        let dir = unit_dir("budget");
        let sys = TnnRecoverable::system(3, 1, vec![0, 1]);
        let tight = CrashtestConfig {
            max_crashes: 1,
            max_depth: 6,
            ..Default::default()
        };
        CrashExplorer::new(&sys, tight)
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        // A different budget misses the stored file entirely.
        let wide = CrashtestConfig {
            max_crashes: 1,
            max_depth: 8,
            ..Default::default()
        };
        let report = CrashExplorer::new(&sys, wide)
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        assert_eq!(
            report.stats.resumed_states, 0,
            "a different depth budget must not resume"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_memo_files_are_quarantined_to_bad() {
        let dir = unit_dir("quarantine");
        let sys = TasConsensus::system(vec![0, 1]);
        let cfg = CrashtestConfig::default();
        let memo = ExplorerMemo::new(&dir);
        let path = memo.file_path(system_fingerprint(&sys), &cfg);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, b"{definitely not a memo file").unwrap();

        let report = CrashExplorer::new(&sys, cfg).with_memo(memo).explore();
        assert!(report.counterexample.is_some(), "cold verdict still stands");
        assert_eq!(report.stats.resumed_states, 0);
        assert!(
            path.with_extension("bad").exists(),
            "evidence must be preserved as .bad"
        );
        // The slot was freed by the quarantine, so the same run
        // republished a fresh, loadable file.
        let warm = CrashExplorer::new(&sys, cfg)
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        assert!(warm.stats.resumed_states > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stored_counterexamples_are_replay_validated() {
        let dir = unit_dir("replay");
        let sys = TasConsensus::system(vec![0, 1]);
        let cfg = CrashtestConfig::default();
        CrashExplorer::new(&sys, cfg)
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        let memo = ExplorerMemo::new(&dir);
        let path = memo.file_path(system_fingerprint(&sys), &cfg);
        // Falsify the stored schedule into a harmless crash-free step —
        // a well-formed record whose replay finds no violation.
        let text = std::fs::read_to_string(&path).unwrap();
        let cold_cex = CrashExplorer::new(&sys, cfg)
            .explore()
            .counterexample
            .unwrap();
        let falsified = text.replace(&cold_cex.schedule.to_string(), "p0");
        assert_ne!(falsified, text, "the schedule must appear in the file");
        std::fs::write(&path, falsified).unwrap();

        let warm = CrashExplorer::new(&sys, cfg)
            .with_memo(ExplorerMemo::new(&dir))
            .explore();
        assert_eq!(
            warm.counterexample,
            Some(cold_cex),
            "a falsified record must fall back to a cold search"
        );
        assert!(
            path.with_extension("bad").exists(),
            "the falsified record is quarantined"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_runs_are_never_persisted() {
        let dir = unit_dir("partial");
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let capped = CrashExplorer::new(
            &sys,
            CrashtestConfig {
                max_states: 10,
                ..Default::default()
            },
        )
        .with_memo(ExplorerMemo::new(&dir))
        .explore();
        assert!(capped.stats.state_capped);
        assert!(
            !dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none(),
            "a capped run must not write a memo file"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
