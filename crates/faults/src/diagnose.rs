//! Post-mortem analysis of a violating schedule.
//!
//! A [`Violation`] says which consensus condition broke; the diagnosis adds
//! the *pattern*: in the crash-recovery model the signature failure mode is
//! a process that outputs, crashes, re-runs over the persistent objects and
//! outputs something else — the divergence at the heart of Golab's T&S
//! counterexample and of `T_{n,n'}`'s behavior past its operation budget.

use rcn_model::{Execution, ProcessId, Schedule, System, Violation};
use std::fmt;

/// A process that output two different values across a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// The diverging process.
    pub process: ProcessId,
    /// Its first output.
    pub first: u32,
    /// The later, conflicting output.
    pub second: u32,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} diverged: output {} then {}",
            self.process, self.first, self.second
        )
    }
}

/// Everything [`diagnose`] learns from replaying one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnosis {
    /// The first violation on the schedule (initial-state outputs
    /// included), if any.
    pub violation: Option<Violation>,
    /// The first same-process output divergence, if any.
    pub divergence: Option<Divergence>,
    /// Every output along the schedule, in order.
    pub outputs: Vec<(ProcessId, u32)>,
}

/// Replays `schedule` through the abstract executor and reports what broke.
pub fn diagnose(system: &System, schedule: &Schedule) -> Diagnosis {
    let exec = Execution::record(system, schedule);
    let violation = system
        .check_initial_outputs(exec.initial())
        .or_else(|| exec.first_violation());
    let outputs = exec.outputs();
    // First output per process: initial-state outputs are already recorded
    // in the initial configuration's decision table.
    let mut firsts: Vec<Option<u32>> = exec.initial().decided.clone();
    let mut divergence = None;
    for &(p, v) in &outputs {
        match firsts[p.index()] {
            Some(first) if first != v => {
                divergence = Some(Divergence {
                    process: p,
                    first,
                    second: v,
                });
                break;
            }
            Some(_) => {}
            None => firsts[p.index()] = Some(v),
        }
    }
    Diagnosis {
        violation,
        divergence,
        outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_protocols::TasConsensus;

    #[test]
    fn golabs_schedule_is_diagnosed_as_a_divergence() {
        let sys = TasConsensus::system(vec![0, 1]);
        let schedule: Schedule = "p0 p0 c0 p1 p1 p0 p0 p0 p1 p1".parse().unwrap();
        let d = diagnose(&sys, &schedule);
        assert!(d.violation.is_some(), "Golab's schedule must violate");
        let div = d
            .divergence
            .expect("p0 outputs twice with different values");
        assert_eq!(div.process, ProcessId(0));
        assert_ne!(div.first, div.second);
    }

    #[test]
    fn clean_schedules_have_nothing_to_report() {
        let sys = TasConsensus::system(vec![0, 1]);
        let d = diagnose(&sys, &"p0 p0 p1 p1 p1".parse().unwrap());
        assert_eq!(d.violation, None);
        assert_eq!(d.divergence, None);
        assert!(!d.outputs.is_empty());
    }
}
