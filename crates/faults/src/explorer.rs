//! Systematic crash-schedule exploration.
//!
//! The paper's adversary places crashes at arbitrary points of a schedule;
//! `rcn-runtime`'s `CrashyAdversary` and `run_threaded` only *sample* such
//! placements from a seeded RNG. This module enumerates them: a bounded,
//! memoized depth-first search over the abstract executor that considers a
//! crash of every process at every reachable configuration, up to a
//! per-process crash budget (the paper's `E_z`-style budgets bound crashes
//! per process, not globally) and a schedule-length cap.
//!
//! The search is deterministic — events are tried in a fixed order, so the
//! first counterexample found is the same on every run — and it is
//! exhaustive within its budget unless the state cap is hit, which the
//! verdict reports honestly ([`ExploreStats::state_capped`]).

use crate::diagnose::{diagnose, Divergence};
use rcn_model::{Action, Configuration, Event, ProcessId, Schedule, System, Violation};
use std::collections::HashSet;
use std::fmt;

/// Budgets for a crash-exploration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashtestConfig {
    /// Maximum crashes injected per process (the budget `K`): each process
    /// may crash at most this many times along any explored schedule.
    pub max_crashes: usize,
    /// Maximum schedule length explored (the depth cap `D`).
    pub max_depth: usize,
    /// Maximum number of distinct `(configuration, crash-counts)` states
    /// memoized before the search refuses to grow (a memory safety valve;
    /// hitting it makes a `Clean` verdict non-exhaustive).
    pub max_states: usize,
}

impl Default for CrashtestConfig {
    fn default() -> Self {
        CrashtestConfig {
            max_crashes: 2,
            max_depth: 16,
            max_states: 500_000,
        }
    }
}

/// Observability counters of one exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct `(configuration, crash-counts)` states visited.
    pub states_visited: u64,
    /// Events applied (edges traversed), counting revisits.
    pub events_applied: u64,
    /// `true` if some path was cut short by [`CrashtestConfig::max_depth`]
    /// while events were still enabled. Expected for any non-trivial
    /// protocol; the depth cap is part of the stated budget.
    pub depth_limited: bool,
    /// `true` if [`CrashtestConfig::max_states`] was hit: a clean verdict
    /// then only covers the states actually visited.
    pub state_capped: bool,
}

impl ExploreStats {
    /// `true` if a clean verdict covers *every* schedule within the
    /// configured budget.
    pub fn exhaustive(&self) -> bool {
        !self.state_capped
    }
}

impl fmt::Display for ExploreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} events",
            self.states_visited, self.events_applied
        )?;
        if self.state_capped {
            write!(f, " (state cap hit)")?;
        }
        Ok(())
    }
}

/// A schedule on which the system breaks a consensus condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The violating schedule (the exact DFS path; see
    /// [`crate::shrink_counterexample`] for minimization).
    pub schedule: Schedule,
    /// The violation the final event of the schedule triggers.
    pub violation: Violation,
    /// When the violating process itself had already output a different
    /// value (the crash-divergence pattern of Golab's T&S counterexample),
    /// the pair of conflicting outputs.
    pub divergence: Option<Divergence>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}  ⇒  {}", self.schedule, self.violation)?;
        if let Some(d) = &self.divergence {
            write!(f, " ({d})")?;
        }
        Ok(())
    }
}

/// The outcome of a crash exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashtestReport {
    /// Exploration counters (including the honesty flags).
    pub stats: ExploreStats,
    /// The first counterexample found, or `None` if every explored
    /// schedule is safe.
    pub counterexample: Option<Counterexample>,
}

impl CrashtestReport {
    /// `true` if no violation was found *and* the search covered the whole
    /// budget (no state cap hit).
    pub fn is_certified_clean(&self) -> bool {
        self.counterexample.is_none() && self.stats.exhaustive()
    }
}

/// The bounded, memoized DFS over crash placements.
pub struct CrashExplorer<'s> {
    system: &'s System,
    config: CrashtestConfig,
}

impl<'s> CrashExplorer<'s> {
    /// Creates an explorer for `system` with the given budgets.
    pub fn new(system: &'s System, config: CrashtestConfig) -> Self {
        CrashExplorer { system, config }
    }

    /// Runs the exploration: every schedule of length ≤ `max_depth` whose
    /// per-process crash counts stay within `max_crashes`, modulo
    /// memoization of already-seen `(configuration, crash-counts)` states.
    ///
    /// Deterministic: at each configuration the candidate events are tried
    /// in a fixed order (steps of `p0..pn`, then crashes of `p0..pn`), so
    /// the returned counterexample is the same on every run.
    pub fn explore(&self) -> CrashtestReport {
        let mut search = Search {
            system: self.system,
            budget: self.config,
            visited: HashSet::new(),
            path: Vec::new(),
            stats: ExploreStats::default(),
        };
        let initial = self.system.initial_config();
        // A protocol can violate before any event (conflicting or invalid
        // initial-state outputs).
        if let Some(violation) = self.system.check_initial_outputs(&initial) {
            return CrashtestReport {
                stats: search.stats,
                counterexample: Some(self.diagnosed(Schedule::new(), violation)),
            };
        }
        let crash_counts = vec![0usize; self.system.n()];
        search
            .visited
            .insert((initial.clone(), crash_counts.clone()));
        search.stats.states_visited = 1;
        let violation = search.dfs(&initial, &crash_counts, 0);
        CrashtestReport {
            stats: search.stats,
            counterexample: violation
                .map(|v| self.diagnosed(Schedule::from_events(search.path.iter().copied()), v)),
        }
    }

    /// Attaches the divergence diagnosis to a found violation.
    fn diagnosed(&self, schedule: Schedule, violation: Violation) -> Counterexample {
        let diagnosis = diagnose(self.system, &schedule);
        Counterexample {
            schedule,
            violation,
            divergence: diagnosis.divergence,
        }
    }
}

/// The mutable half of the DFS (split from the explorer so the recursion
/// can borrow it all mutably at once).
struct Search<'s> {
    system: &'s System,
    budget: CrashtestConfig,
    /// Memo: states we have already explored *from* (with these budgets
    /// spent). Crash counts are part of the key — the same configuration
    /// reached with more remaining budget can reach strictly more.
    visited: HashSet<(Configuration, Vec<usize>)>,
    path: Vec<Event>,
    stats: ExploreStats,
}

impl Search<'_> {
    /// Explores every enabled event from `config`; on a violation, leaves
    /// the violating schedule in `self.path` and unwinds immediately.
    fn dfs(
        &mut self,
        config: &Configuration,
        crash_counts: &[usize],
        depth: usize,
    ) -> Option<Violation> {
        if depth >= self.budget.max_depth {
            self.stats.depth_limited = true;
            return None;
        }
        let n = self.system.n();
        let candidates = (0..n)
            .map(|i| Event::Step(ProcessId(i as u16)))
            .chain((0..n).map(|i| Event::Crash(ProcessId(i as u16))));
        for event in candidates {
            let p = event.process();
            match event {
                // A step in an output state is a no-op; skip it.
                Event::Step(_) => {
                    if matches!(self.system.action_of(config, p), Action::Output(_)) {
                        continue;
                    }
                }
                Event::Crash(_) => {
                    if crash_counts[p.index()] >= self.budget.max_crashes {
                        continue;
                    }
                    // A crash of a process already in its initial state is
                    // a no-op: the state reset changes nothing, and any
                    // re-output it would re-check was already checked when
                    // an earlier event recorded the conflicting value.
                    if config.states[p.index()]
                        == self
                            .system
                            .program()
                            .initial_state(p, self.system.inputs()[p.index()])
                    {
                        continue;
                    }
                }
            }
            let mut next = config.clone();
            let effect = self.system.apply(&mut next, event);
            self.stats.events_applied += 1;
            self.path.push(event);
            if let Some(violation) = effect.violation {
                return Some(violation);
            }
            let mut next_counts = crash_counts.to_vec();
            if event.is_crash() {
                next_counts[p.index()] += 1;
            }
            let key = (next, next_counts);
            if !self.visited.contains(&key) {
                if self.visited.len() >= self.budget.max_states {
                    self.stats.state_capped = true;
                } else {
                    self.stats.states_visited += 1;
                    let (next, next_counts) = (key.0.clone(), key.1.clone());
                    self.visited.insert(key);
                    if let Some(v) = self.dfs(&next, &next_counts, depth + 1) {
                        return Some(v);
                    }
                }
            }
            self.path.pop();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_protocols::{TasConsensus, TnnRecoverable, TnnWaitFree, TournamentConsensus};
    use rcn_spec::zoo::StickyBit;
    use std::sync::Arc;

    fn explore(system: &System) -> CrashtestReport {
        CrashExplorer::new(system, CrashtestConfig::default()).explore()
    }

    #[test]
    fn rediscovers_golabs_tas_counterexample() {
        let sys = TasConsensus::system(vec![0, 1]);
        let report = explore(&sys);
        let cex = report.counterexample.expect("T&S must break under crashes");
        // Independently confirm the found schedule through the executor.
        let (_, violation) = sys.run_from_start(&cex.schedule);
        assert_eq!(violation, Some(cex.violation));
        assert!(
            !cex.schedule.is_crash_free(),
            "crash-free T&S runs are safe; the violation needs a crash: {cex}"
        );
    }

    #[test]
    fn rediscovers_tnn_bottom_divergence() {
        let sys = TnnWaitFree::system(2, 1, vec![0, 1]);
        let report = explore(&sys);
        let cex = report
            .counterexample
            .expect("T_{2,1} wait-free must diverge once the object saturates");
        let (_, violation) = sys.run_from_start(&cex.schedule);
        assert_eq!(violation, Some(cex.violation));
    }

    #[test]
    fn certifies_tnn_recoverable_clean() {
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let report = explore(&sys);
        assert!(
            report.is_certified_clean(),
            "recoverable T_{{5,2}} must survive every budgeted crash placement: {:?}",
            report.counterexample
        );
        assert!(report.stats.states_visited > 1);
    }

    #[test]
    fn certifies_tournament_clean() {
        let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![1, 0]).unwrap();
        let report = explore(&sys);
        assert!(
            report.is_certified_clean(),
            "tournament consensus must survive every budgeted crash placement: {:?}",
            report.counterexample
        );
    }

    #[test]
    fn exploration_is_deterministic() {
        let sys = TasConsensus::system(vec![0, 1]);
        let first = explore(&sys);
        for _ in 0..3 {
            assert_eq!(explore(&sys), first);
        }
    }

    #[test]
    fn zero_crash_budget_finds_nothing_on_crash_safe_protocols() {
        // T&S consensus is correct in the crash-free model; with a zero
        // crash budget the explorer must certify it clean.
        let sys = TasConsensus::system(vec![0, 1]);
        let report = CrashExplorer::new(
            &sys,
            CrashtestConfig {
                max_crashes: 0,
                ..Default::default()
            },
        )
        .explore();
        assert!(report.is_certified_clean(), "{:?}", report.counterexample);
    }

    #[test]
    fn state_cap_is_reported_honestly() {
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let report = CrashExplorer::new(
            &sys,
            CrashtestConfig {
                max_states: 10,
                ..Default::default()
            },
        )
        .explore();
        assert!(report.stats.state_capped);
        assert!(!report.is_certified_clean());
    }
}
