//! Systematic crash-schedule exploration.
//!
//! The paper's adversary places crashes at arbitrary points of a schedule;
//! `rcn-runtime`'s `CrashyAdversary` and `run_threaded` only *sample* such
//! placements from a seeded RNG. This module enumerates them: a bounded,
//! memoized search over the abstract executor that considers a crash of
//! every process at every reachable configuration, up to a per-process
//! crash budget (the paper's `E_z`-style budgets bound crashes per process,
//! not globally) and a schedule-length cap.
//!
//! The search is an explicit work-list depth-first traversal (no
//! recursion, so `--depth` in the thousands cannot overflow the stack).
//! Candidate events are tried in a fixed order — steps of `p0..pn`, then
//! crashes of `p0..pn` — so the traversal enumerates schedules in
//! lexicographic order and the first counterexample found is the
//! lexicographically-least violating schedule. That is the deterministic
//! tie-break every execution mode must reproduce:
//!
//! * **Sequential** (`threads == 1`, the default): one work-list DFS,
//!   bit-identical to the historical recursive explorer.
//! * **Sharded** ([`CrashExplorer::with_threads`]): the frontier is
//!   expanded breadth-first until there are enough lex-ordered,
//!   prefix-free subtree roots to feed the worker pool; each task runs
//!   the same work-list DFS with a task-local memo, publishing its memo
//!   entries into a shared certified-clean map only when the task
//!   completes without finding a violation (an abandoned task's pre-order
//!   entries are *not* certified and must never prune another task).
//!   A task that finds a violation cancels every lex-later task — sound
//!   because the roots are prefix-free and lex-ordered, so any violation
//!   in a later task is lex-greater. The final counterexample is the
//!   lex-least over all found, which equals the sequential one.
//! * **Resumed** ([`CrashExplorer::with_memo`]): certified-clean memo
//!   facts and final verdicts persist through the `CacheIo` machinery;
//!   a repeated run with the same system fingerprint and budget triple
//!   resumes instead of restarting (see [`crate::ExplorerMemo`]).
//!
//! The search is exhaustive within its budget unless the state cap or the
//! wall-clock timeout is hit, which the verdict reports honestly
//! ([`ExplorerStats::state_capped`], [`ExplorerStats::timed_out`]). Once
//! the state cap trips the search short-circuits immediately — walking
//! the remaining frontier could only burn events without restoring
//! exhaustiveness.
//!
//! Memoization is depth-aware: each `(configuration, crash-counts)` state
//! records the largest *remaining* schedule budget it has been explored
//! with, and is re-explored whenever it is reached with more budget left.
//! A plain visited-set would be unsound under the depth cap — a state first
//! reached deep (little budget left) would be skipped when reached again
//! along a shorter prefix, pruning schedules still within `max_depth`.

use crate::diagnose::{diagnose, Divergence};
use crate::memo::{ExplorerMemo, MemoLoad};
use rcn_model::{Action, Configuration, Event, FaultModel, ProcessId, Schedule, System, Violation};
use rcn_obs::{Counter, HistogramHandle, Tracer};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};

/// Budgets for a crash-exploration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashtestConfig {
    /// Maximum crashes injected per process (the budget `K`): each process
    /// may crash at most this many times along any explored schedule. A
    /// system-wide crash charges every process one crash at once; a
    /// mid-operation crash charges its process like an individual crash.
    pub max_crashes: usize,
    /// Maximum schedule length explored (the depth cap `D`).
    pub max_depth: usize,
    /// Maximum number of distinct `(configuration, crash-counts)` states
    /// memoized before the search refuses to grow (a memory safety valve;
    /// hitting it makes a `Clean` verdict non-exhaustive).
    pub max_states: usize,
    /// Which crash events the adversary may place
    /// ([`FaultModel::PER_PROCESS`] — the paper's model — by default).
    /// Part of the verdict's identity: the persistent memo keys on it, so
    /// a memo certified under one model is never consumed under another.
    pub fault_model: FaultModel,
}

impl Default for CrashtestConfig {
    fn default() -> Self {
        CrashtestConfig {
            max_crashes: 2,
            max_depth: 16,
            max_states: 500_000,
            fault_model: FaultModel::PER_PROCESS,
        }
    }
}

/// The explorer's public search-effort counters — the stable seam other
/// crates (the RCN200 cross-checker lint, the CLI, bench records) compare
/// and report. Tracer counters mirror these; the struct is authoritative
/// and available without any tracer attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExplorerStats {
    /// Distinct `(configuration, crash-counts)` states visited. In sharded
    /// mode each task counts its own visits, so this is an upper bound on
    /// the number of distinct states.
    pub states_visited: u64,
    /// Events applied (edges traversed), counting revisits.
    pub events_applied: u64,
    /// Child states skipped because the memo had already explored them
    /// with at least as much remaining budget.
    pub memo_hits: u64,
    /// Memoized states explored *again* because they were re-reached with
    /// more remaining budget (the depth-aware refinement).
    pub re_explored: u64,
    /// Memo hits served by facts loaded from the persistent memo (a
    /// subset of `memo_hits`), plus — when a stored verdict short-circuits
    /// the whole run — the stored run's `states_visited`. Zero on cold
    /// runs; a warm resume reports how much search the disk saved.
    pub resumed_states: u64,
    /// Worker tasks that panicked (isolated by `catch_unwind`): their
    /// subtrees are unexplored, so any clean verdict is partial.
    pub tasks_panicked: u64,
    /// `true` if some path was cut short by [`CrashtestConfig::max_depth`]
    /// while events were still enabled. Expected for any non-trivial
    /// protocol; the depth cap is part of the stated budget, and the
    /// depth-aware memoization keeps the search exhaustive over schedules
    /// of length ≤ `max_depth` even when this flag is set.
    pub depth_limited: bool,
    /// `true` if [`CrashtestConfig::max_states`] was hit: a clean verdict
    /// then only covers the states actually visited.
    pub state_capped: bool,
    /// `true` if the wall-clock timeout expired before the budget was
    /// covered: the verdict is an honest partial.
    pub timed_out: bool,
}

/// Former name of [`ExplorerStats`], kept as an alias.
pub type ExploreStats = ExplorerStats;

impl ExplorerStats {
    /// `true` if a clean verdict covers *every* schedule within the
    /// configured budget. `depth_limited` does not void exhaustiveness:
    /// the memoization is depth-aware, so every schedule of length ≤
    /// `max_depth` is still covered. Only the state cap, a timeout, or a
    /// panicked worker task — each of which stops the search from growing
    /// — makes a clean verdict partial.
    pub fn exhaustive(&self) -> bool {
        !self.state_capped && !self.timed_out && self.tasks_panicked == 0
    }
}

impl fmt::Display for ExplorerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} events, {} memo hits",
            self.states_visited, self.events_applied, self.memo_hits
        )?;
        if self.resumed_states > 0 {
            write!(f, ", {} resumed", self.resumed_states)?;
        }
        if self.state_capped {
            write!(f, " (state cap hit)")?;
        }
        if self.timed_out {
            write!(f, " (timed out)")?;
        }
        if self.tasks_panicked > 0 {
            write!(f, " ({} tasks panicked)", self.tasks_panicked)?;
        }
        Ok(())
    }
}

/// A schedule on which the system breaks a consensus condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The violating schedule (the lexicographically-least violating
    /// path within the budget; see [`crate::shrink_counterexample`] for
    /// minimization).
    pub schedule: Schedule,
    /// The violation the final event of the schedule triggers.
    pub violation: Violation,
    /// When the violating process itself had already output a different
    /// value (the crash-divergence pattern of Golab's T&S counterexample),
    /// the pair of conflicting outputs.
    pub divergence: Option<Divergence>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}  ⇒  {}", self.schedule, self.violation)?;
        if let Some(d) = &self.divergence {
            write!(f, " ({d})")?;
        }
        Ok(())
    }
}

/// The outcome of a crash exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashtestReport {
    /// Exploration counters (including the honesty flags).
    pub stats: ExplorerStats,
    /// The first counterexample found, or `None` if every explored
    /// schedule is safe.
    pub counterexample: Option<Counterexample>,
}

impl CrashtestReport {
    /// `true` if no violation was found *and* the search covered the whole
    /// budget (no state cap, timeout, or panicked task).
    pub fn is_certified_clean(&self) -> bool {
        self.counterexample.is_none() && self.stats.exhaustive()
    }
}

/// The memo key: a configuration plus the per-process crash counts spent
/// reaching it.
pub(crate) type MemoKey = (Configuration, Vec<usize>);

/// A memo entry: the largest remaining schedule budget the state was
/// explored with, and whether the entry came from the persistent memo.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MemoEntry {
    pub(crate) remaining: usize,
    pub(crate) from_disk: bool,
}

/// The bounded, memoized work-list DFS over crash placements.
pub struct CrashExplorer<'s> {
    system: &'s System,
    config: CrashtestConfig,
    tracer: Tracer,
    threads: usize,
    timeout: Option<Duration>,
    memo: Option<ExplorerMemo>,
}

impl<'s> CrashExplorer<'s> {
    /// Creates an explorer for `system` with the given budgets.
    pub fn new(system: &'s System, config: CrashtestConfig) -> Self {
        CrashExplorer {
            system,
            config,
            tracer: Tracer::disabled(),
            threads: 1,
            timeout: None,
            memo: None,
        }
    }

    /// Attaches a tracer: the exploration is bracketed in a
    /// `crashtest.explore` span, the DFS maintains the
    /// `crashtest.events_applied` / `crashtest.memo_hits` /
    /// `crashtest.re_explored` / `crashtest.resumed_states` counters and a
    /// `crashtest.depth` histogram (one observation per newly visited
    /// state), and the final [`ExplorerStats`] are published as
    /// `crashtest.*` counters.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Shards the search across `threads` worker threads. `threads <= 1`
    /// is the sequential search. Verdict and counterexample are
    /// bit-identical at any thread count (the lex-least tie-break);
    /// effort counters may differ because memo sharing is timing-
    /// dependent.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Bounds the exploration by wall-clock time. On expiry the search
    /// stops and the verdict is an honest partial
    /// ([`ExplorerStats::timed_out`]).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Attaches a persistent memo: certified verdicts and memo facts are
    /// stored through the `CacheIo` machinery and repeated runs with the
    /// same system fingerprint and budget triple resume instead of
    /// restarting ([`ExplorerStats::resumed_states`]).
    #[must_use]
    pub fn with_memo(mut self, memo: ExplorerMemo) -> Self {
        self.memo = Some(memo);
        self
    }

    /// The attached tracer ([`Tracer::disabled`] unless
    /// [`with_tracer`](Self::with_tracer) was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Runs the exploration: every schedule of length ≤ `max_depth` whose
    /// per-process crash counts stay within `max_crashes`, modulo
    /// memoization of already-seen `(configuration, crash-counts)` states.
    ///
    /// Deterministic: at each configuration the candidate events are tried
    /// in a fixed order (steps of `p0..pn`, then crashes of `p0..pn`), so
    /// the returned counterexample is the lexicographically-least
    /// violating schedule — the same at every thread count and on every
    /// run, warm or cold.
    pub fn explore(&self) -> CrashtestReport {
        let span = self.tracer.span_with(
            "crashtest.explore",
            i64::try_from(self.config.max_depth).unwrap_or(i64::MAX),
            &format!(
                "crashes={} states={} threads={}",
                self.config.max_crashes, self.config.max_states, self.threads
            ),
        );
        let initial = self.system.initial_config();
        // A protocol can violate before any event (conflicting or invalid
        // initial-state outputs).
        if let Some(violation) = self.system.check_initial_outputs(&initial) {
            let report = CrashtestReport {
                stats: ExplorerStats::default(),
                counterexample: Some(self.diagnosed(Schedule::new(), violation)),
            };
            self.publish(&report, &span);
            return report;
        }
        let crash_counts = vec![0usize; self.system.n()];

        // Warm start: a stored verdict for this exact (fingerprint,
        // budget) short-circuits; stored certified-clean facts pre-seed
        // the memo so the search collapses onto the disk's work.
        let mut facts: Vec<(MemoKey, usize)> = Vec::new();
        let mut loaded_from_disk = false;
        if let Some(memo) = &self.memo {
            match memo.load(self.system, &self.config, &self.tracer) {
                MemoLoad::Report(mut report) => {
                    report.counterexample = report
                        .counterexample
                        .map(|cex| self.diagnosed(cex.schedule, cex.violation));
                    self.tracer
                        .counter("crashtest.resumed_states")
                        .add(report.stats.resumed_states);
                    self.publish(&report, &span);
                    return report;
                }
                MemoLoad::Facts(f) => {
                    facts = f;
                    loaded_from_disk = true;
                }
                MemoLoad::Miss => {}
            }
        }

        let deadline = self.timeout.map(|t| Instant::now() + t);
        let (stats, found, certified) = if self.threads <= 1 {
            self.explore_sequential(&initial, &crash_counts, facts, deadline)
        } else {
            self.explore_parallel(&initial, &crash_counts, facts, deadline)
        };
        let report = CrashtestReport {
            stats,
            counterexample: found.map(|(path, v)| self.diagnosed(Schedule::from_events(path), v)),
        };
        if let Some(memo) = &self.memo {
            // A warm run's memo collapsed onto the disk facts; re-storing
            // it would shrink the file. Only cold results are persisted.
            if !loaded_from_disk {
                memo.store(self.system, &self.config, &report, &certified, &self.tracer);
            }
        }
        self.publish(&report, &span);
        report
    }

    /// The sequential work-list search (also the `threads == 1` mode).
    fn explore_sequential(
        &self,
        initial: &Configuration,
        crash_counts: &[usize],
        facts: Vec<(MemoKey, usize)>,
        deadline: Option<Instant>,
    ) -> SearchResult {
        let mut search = Search::new(self.system, self.config, &self.tracer, deadline, None, 0);
        for (key, remaining) in facts {
            search.visited.insert(
                key,
                MemoEntry {
                    remaining,
                    from_disk: true,
                },
            );
        }
        search.visited.insert(
            (initial.clone(), crash_counts.to_vec()),
            MemoEntry {
                remaining: self.config.max_depth,
                from_disk: false,
            },
        );
        search.stats.states_visited = 1;
        search.depths.observe(0);
        let outcome = search.run(initial.clone(), crash_counts.to_vec(), 0);
        match outcome {
            TaskOutcome::Violation(v) => (search.stats, Some((search.path, v)), Vec::new()),
            TaskOutcome::CleanComplete => {
                let certified = if search.stats.exhaustive() {
                    search
                        .visited
                        .into_iter()
                        .map(|(k, e)| (k, e.remaining))
                        .collect()
                } else {
                    Vec::new()
                };
                (search.stats, None, certified)
            }
            TaskOutcome::Aborted => (search.stats, None, Vec::new()),
        }
    }

    /// The sharded search: expand the frontier breadth-first into
    /// lex-ordered, prefix-free task roots, then run a work-list DFS per
    /// task across the worker pool.
    fn explore_parallel(
        &self,
        initial: &Configuration,
        crash_counts: &[usize],
        facts: Vec<(MemoKey, usize)>,
        deadline: Option<Instant>,
    ) -> SearchResult {
        let n = self.system.n();
        let shared = SharedCtx {
            certified: RwLock::new(
                facts
                    .into_iter()
                    .map(|(k, r)| {
                        (
                            k,
                            MemoEntry {
                                remaining: r,
                                from_disk: true,
                            },
                        )
                    })
                    .collect(),
            ),
            total_states: AtomicU64::new(1),
            capped: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            best_task: AtomicUsize::new(usize::MAX),
        };
        let events = self.tracer.counter("crashtest.events_applied");
        let memo_hits = self.tracer.counter("crashtest.memo_hits");
        let resumed = self.tracer.counter("crashtest.resumed_states");
        let depths = self.tracer.histogram("crashtest.depth");

        let mut stats = ExplorerStats {
            states_visited: 1,
            ..ExplorerStats::default()
        };
        depths.observe(0);

        // Phase 1: breadth-first expansion into task roots. Levels are
        // generated in lex order (nodes in order × candidates in order),
        // so the frontier is a lex-sorted, prefix-free set of subtree
        // roots. Violations found here are collected, their subtrees
        // pruned; certified disk facts prune clean subtrees early.
        let target = self.threads * 4;
        let mut frontier = vec![ExpNode {
            config: initial.clone(),
            counts: crash_counts.to_vec(),
            path: Vec::new(),
        }];
        let mut depth = 0usize;
        let mut violations: Vec<(Vec<Event>, Violation)> = Vec::new();
        'expand: while !frontier.is_empty()
            && frontier.len() < target
            && depth < self.config.max_depth
        {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                stats.timed_out = true;
                frontier.clear();
                break;
            }
            let mut next_level = Vec::with_capacity(frontier.len() * 2);
            for node in &frontier {
                for idx in 0..candidate_limit(n) {
                    let Some(event) = enabled_candidate(
                        self.system,
                        &node.config,
                        &node.counts,
                        idx,
                        &self.config,
                    ) else {
                        continue;
                    };
                    let mut next_config = node.config.clone();
                    let effect = self.system.apply(&mut next_config, event);
                    stats.events_applied += 1;
                    events.incr();
                    let mut path = node.path.clone();
                    path.push(event);
                    if let Some(v) = effect.violation {
                        violations.push((path, v));
                        continue;
                    }
                    let mut next_counts = node.counts.clone();
                    charge_crash(&mut next_counts, event);
                    let remaining = self.config.max_depth - (depth + 1);
                    let key = (next_config, next_counts);
                    if let Some(entry) = shared.certified.read().unwrap().get(&key) {
                        if entry.remaining >= remaining {
                            stats.memo_hits += 1;
                            memo_hits.incr();
                            if entry.from_disk {
                                stats.resumed_states += 1;
                                resumed.incr();
                            }
                            continue;
                        }
                    }
                    let total = shared.total_states.fetch_add(1, Ordering::SeqCst);
                    if total >= self.config.max_states as u64 {
                        shared.capped.store(true, Ordering::SeqCst);
                        stats.state_capped = true;
                        frontier = Vec::new();
                        break 'expand;
                    }
                    stats.states_visited += 1;
                    depths.observe(depth as u64 + 1);
                    next_level.push(ExpNode {
                        config: key.0,
                        counts: key.1,
                        path,
                    });
                }
            }
            frontier = next_level;
            depth += 1;
        }
        if depth >= self.config.max_depth && !frontier.is_empty() {
            // Roots sitting exactly at the depth cap: their tasks would
            // only set the flag and return, so record it here.
            stats.depth_limited = true;
            frontier.clear();
        }

        // A violation found during expansion makes every lex-later task
        // root irrelevant: its subtree can only contain lex-greater
        // violations.
        let mut tasks = frontier;
        if let Some((vpath, _)) = violations.iter().min_by(|a, b| lex_cmp(n, &a.0, &b.0)) {
            let vpath = vpath.clone();
            tasks.retain(|t| lex_cmp(n, &t.path, &vpath) == std::cmp::Ordering::Less);
        }

        // Phase 2: workers claim tasks in lex index order; each task is a
        // panic-isolated sequential work-list DFS.
        let found: Mutex<Vec<(Vec<Event>, Violation)>> = Mutex::new(violations);
        let panicked = AtomicU64::new(0);
        if !tasks.is_empty() {
            let next_task = AtomicUsize::new(0);
            let worker_count = self.threads.min(tasks.len());
            let task_stats: Mutex<Vec<ExplorerStats>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..worker_count {
                    scope.spawn(|| {
                        let mut local = ExplorerStats::default();
                        loop {
                            let i = next_task.fetch_add(1, Ordering::SeqCst);
                            if i >= tasks.len() {
                                break;
                            }
                            // A lex-earlier task already found a
                            // violation: this task's subtree is
                            // irrelevant.
                            if shared.best_task.load(Ordering::SeqCst) < i {
                                continue;
                            }
                            let task = &tasks[i];
                            let run = catch_unwind(AssertUnwindSafe(|| {
                                self.run_task(task, i, &shared, deadline)
                            }));
                            match run {
                                Ok((TaskOutcome::Violation(v), s, path, _)) => {
                                    shared.best_task.fetch_min(i, Ordering::SeqCst);
                                    found.lock().unwrap().push((path, v));
                                    merge_stats(&mut local, s);
                                }
                                Ok((TaskOutcome::CleanComplete, s, _, visited)) => {
                                    // Every entry of a violation-free,
                                    // fully-explored task is a certified
                                    // clean fact, safe to share.
                                    let mut map = shared.certified.write().unwrap();
                                    for (k, e) in visited {
                                        match map.get(&k) {
                                            Some(old) if old.remaining >= e.remaining => {}
                                            _ => {
                                                map.insert(k, e);
                                            }
                                        }
                                    }
                                    drop(map);
                                    merge_stats(&mut local, s);
                                }
                                Ok((TaskOutcome::Aborted, s, _, _)) => merge_stats(&mut local, s),
                                Err(_) => {
                                    panicked.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                        }
                        task_stats.lock().unwrap().push(local);
                    });
                }
            });
            for s in task_stats.into_inner().unwrap() {
                merge_stats(&mut stats, s);
            }
        }

        stats.state_capped |= shared.capped.load(Ordering::SeqCst);
        stats.timed_out |= shared.timed_out.load(Ordering::SeqCst);
        stats.tasks_panicked += panicked.load(Ordering::SeqCst);

        let found = found.into_inner().unwrap();
        let best = found.into_iter().min_by(|a, b| lex_cmp(n, &a.0, &b.0));
        let certified = if best.is_none() && stats.exhaustive() {
            shared
                .certified
                .into_inner()
                .unwrap()
                .into_iter()
                .map(|(k, e)| (k, e.remaining))
                .collect()
        } else {
            Vec::new()
        };
        (stats, best, certified)
    }

    /// Runs one sharded task: a work-list DFS from `task`'s root with a
    /// task-local memo, consulting the shared certified-clean map.
    fn run_task(
        &self,
        task: &ExpNode,
        index: usize,
        shared: &SharedCtx,
        deadline: Option<Instant>,
    ) -> (
        TaskOutcome,
        ExplorerStats,
        Vec<Event>,
        HashMap<MemoKey, MemoEntry>,
    ) {
        let mut search = Search::new(
            self.system,
            self.config,
            &self.tracer,
            deadline,
            Some(shared),
            index,
        );
        search.path = task.path.clone();
        // The root was already counted as a visited state during
        // expansion; seed the local memo without re-counting it.
        search.visited.insert(
            (task.config.clone(), task.counts.clone()),
            MemoEntry {
                remaining: self.config.max_depth - task.path.len(),
                from_disk: false,
            },
        );
        let outcome = search.run(task.config.clone(), task.counts.clone(), task.path.len());
        (outcome, search.stats, search.path, search.visited)
    }

    /// Publishes the final [`ExplorerStats`] as absolute `crashtest.*`
    /// counters and records the counterexample (if any) as an event inside
    /// the exploration span.
    fn publish(&self, report: &CrashtestReport, span: &rcn_obs::Span) {
        if !self.tracer.enabled() {
            return;
        }
        self.tracer
            .set("crashtest.states_visited", report.stats.states_visited);
        self.tracer.set(
            "crashtest.depth_limited",
            u64::from(report.stats.depth_limited),
        );
        self.tracer.set(
            "crashtest.state_capped",
            u64::from(report.stats.state_capped),
        );
        self.tracer
            .set("crashtest.timed_out", u64::from(report.stats.timed_out));
        self.tracer
            .set("crashtest.tasks_panicked", report.stats.tasks_panicked);
        self.tracer.set("crashtest.threads", self.threads as u64);
        self.tracer.set(
            "crashtest.counterexamples",
            u64::from(report.counterexample.is_some()),
        );
        if self.tracer.recording() {
            if let Some(cex) = &report.counterexample {
                span.event(
                    "crashtest.counterexample",
                    i64::try_from(cex.schedule.len()).unwrap_or(i64::MAX),
                    &cex.violation.to_string(),
                );
            }
        }
    }

    /// Attaches the divergence diagnosis to a found violation.
    fn diagnosed(&self, schedule: Schedule, violation: Violation) -> Counterexample {
        let diagnosis = diagnose(self.system, &schedule);
        Counterexample {
            schedule,
            violation,
            divergence: diagnosis.divergence,
        }
    }
}

/// `(stats, lex-least violation with its path, certified clean facts)` —
/// the internal result of either execution mode. Facts are non-empty only
/// for certified-clean runs (they feed the persistent memo).
type SearchResult = (
    ExplorerStats,
    Option<(Vec<Event>, Violation)>,
    Vec<(MemoKey, usize)>,
);

/// A frontier node of the breadth-first expansion (a task root).
struct ExpNode {
    config: Configuration,
    counts: Vec<usize>,
    path: Vec<Event>,
}

/// State shared across worker tasks.
struct SharedCtx {
    /// Certified clean facts: entries published by violation-free,
    /// fully-explored tasks (plus disk-loaded facts). Sound to prune on
    /// from any task — unlike pre-order local entries, which are only
    /// certain once their task completes clean.
    certified: RwLock<HashMap<MemoKey, MemoEntry>>,
    /// Freshly visited states across all tasks, for the global state cap.
    total_states: AtomicU64,
    capped: AtomicBool,
    timed_out: AtomicBool,
    /// The smallest task index that found a violation; every lex-later
    /// task is skipped or aborted (its violations would be lex-greater).
    best_task: AtomicUsize,
}

/// The size of the candidate index space for `n` processes: steps
/// (`0..n`), per-process crashes (`n..2n`), the system-wide crash (`2n`),
/// and mid-operation crashes (`2n+1..3n+1`). Candidates whose fault family
/// the model disables simply resolve to `None`, so the per-process-only
/// search walks exactly the same sequence of applied events as before the
/// extended families existed.
fn candidate_limit(n: usize) -> usize {
    3 * n + 1
}

/// The candidate event at `idx` (see [`candidate_limit`] for the index
/// layout), or `None` if it is skipped at this configuration: steps of
/// output states, crash families the fault model disables, crashes of
/// budget-exhausted or initial-state processes, system-wide crashes
/// without full budget everywhere, and mid-operation crashes of processes
/// with no operation in flight are all no-ops.
fn enabled_candidate(
    system: &System,
    config: &Configuration,
    counts: &[usize],
    idx: usize,
    cfg: &CrashtestConfig,
) -> Option<Event> {
    let n = system.n();
    let max_crashes = cfg.max_crashes;
    let model = cfg.fault_model;
    if idx < n {
        let p = ProcessId(idx as u16);
        // A step in an output state is a no-op; skip it.
        if matches!(system.action_of(config, p), Action::Output(_)) {
            return None;
        }
        Some(Event::Step(p))
    } else if idx < 2 * n {
        let p = ProcessId((idx - n) as u16);
        if !model.per_process || counts[p.index()] >= max_crashes {
            return None;
        }
        // A crash of a process already in its initial state is a no-op:
        // the state reset changes nothing, and any re-output it would
        // re-check was already checked when an earlier event recorded the
        // conflicting value.
        if config.states[p.index()]
            == system
                .program()
                .initial_state(p, system.inputs()[p.index()])
        {
            return None;
        }
        Some(Event::Crash(p))
    } else if idx == 2 * n {
        // A system-wide crash charges every process one crash, so it needs
        // budget left everywhere; with every process already in its
        // initial state it is a no-op (same argument as above, applied to
        // all processes at once).
        if !model.system_wide || counts.iter().any(|&c| c >= max_crashes) {
            return None;
        }
        let all_initial = (0..n).all(|i| {
            let p = ProcessId(i as u16);
            config.states[i] == system.program().initial_state(p, system.inputs()[i])
        });
        if all_initial {
            return None;
        }
        Some(Event::SystemCrash)
    } else {
        let p = ProcessId((idx - 2 * n - 1) as u16);
        if !model.mid_operation || counts[p.index()] >= max_crashes {
            return None;
        }
        // A mid-operation crash needs an operation in flight; without one
        // it degenerates to an ordinary crash (covered by the `c_p`
        // candidate when per-process crashes are enabled).
        if !matches!(system.action_of(config, p), Action::Invoke { .. }) {
            return None;
        }
        Some(Event::CrashDuring(p))
    }
}

/// Charges `event` against the per-process crash budgets: individual and
/// mid-operation crashes charge their process; a system-wide crash charges
/// every process at once. The DFS and the independent BFS checker in
/// `rcn-mc` must account identically or their verdicts drift.
fn charge_crash(counts: &mut [usize], event: Event) {
    match event {
        Event::Crash(p) | Event::CrashDuring(p) => counts[p.index()] += 1,
        Event::SystemCrash => {
            for c in counts.iter_mut() {
                *c += 1;
            }
        }
        Event::Step(_) => {}
    }
}

/// Total order on schedules matching the DFS candidate order: steps of
/// `p0..pn`, then crashes of `p0..pn`, then the system-wide crash, then
/// mid-operation crashes of `p0..pn`, position by position; a proper
/// prefix sorts first. DFS preorder enumerates paths in exactly this
/// order, so "first counterexample of the sequential search" and
/// "lex-least violating schedule" coincide.
fn lex_cmp(n: usize, a: &[Event], b: &[Event]) -> std::cmp::Ordering {
    let rank = |e: &Event| match e {
        Event::Step(p) => p.index(),
        Event::Crash(p) => n + p.index(),
        Event::SystemCrash => 2 * n,
        Event::CrashDuring(p) => 2 * n + 1 + p.index(),
    };
    for (x, y) in a.iter().zip(b.iter()) {
        match rank(x).cmp(&rank(y)) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

fn merge_stats(into: &mut ExplorerStats, from: ExplorerStats) {
    into.states_visited += from.states_visited;
    into.events_applied += from.events_applied;
    into.memo_hits += from.memo_hits;
    into.re_explored += from.re_explored;
    into.resumed_states += from.resumed_states;
    into.tasks_panicked += from.tasks_panicked;
    into.depth_limited |= from.depth_limited;
    into.state_capped |= from.state_capped;
    into.timed_out |= from.timed_out;
}

/// How one task (or the whole sequential search) ended.
enum TaskOutcome {
    /// A violation was found; the path is left in `Search::path`.
    Violation(Violation),
    /// The subtree was fully explored without a violation: every local
    /// memo entry is a certified clean fact.
    CleanComplete,
    /// Cut short by the state cap, the deadline, or a lex-earlier task's
    /// counterexample; local entries are *not* certified.
    Aborted,
}

/// One explicit DFS frame: a configuration with the index of the next
/// candidate event to try. The frame owns the path slot its arrival event
/// occupies (`has_event` is false only for the search root).
struct Frame {
    config: Configuration,
    counts: Vec<usize>,
    depth: usize,
    next: usize,
    has_event: bool,
}

/// How the memo judged a freshly generated child state.
enum MemoVerdict {
    Explore,
    Skip,
    Capped,
}

/// The mutable half of one work-list DFS (the whole search in sequential
/// mode, one task in sharded mode).
struct Search<'a> {
    system: &'a System,
    budget: CrashtestConfig,
    /// Memo: for each state already explored *from*, the largest remaining
    /// schedule budget (`max_depth - depth`) it was explored with. Crash
    /// counts are part of the key, and a state reached again with *more*
    /// remaining budget is re-explored — the same configuration with more
    /// budget (crash or depth) left can reach strictly more.
    visited: HashMap<MemoKey, MemoEntry>,
    path: Vec<Event>,
    stats: ExplorerStats,
    /// Live instrument handles (no-ops under a disabled tracer), resolved
    /// once so the hot loop never touches the registry's lock.
    events: Counter,
    memo_hits: Counter,
    re_explored: Counter,
    resumed: Counter,
    depths: HistogramHandle,
    deadline: Option<Instant>,
    shared: Option<&'a SharedCtx>,
    task_index: usize,
}

impl<'a> Search<'a> {
    fn new(
        system: &'a System,
        budget: CrashtestConfig,
        tracer: &Tracer,
        deadline: Option<Instant>,
        shared: Option<&'a SharedCtx>,
        task_index: usize,
    ) -> Self {
        Search {
            system,
            budget,
            visited: HashMap::new(),
            path: Vec::new(),
            stats: ExplorerStats::default(),
            events: tracer.counter("crashtest.events_applied"),
            memo_hits: tracer.counter("crashtest.memo_hits"),
            re_explored: tracer.counter("crashtest.re_explored"),
            resumed: tracer.counter("crashtest.resumed_states"),
            depths: tracer.histogram("crashtest.depth"),
            deadline,
            shared,
            task_index,
        }
    }

    /// Explores every enabled event from the root, depth-first via an
    /// explicit frame stack (no recursion: `--depth` in the thousands is
    /// a heap allocation, not a stack overflow). On a violation, the
    /// violating schedule is left in `self.path`.
    fn run(&mut self, config: Configuration, counts: Vec<usize>, depth: usize) -> TaskOutcome {
        let n = self.system.n();
        let mut stack = vec![Frame {
            config,
            counts,
            depth,
            next: 0,
            has_event: false,
        }];
        let mut ticks: u32 = 0;
        while !stack.is_empty() {
            ticks = ticks.wrapping_add(1);
            // Checked on the first iteration (an already-expired deadline
            // aborts before any work) and every 1024th thereafter.
            if ticks & 0x3FF == 1 && self.should_abort() {
                return TaskOutcome::Aborted;
            }
            let top = stack.len() - 1;
            if stack[top].depth >= self.budget.max_depth {
                self.stats.depth_limited = true;
                self.pop_frame(&mut stack);
                continue;
            }
            if stack[top].next >= candidate_limit(n) {
                self.pop_frame(&mut stack);
                continue;
            }
            let idx = stack[top].next;
            stack[top].next += 1;
            let frame = &stack[top];
            let Some(event) =
                enabled_candidate(self.system, &frame.config, &frame.counts, idx, &self.budget)
            else {
                continue;
            };
            let mut next_config = frame.config.clone();
            let effect = self.system.apply(&mut next_config, event);
            self.stats.events_applied += 1;
            self.events.incr();
            self.path.push(event);
            if let Some(violation) = effect.violation {
                return TaskOutcome::Violation(violation);
            }
            let mut next_counts = frame.counts.to_vec();
            charge_crash(&mut next_counts, event);
            // Remaining schedule budget at the child. A state is skipped
            // only if it was already explored with at least this much
            // budget left — skipping on mere membership would prune
            // in-budget schedules when a state first reached deep is
            // reached again along a shorter prefix.
            let child_depth = frame.depth + 1;
            let remaining = self.budget.max_depth - child_depth;
            let key = (next_config, next_counts);
            match self.memo_check(&key, remaining, child_depth) {
                MemoVerdict::Explore => {
                    let (config, counts) = key;
                    stack.push(Frame {
                        config,
                        counts,
                        depth: child_depth,
                        next: 0,
                        has_event: true,
                    });
                }
                MemoVerdict::Skip => {
                    self.path.pop();
                }
                MemoVerdict::Capped => {
                    // Walking the rest of the frontier cannot restore
                    // exhaustiveness; stop burning events immediately.
                    self.stats.state_capped = true;
                    if let Some(shared) = self.shared {
                        shared.capped.store(true, Ordering::SeqCst);
                    }
                    return TaskOutcome::Aborted;
                }
            }
        }
        TaskOutcome::CleanComplete
    }

    fn pop_frame(&mut self, stack: &mut Vec<Frame>) {
        if let Some(frame) = stack.pop() {
            if frame.has_event {
                self.path.pop();
            }
        }
    }

    /// Looks a child up in the local memo (then the shared certified map,
    /// in sharded mode) and decides whether to explore it.
    fn memo_check(&mut self, key: &MemoKey, remaining: usize, child_depth: usize) -> MemoVerdict {
        if let Some(entry) = self.visited.get(key).copied() {
            if entry.remaining >= remaining {
                self.hit(entry);
                return MemoVerdict::Skip;
            }
            if let Some(entry) = self.shared_lookup(key) {
                if entry.remaining >= remaining {
                    self.hit(entry);
                    self.visited.insert(key.clone(), entry);
                    return MemoVerdict::Skip;
                }
            }
            self.stats.re_explored += 1;
            self.re_explored.incr();
            self.visited.insert(
                key.clone(),
                MemoEntry {
                    remaining,
                    from_disk: false,
                },
            );
            return MemoVerdict::Explore;
        }
        if let Some(entry) = self.shared_lookup(key) {
            if entry.remaining >= remaining {
                self.hit(entry);
                self.visited.insert(key.clone(), entry);
                return MemoVerdict::Skip;
            }
        }
        // A genuinely fresh state: counts against the global cap.
        let over_cap = match self.shared {
            Some(shared) => {
                let total = shared.total_states.fetch_add(1, Ordering::SeqCst);
                total >= self.budget.max_states as u64
            }
            None => self.stats.states_visited >= self.budget.max_states as u64,
        };
        if over_cap {
            return MemoVerdict::Capped;
        }
        self.stats.states_visited += 1;
        self.depths.observe(child_depth as u64);
        self.visited.insert(
            key.clone(),
            MemoEntry {
                remaining,
                from_disk: false,
            },
        );
        MemoVerdict::Explore
    }

    fn hit(&mut self, entry: MemoEntry) {
        self.stats.memo_hits += 1;
        self.memo_hits.incr();
        if entry.from_disk {
            self.stats.resumed_states += 1;
            self.resumed.incr();
        }
    }

    fn shared_lookup(&self, key: &MemoKey) -> Option<MemoEntry> {
        self.shared
            .and_then(|s| s.certified.read().unwrap().get(key).copied())
    }

    fn should_abort(&mut self) -> bool {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.stats.timed_out = true;
                if let Some(shared) = self.shared {
                    shared.timed_out.store(true, Ordering::SeqCst);
                }
                return true;
            }
        }
        if let Some(shared) = self.shared {
            if shared.capped.load(Ordering::SeqCst) || shared.timed_out.load(Ordering::SeqCst) {
                return true;
            }
            if shared.best_task.load(Ordering::SeqCst) < self.task_index {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::{HeapLayout, LocalState, ObjectId, Program};
    use rcn_protocols::{TasConsensus, TnnRecoverable, TnnWaitFree, TournamentConsensus};
    use rcn_spec::zoo::{FetchAndAdd, Register, StickyBit};
    use rcn_spec::{OpId, Response, ValueId};
    use std::sync::Arc;

    fn explore(system: &System) -> CrashtestReport {
        CrashExplorer::new(system, CrashtestConfig::default()).explore()
    }

    /// A crafted program whose only in-budget violation hides behind a
    /// state the DFS first creates at the depth frontier. `p0` increments a
    /// fetch-and-add counter and outputs the invalid value 99 exactly when
    /// its second step after a reset returns 3 — so the one violating
    /// schedule of length ≤ 5 is `p0 p0 c0 p0 p0` (crash while the counter
    /// holds 2, then two fresh steps). `p1` toggles a register, which gives
    /// the violating post-crash state a second, *longer* route
    /// (`p0 p0 p1 c0 p1`) that depth-first order reaches first — right at
    /// the depth cap, with no budget left to step into the violation.
    struct TrapProgram {
        counter: ObjectId,
        toggle: ObjectId,
    }

    impl Program for TrapProgram {
        fn name(&self) -> String {
            "memo-trap".into()
        }

        fn initial_state(&self, pid: ProcessId, _input: u32) -> LocalState {
            if pid.index() == 0 {
                // [steps since last reset, last response seen]
                LocalState::word2(0, 0)
            } else {
                // [current register value]
                LocalState::word1(0)
            }
        }

        fn action(&self, pid: ProcessId, state: &LocalState) -> Action {
            if pid.index() == 0 {
                if state.word(0) == 2 && state.word(1) == 3 {
                    Action::Output(99)
                } else {
                    Action::Invoke {
                        object: self.counter,
                        op: OpId::new(0), // fetch&add(1)
                    }
                }
            } else {
                Action::Invoke {
                    object: self.toggle,
                    op: OpId::new(1 - state.word(0) as u16), // write(1 - b)
                }
            }
        }

        fn transition(&self, pid: ProcessId, state: &LocalState, response: Response) -> LocalState {
            if pid.index() == 0 {
                LocalState::word2(state.word(0) + 1, response.index() as u32)
            } else {
                LocalState::word1(1 - state.word(0))
            }
        }
    }

    fn trap_system() -> System {
        let mut layout = HeapLayout::new();
        let counter = layout.add_object("F", Arc::new(FetchAndAdd::new(8)), ValueId::new(0));
        let toggle = layout.add_object("R", Arc::new(Register::new(2)), ValueId::new(0));
        System::new(
            Arc::new(TrapProgram { counter, toggle }),
            Arc::new(layout),
            vec![0, 0],
        )
    }

    /// Bounded DFS with *no* memoization at all: the ground truth the
    /// memoized explorer must agree with on violation existence. Honors
    /// the fault model but applies only the budget rules (no no-op
    /// skipping): a violation reached through a no-op crash is also
    /// reachable without it on a shorter schedule, so existence matches.
    fn oracle_finds_violation(
        sys: &System,
        config: &Configuration,
        crash_counts: &[usize],
        depth: usize,
        cfg: &CrashtestConfig,
    ) -> bool {
        if depth >= cfg.max_depth {
            return false;
        }
        let n = sys.n();
        let candidates = (0..n)
            .map(|i| Event::Step(ProcessId(i as u16)))
            .chain((0..n).map(|i| Event::Crash(ProcessId(i as u16))))
            .chain(std::iter::once(Event::SystemCrash))
            .chain((0..n).map(|i| Event::CrashDuring(ProcessId(i as u16))));
        for event in candidates {
            if !cfg.fault_model.allows(event) {
                continue;
            }
            match event {
                Event::Step(p) => {
                    if matches!(sys.action_of(config, p), Action::Output(_)) {
                        continue;
                    }
                }
                Event::Crash(p) | Event::CrashDuring(p) => {
                    if crash_counts[p.index()] >= cfg.max_crashes {
                        continue;
                    }
                }
                Event::SystemCrash => {
                    if crash_counts.iter().any(|&c| c >= cfg.max_crashes) {
                        continue;
                    }
                }
            }
            let mut next = config.clone();
            if sys.apply(&mut next, event).violation.is_some() {
                return true;
            }
            let mut next_counts = crash_counts.to_vec();
            charge_crash(&mut next_counts, event);
            if oracle_finds_violation(sys, &next, &next_counts, depth + 1, cfg) {
                return true;
            }
        }
        false
    }

    fn oracle(sys: &System, cfg: &CrashtestConfig) -> bool {
        let initial = sys.initial_config();
        if sys.check_initial_outputs(&initial).is_some() {
            return true;
        }
        let counts = vec![0usize; sys.n()];
        oracle_finds_violation(sys, &initial, &counts, 0, cfg)
    }

    #[test]
    fn depth_cap_memoization_is_depth_aware() {
        // Regression: a visited-set keyed only on (configuration,
        // crash-counts) skipped states first created at the depth frontier
        // when they were reached again along a shorter prefix, and the trap
        // system was wrongly certified clean at this exact budget.
        let sys = trap_system();
        let cfg = CrashtestConfig {
            max_crashes: 1,
            max_depth: 5,
            ..Default::default()
        };
        let report = CrashExplorer::new(&sys, cfg).explore();
        let cex = report
            .counterexample
            .expect("the depth-5 violation must be found despite the deep-first revisit");
        assert!(!cex.schedule.is_crash_free());
        assert!(cex.schedule.len() <= 5);
        // The found schedule independently replays to the same violation.
        let (_, violation) = sys.run_from_start(&cex.schedule);
        assert_eq!(violation, Some(cex.violation));
    }

    #[test]
    fn memoized_search_agrees_with_unmemoized_oracle() {
        // Violation existence must match a memo-free bounded DFS across
        // systems and tight budgets (where unsound pruning would show).
        let systems: Vec<(&str, System)> = vec![
            ("trap", trap_system()),
            ("tas", TasConsensus::system(vec![0, 1])),
            ("tnn-wait-free", TnnWaitFree::system(2, 1, vec![0, 1])),
            ("tnn-recoverable", TnnRecoverable::system(3, 1, vec![0, 1])),
        ];
        for (name, sys) in &systems {
            for fault_model in [
                FaultModel::PER_PROCESS,
                FaultModel::SYSTEM,
                FaultModel::MID_OP,
                FaultModel::ALL,
            ] {
                for (max_crashes, max_depth) in [(1, 4), (1, 5), (1, 6), (2, 6), (1, 8)] {
                    let cfg = CrashtestConfig {
                        max_crashes,
                        max_depth,
                        fault_model,
                        ..Default::default()
                    };
                    let report = CrashExplorer::new(sys, cfg).explore();
                    assert!(
                        report.stats.exhaustive(),
                        "{name} {cfg:?} hit the state cap"
                    );
                    assert_eq!(
                        report.counterexample.is_some(),
                        oracle(sys, &cfg),
                        "memoized explorer disagrees with the oracle on {name} at {cfg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn rediscovers_golabs_tas_counterexample() {
        let sys = TasConsensus::system(vec![0, 1]);
        let report = explore(&sys);
        let cex = report.counterexample.expect("T&S must break under crashes");
        // Independently confirm the found schedule through the executor.
        let (_, violation) = sys.run_from_start(&cex.schedule);
        assert_eq!(violation, Some(cex.violation));
        assert!(
            !cex.schedule.is_crash_free(),
            "crash-free T&S runs are safe; the violation needs a crash: {cex}"
        );
    }

    #[test]
    fn rediscovers_tnn_bottom_divergence() {
        let sys = TnnWaitFree::system(2, 1, vec![0, 1]);
        let report = explore(&sys);
        let cex = report
            .counterexample
            .expect("T_{2,1} wait-free must diverge once the object saturates");
        let (_, violation) = sys.run_from_start(&cex.schedule);
        assert_eq!(violation, Some(cex.violation));
    }

    #[test]
    fn certifies_tnn_recoverable_clean() {
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let report = explore(&sys);
        assert!(
            report.is_certified_clean(),
            "recoverable T_{{5,2}} must survive every budgeted crash placement: {:?}",
            report.counterexample
        );
        assert!(report.stats.states_visited > 1);
    }

    #[test]
    fn certifies_tournament_clean() {
        let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![1, 0]).unwrap();
        let report = explore(&sys);
        assert!(
            report.is_certified_clean(),
            "tournament consensus must survive every budgeted crash placement: {:?}",
            report.counterexample
        );
    }

    #[test]
    fn exploration_is_deterministic() {
        let sys = TasConsensus::system(vec![0, 1]);
        let first = explore(&sys);
        for _ in 0..3 {
            assert_eq!(explore(&sys), first);
        }
    }

    #[test]
    fn zero_crash_budget_finds_nothing_on_crash_safe_protocols() {
        // T&S consensus is correct in the crash-free model; with a zero
        // crash budget the explorer must certify it clean.
        let sys = TasConsensus::system(vec![0, 1]);
        let report = CrashExplorer::new(
            &sys,
            CrashtestConfig {
                max_crashes: 0,
                ..Default::default()
            },
        )
        .explore();
        assert!(report.is_certified_clean(), "{:?}", report.counterexample);
    }

    #[test]
    fn traced_exploration_is_transparent_and_counts_the_search() {
        let sys = TasConsensus::system(vec![0, 1]);
        let tracer = Tracer::ring(4096);
        let traced = CrashExplorer::new(&sys, CrashtestConfig::default())
            .with_tracer(tracer.clone())
            .explore();
        let plain = explore(&sys);
        assert_eq!(traced, plain, "tracing must not perturb the verdict");

        let snap = tracer.snapshot().expect("enabled tracer");
        assert_eq!(
            snap.counter("crashtest.events_applied"),
            Some(traced.stats.events_applied)
        );
        assert_eq!(
            snap.counter("crashtest.states_visited"),
            Some(traced.stats.states_visited)
        );
        assert_eq!(snap.counter("crashtest.counterexamples"), Some(1));
        // One depth observation per visited state.
        let depth = snap
            .histograms
            .iter()
            .find(|h| h.name == "crashtest.depth")
            .expect("depth histogram");
        assert_eq!(depth.count, traced.stats.states_visited);

        let rows = tracer.ring_events();
        assert!(rows.iter().any(|r| r.name == "crashtest.explore"));
        let cex_event = rows
            .iter()
            .find(|r| r.name == "crashtest.counterexample")
            .expect("counterexample event");
        assert_eq!(
            cex_event.value,
            traced.counterexample.as_ref().unwrap().schedule.len() as i64
        );

        // A clean system is explored exhaustively, so the memo must get
        // exercised (T&S above unwinds at the first counterexample and may
        // never revisit a state).
        let clean_tracer = Tracer::metrics_only();
        let clean = CrashExplorer::new(
            &TnnRecoverable::system(5, 2, vec![0, 1]),
            CrashtestConfig::default(),
        )
        .with_tracer(clean_tracer.clone())
        .explore();
        assert!(clean.is_certified_clean());
        let snap = clean_tracer.snapshot().expect("enabled tracer");
        assert!(
            snap.counter("crashtest.memo_hits").unwrap_or(0) > 0,
            "an exhaustive exploration must hit its memo: {snap:?}"
        );
        assert_eq!(snap.counter("crashtest.counterexamples"), Some(0));
        // The public stats carry the same memo counters the tracer saw.
        assert_eq!(
            snap.counter("crashtest.memo_hits"),
            Some(clean.stats.memo_hits)
        );
        assert_eq!(
            snap.counter("crashtest.re_explored"),
            Some(clean.stats.re_explored)
        );
    }

    #[test]
    fn public_stats_expose_memo_effort_without_a_tracer() {
        // The stable ExplorerStats seam: memo effort is visible on the
        // plain (untraced) report, so cross-checkers can cite both sides'
        // search effort without instrumenting anything.
        let report = explore(&TnnRecoverable::system(5, 2, vec![0, 1]));
        assert!(report.is_certified_clean());
        assert!(report.stats.memo_hits > 0, "{}", report.stats);
        assert!(report.stats.events_applied > report.stats.states_visited);
    }

    #[test]
    fn state_cap_is_reported_honestly() {
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let report = CrashExplorer::new(
            &sys,
            CrashtestConfig {
                max_states: 10,
                ..Default::default()
            },
        )
        .explore();
        assert!(report.stats.state_capped);
        assert!(!report.is_certified_clean());
    }

    /// A one-process program whose crash-free run is a single acyclic
    /// chain: each step increments a local counter until it outputs at
    /// `len`. Every state along the chain is distinct, so the explorer
    /// must hold `len` frames at once — the regression shape for the old
    /// recursive DFS, which overflowed the thread stack at `--depth` in
    /// the thousands.
    struct ChainProgram {
        counter: ObjectId,
        len: u32,
    }

    impl Program for ChainProgram {
        fn name(&self) -> String {
            format!("chain:{}", self.len)
        }

        fn initial_state(&self, _pid: ProcessId, _input: u32) -> LocalState {
            LocalState::word1(0)
        }

        fn action(&self, _pid: ProcessId, state: &LocalState) -> Action {
            if state.word(0) >= self.len {
                Action::Output(0)
            } else {
                Action::Invoke {
                    object: self.counter,
                    op: OpId::new(0),
                }
            }
        }

        fn transition(
            &self,
            _pid: ProcessId,
            state: &LocalState,
            _response: Response,
        ) -> LocalState {
            LocalState::word1(state.word(0) + 1)
        }
    }

    fn chain_system(len: u32) -> System {
        let mut layout = HeapLayout::new();
        let counter = layout.add_object("F", Arc::new(FetchAndAdd::new(4)), ValueId::new(0));
        System::new(
            Arc::new(ChainProgram { counter, len }),
            Arc::new(layout),
            vec![0],
        )
    }

    #[test]
    fn depth_5000_does_not_overflow_the_stack() {
        // Regression for the recursive DFS: one frame per schedule event
        // meant `--depth 5000` aborted the process. The work-list keeps
        // frames on the heap.
        let sys = chain_system(5000);
        let report = CrashExplorer::new(
            &sys,
            CrashtestConfig {
                max_crashes: 0,
                max_depth: 5000,
                ..Default::default()
            },
        )
        .explore();
        assert!(report.is_certified_clean(), "{:?}", report.counterexample);
        // The chain has exactly 5001 states: initial plus one per step.
        assert_eq!(report.stats.states_visited, 5001);
        assert_eq!(report.stats.events_applied, 5000);
    }

    #[test]
    fn state_cap_short_circuits_the_search() {
        // Regression: the old DFS kept walking (and applying events) under
        // every remaining frame after the cap tripped, although no new
        // state could be explored. The work-list returns immediately, so
        // the whole run applies at most (max_states + 1) * 2n events —
        // each explored frame tries at most 2n candidates.
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let full = explore(&sys);
        assert!(full.is_certified_clean());
        let cap = 10u64;
        let capped = CrashExplorer::new(
            &sys,
            CrashtestConfig {
                max_states: cap as usize,
                ..Default::default()
            },
        )
        .explore();
        assert!(capped.stats.state_capped);
        let n = sys.n() as u64;
        let bound = (cap + 1) * 2 * n;
        assert!(
            capped.stats.events_applied <= bound,
            "events kept growing after the cap: {} > {bound}",
            capped.stats.events_applied
        );
        assert!(capped.stats.events_applied < full.stats.events_applied);
    }

    #[test]
    fn sharded_search_is_bit_identical_to_sequential() {
        // The acceptance bar of the sharded rewrite: verdict and chosen
        // counterexample (the lex-least violating schedule) are identical
        // at every thread count; only effort counters may differ.
        let systems: Vec<(&str, System, CrashtestConfig)> = vec![
            (
                "trap",
                trap_system(),
                CrashtestConfig {
                    max_crashes: 1,
                    max_depth: 5,
                    ..Default::default()
                },
            ),
            (
                "tas",
                TasConsensus::system(vec![0, 1]),
                CrashtestConfig::default(),
            ),
            (
                "tnn-wait-free",
                TnnWaitFree::system(2, 1, vec![0, 1]),
                CrashtestConfig::default(),
            ),
            (
                "tnn-recoverable",
                TnnRecoverable::system(3, 1, vec![0, 1]),
                CrashtestConfig::default(),
            ),
        ];
        for (name, sys, cfg) in &systems {
            let seq = CrashExplorer::new(sys, *cfg).explore();
            for threads in [2, 4] {
                let par = CrashExplorer::new(sys, *cfg)
                    .with_threads(threads)
                    .explore();
                assert_eq!(
                    par.counterexample, seq.counterexample,
                    "{name} diverges at {threads} threads"
                );
                assert_eq!(
                    par.is_certified_clean(),
                    seq.is_certified_clean(),
                    "{name} certification diverges at {threads} threads"
                );
                assert_eq!(par.stats.exhaustive(), seq.stats.exhaustive());
            }
        }
    }

    #[test]
    fn zero_timeout_reports_an_honest_partial() {
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let report = CrashExplorer::new(&sys, CrashtestConfig::default())
            .with_timeout(Duration::from_secs(0))
            .explore();
        assert!(report.stats.timed_out);
        assert!(!report.is_certified_clean());
        assert!(report.counterexample.is_none());
    }
}
