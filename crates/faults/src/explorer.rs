//! Systematic crash-schedule exploration.
//!
//! The paper's adversary places crashes at arbitrary points of a schedule;
//! `rcn-runtime`'s `CrashyAdversary` and `run_threaded` only *sample* such
//! placements from a seeded RNG. This module enumerates them: a bounded,
//! memoized depth-first search over the abstract executor that considers a
//! crash of every process at every reachable configuration, up to a
//! per-process crash budget (the paper's `E_z`-style budgets bound crashes
//! per process, not globally) and a schedule-length cap.
//!
//! The search is deterministic — events are tried in a fixed order, so the
//! first counterexample found is the same on every run — and it is
//! exhaustive within its budget unless the state cap is hit, which the
//! verdict reports honestly ([`ExplorerStats::state_capped`]).
//!
//! Memoization is depth-aware: each `(configuration, crash-counts)` state
//! records the largest *remaining* schedule budget it has been explored
//! with, and is re-explored whenever it is reached with more budget left.
//! A plain visited-set would be unsound under the depth cap — a state first
//! reached deep (little budget left) would be skipped when reached again
//! along a shorter prefix, pruning schedules still within `max_depth`.

use crate::diagnose::{diagnose, Divergence};
use rcn_model::{Action, Configuration, Event, ProcessId, Schedule, System, Violation};
use rcn_obs::{Counter, HistogramHandle, Tracer};
use std::collections::HashMap;
use std::fmt;

/// Budgets for a crash-exploration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashtestConfig {
    /// Maximum crashes injected per process (the budget `K`): each process
    /// may crash at most this many times along any explored schedule.
    pub max_crashes: usize,
    /// Maximum schedule length explored (the depth cap `D`).
    pub max_depth: usize,
    /// Maximum number of distinct `(configuration, crash-counts)` states
    /// memoized before the search refuses to grow (a memory safety valve;
    /// hitting it makes a `Clean` verdict non-exhaustive).
    pub max_states: usize,
}

impl Default for CrashtestConfig {
    fn default() -> Self {
        CrashtestConfig {
            max_crashes: 2,
            max_depth: 16,
            max_states: 500_000,
        }
    }
}

/// The explorer's public search-effort counters — the stable seam other
/// crates (the RCN200 cross-checker lint, the CLI, bench records) compare
/// and report. Tracer counters mirror these; the struct is authoritative
/// and available without any tracer attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExplorerStats {
    /// Distinct `(configuration, crash-counts)` states visited.
    pub states_visited: u64,
    /// Events applied (edges traversed), counting revisits.
    pub events_applied: u64,
    /// Child states skipped because the memo had already explored them
    /// with at least as much remaining budget.
    pub memo_hits: u64,
    /// Memoized states explored *again* because they were re-reached with
    /// more remaining budget (the depth-aware refinement).
    pub re_explored: u64,
    /// `true` if some path was cut short by [`CrashtestConfig::max_depth`]
    /// while events were still enabled. Expected for any non-trivial
    /// protocol; the depth cap is part of the stated budget, and the
    /// depth-aware memoization keeps the search exhaustive over schedules
    /// of length ≤ `max_depth` even when this flag is set.
    pub depth_limited: bool,
    /// `true` if [`CrashtestConfig::max_states`] was hit: a clean verdict
    /// then only covers the states actually visited.
    pub state_capped: bool,
}

/// Former name of [`ExplorerStats`], kept as an alias.
pub type ExploreStats = ExplorerStats;

impl ExplorerStats {
    /// `true` if a clean verdict covers *every* schedule within the
    /// configured budget. `depth_limited` does not void exhaustiveness:
    /// the memoization is depth-aware, so every schedule of length ≤
    /// `max_depth` is still covered. Only the state cap — which stops the
    /// search from growing at all — makes a clean verdict partial.
    pub fn exhaustive(&self) -> bool {
        !self.state_capped
    }
}

impl fmt::Display for ExplorerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} events, {} memo hits",
            self.states_visited, self.events_applied, self.memo_hits
        )?;
        if self.state_capped {
            write!(f, " (state cap hit)")?;
        }
        Ok(())
    }
}

/// A schedule on which the system breaks a consensus condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The violating schedule (the exact DFS path; see
    /// [`crate::shrink_counterexample`] for minimization).
    pub schedule: Schedule,
    /// The violation the final event of the schedule triggers.
    pub violation: Violation,
    /// When the violating process itself had already output a different
    /// value (the crash-divergence pattern of Golab's T&S counterexample),
    /// the pair of conflicting outputs.
    pub divergence: Option<Divergence>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}  ⇒  {}", self.schedule, self.violation)?;
        if let Some(d) = &self.divergence {
            write!(f, " ({d})")?;
        }
        Ok(())
    }
}

/// The outcome of a crash exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashtestReport {
    /// Exploration counters (including the honesty flags).
    pub stats: ExplorerStats,
    /// The first counterexample found, or `None` if every explored
    /// schedule is safe.
    pub counterexample: Option<Counterexample>,
}

impl CrashtestReport {
    /// `true` if no violation was found *and* the search covered the whole
    /// budget (no state cap hit).
    pub fn is_certified_clean(&self) -> bool {
        self.counterexample.is_none() && self.stats.exhaustive()
    }
}

/// The bounded, memoized DFS over crash placements.
pub struct CrashExplorer<'s> {
    system: &'s System,
    config: CrashtestConfig,
    tracer: Tracer,
}

impl<'s> CrashExplorer<'s> {
    /// Creates an explorer for `system` with the given budgets.
    pub fn new(system: &'s System, config: CrashtestConfig) -> Self {
        CrashExplorer {
            system,
            config,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer: the exploration is bracketed in a
    /// `crashtest.explore` span, the DFS maintains the
    /// `crashtest.events_applied` / `crashtest.memo_hits` /
    /// `crashtest.re_explored` counters and a `crashtest.depth` histogram
    /// (one observation per newly visited state), and the final
    /// [`ExplorerStats`] are published as `crashtest.*` counters.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached tracer ([`Tracer::disabled`] unless
    /// [`with_tracer`](Self::with_tracer) was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Runs the exploration: every schedule of length ≤ `max_depth` whose
    /// per-process crash counts stay within `max_crashes`, modulo
    /// memoization of already-seen `(configuration, crash-counts)` states.
    ///
    /// Deterministic: at each configuration the candidate events are tried
    /// in a fixed order (steps of `p0..pn`, then crashes of `p0..pn`), so
    /// the returned counterexample is the same on every run.
    pub fn explore(&self) -> CrashtestReport {
        let span = self.tracer.span_with(
            "crashtest.explore",
            i64::try_from(self.config.max_depth).unwrap_or(i64::MAX),
            &format!(
                "crashes={} states={}",
                self.config.max_crashes, self.config.max_states
            ),
        );
        let mut search = Search {
            system: self.system,
            budget: self.config,
            visited: HashMap::new(),
            path: Vec::new(),
            stats: ExplorerStats::default(),
            events: self.tracer.counter("crashtest.events_applied"),
            memo_hits: self.tracer.counter("crashtest.memo_hits"),
            re_explored: self.tracer.counter("crashtest.re_explored"),
            depths: self.tracer.histogram("crashtest.depth"),
        };
        let initial = self.system.initial_config();
        // A protocol can violate before any event (conflicting or invalid
        // initial-state outputs).
        if let Some(violation) = self.system.check_initial_outputs(&initial) {
            let report = CrashtestReport {
                stats: search.stats,
                counterexample: Some(self.diagnosed(Schedule::new(), violation)),
            };
            self.publish(&report, &span);
            return report;
        }
        let crash_counts = vec![0usize; self.system.n()];
        search.visited.insert(
            (initial.clone(), crash_counts.clone()),
            self.config.max_depth,
        );
        search.stats.states_visited = 1;
        search.depths.observe(0);
        let violation = search.dfs(&initial, &crash_counts, 0);
        let report = CrashtestReport {
            stats: search.stats,
            counterexample: violation
                .map(|v| self.diagnosed(Schedule::from_events(search.path.iter().copied()), v)),
        };
        self.publish(&report, &span);
        report
    }

    /// Publishes the final [`ExplorerStats`] as absolute `crashtest.*`
    /// counters and records the counterexample (if any) as an event inside
    /// the exploration span.
    fn publish(&self, report: &CrashtestReport, span: &rcn_obs::Span) {
        if !self.tracer.enabled() {
            return;
        }
        self.tracer
            .set("crashtest.states_visited", report.stats.states_visited);
        self.tracer.set(
            "crashtest.depth_limited",
            u64::from(report.stats.depth_limited),
        );
        self.tracer.set(
            "crashtest.state_capped",
            u64::from(report.stats.state_capped),
        );
        self.tracer.set(
            "crashtest.counterexamples",
            u64::from(report.counterexample.is_some()),
        );
        if self.tracer.recording() {
            if let Some(cex) = &report.counterexample {
                span.event(
                    "crashtest.counterexample",
                    i64::try_from(cex.schedule.len()).unwrap_or(i64::MAX),
                    &cex.violation.to_string(),
                );
            }
        }
    }

    /// Attaches the divergence diagnosis to a found violation.
    fn diagnosed(&self, schedule: Schedule, violation: Violation) -> Counterexample {
        let diagnosis = diagnose(self.system, &schedule);
        Counterexample {
            schedule,
            violation,
            divergence: diagnosis.divergence,
        }
    }
}

/// The mutable half of the DFS (split from the explorer so the recursion
/// can borrow it all mutably at once).
struct Search<'s> {
    system: &'s System,
    budget: CrashtestConfig,
    /// Memo: for each state already explored *from*, the largest remaining
    /// schedule budget (`max_depth - depth`) it was explored with. Crash
    /// counts are part of the key, and a state reached again with *more*
    /// remaining budget is re-explored — the same configuration with more
    /// budget (crash or depth) left can reach strictly more.
    visited: HashMap<(Configuration, Vec<usize>), usize>,
    path: Vec<Event>,
    stats: ExplorerStats,
    /// Live instrument handles (no-ops under a disabled tracer), resolved
    /// once so the hot loop never touches the registry's lock.
    events: Counter,
    memo_hits: Counter,
    re_explored: Counter,
    depths: HistogramHandle,
}

impl Search<'_> {
    /// Explores every enabled event from `config`; on a violation, leaves
    /// the violating schedule in `self.path` and unwinds immediately.
    fn dfs(
        &mut self,
        config: &Configuration,
        crash_counts: &[usize],
        depth: usize,
    ) -> Option<Violation> {
        if depth >= self.budget.max_depth {
            self.stats.depth_limited = true;
            return None;
        }
        let n = self.system.n();
        let candidates = (0..n)
            .map(|i| Event::Step(ProcessId(i as u16)))
            .chain((0..n).map(|i| Event::Crash(ProcessId(i as u16))));
        for event in candidates {
            let p = event.process();
            match event {
                // A step in an output state is a no-op; skip it.
                Event::Step(_) => {
                    if matches!(self.system.action_of(config, p), Action::Output(_)) {
                        continue;
                    }
                }
                Event::Crash(_) => {
                    if crash_counts[p.index()] >= self.budget.max_crashes {
                        continue;
                    }
                    // A crash of a process already in its initial state is
                    // a no-op: the state reset changes nothing, and any
                    // re-output it would re-check was already checked when
                    // an earlier event recorded the conflicting value.
                    if config.states[p.index()]
                        == self
                            .system
                            .program()
                            .initial_state(p, self.system.inputs()[p.index()])
                    {
                        continue;
                    }
                }
            }
            let mut next = config.clone();
            let effect = self.system.apply(&mut next, event);
            self.stats.events_applied += 1;
            self.events.incr();
            self.path.push(event);
            if let Some(violation) = effect.violation {
                return Some(violation);
            }
            let mut next_counts = crash_counts.to_vec();
            if event.is_crash() {
                next_counts[p.index()] += 1;
            }
            // Remaining schedule budget at the child. A state is skipped
            // only if it was already explored with at least this much
            // budget left — skipping on mere membership would prune
            // in-budget schedules when a state first reached deep is
            // reached again along a shorter prefix.
            let remaining = self.budget.max_depth - (depth + 1);
            let key = (next, next_counts);
            let explore = match self.visited.get(&key) {
                Some(&seen) => {
                    if seen >= remaining {
                        self.stats.memo_hits += 1;
                        self.memo_hits.incr();
                        false
                    } else {
                        self.stats.re_explored += 1;
                        self.re_explored.incr();
                        self.visited.insert(key.clone(), remaining);
                        true
                    }
                }
                None => {
                    if self.visited.len() >= self.budget.max_states {
                        self.stats.state_capped = true;
                        false
                    } else {
                        self.stats.states_visited += 1;
                        self.depths.observe(depth as u64 + 1);
                        self.visited.insert(key.clone(), remaining);
                        true
                    }
                }
            };
            if explore {
                let (next, next_counts) = key;
                if let Some(v) = self.dfs(&next, &next_counts, depth + 1) {
                    return Some(v);
                }
            }
            self.path.pop();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::{HeapLayout, LocalState, ObjectId, Program};
    use rcn_protocols::{TasConsensus, TnnRecoverable, TnnWaitFree, TournamentConsensus};
    use rcn_spec::zoo::{FetchAndAdd, Register, StickyBit};
    use rcn_spec::{OpId, Response, ValueId};
    use std::sync::Arc;

    fn explore(system: &System) -> CrashtestReport {
        CrashExplorer::new(system, CrashtestConfig::default()).explore()
    }

    /// A crafted program whose only in-budget violation hides behind a
    /// state the DFS first creates at the depth frontier. `p0` increments a
    /// fetch-and-add counter and outputs the invalid value 99 exactly when
    /// its second step after a reset returns 3 — so the one violating
    /// schedule of length ≤ 5 is `p0 p0 c0 p0 p0` (crash while the counter
    /// holds 2, then two fresh steps). `p1` toggles a register, which gives
    /// the violating post-crash state a second, *longer* route
    /// (`p0 p0 p1 c0 p1`) that depth-first order reaches first — right at
    /// the depth cap, with no budget left to step into the violation.
    struct TrapProgram {
        counter: ObjectId,
        toggle: ObjectId,
    }

    impl Program for TrapProgram {
        fn name(&self) -> String {
            "memo-trap".into()
        }

        fn initial_state(&self, pid: ProcessId, _input: u32) -> LocalState {
            if pid.index() == 0 {
                // [steps since last reset, last response seen]
                LocalState::word2(0, 0)
            } else {
                // [current register value]
                LocalState::word1(0)
            }
        }

        fn action(&self, pid: ProcessId, state: &LocalState) -> Action {
            if pid.index() == 0 {
                if state.word(0) == 2 && state.word(1) == 3 {
                    Action::Output(99)
                } else {
                    Action::Invoke {
                        object: self.counter,
                        op: OpId::new(0), // fetch&add(1)
                    }
                }
            } else {
                Action::Invoke {
                    object: self.toggle,
                    op: OpId::new(1 - state.word(0) as u16), // write(1 - b)
                }
            }
        }

        fn transition(&self, pid: ProcessId, state: &LocalState, response: Response) -> LocalState {
            if pid.index() == 0 {
                LocalState::word2(state.word(0) + 1, response.index() as u32)
            } else {
                LocalState::word1(1 - state.word(0))
            }
        }
    }

    fn trap_system() -> System {
        let mut layout = HeapLayout::new();
        let counter = layout.add_object("F", Arc::new(FetchAndAdd::new(8)), ValueId::new(0));
        let toggle = layout.add_object("R", Arc::new(Register::new(2)), ValueId::new(0));
        System::new(
            Arc::new(TrapProgram { counter, toggle }),
            Arc::new(layout),
            vec![0, 0],
        )
    }

    /// Bounded DFS with *no* memoization at all: the ground truth the
    /// memoized explorer must agree with on violation existence.
    fn oracle_finds_violation(
        sys: &System,
        config: &Configuration,
        crash_counts: &mut [usize],
        depth: usize,
        cfg: &CrashtestConfig,
    ) -> bool {
        if depth >= cfg.max_depth {
            return false;
        }
        let n = sys.n();
        let candidates = (0..n)
            .map(|i| Event::Step(ProcessId(i as u16)))
            .chain((0..n).map(|i| Event::Crash(ProcessId(i as u16))));
        for event in candidates {
            let p = event.process();
            match event {
                Event::Step(_) => {
                    if matches!(sys.action_of(config, p), Action::Output(_)) {
                        continue;
                    }
                }
                Event::Crash(_) => {
                    if crash_counts[p.index()] >= cfg.max_crashes {
                        continue;
                    }
                }
            }
            let mut next = config.clone();
            if sys.apply(&mut next, event).violation.is_some() {
                return true;
            }
            if event.is_crash() {
                crash_counts[p.index()] += 1;
            }
            let found = oracle_finds_violation(sys, &next, crash_counts, depth + 1, cfg);
            if event.is_crash() {
                crash_counts[p.index()] -= 1;
            }
            if found {
                return true;
            }
        }
        false
    }

    fn oracle(sys: &System, cfg: &CrashtestConfig) -> bool {
        let initial = sys.initial_config();
        if sys.check_initial_outputs(&initial).is_some() {
            return true;
        }
        let mut counts = vec![0usize; sys.n()];
        oracle_finds_violation(sys, &initial, &mut counts, 0, cfg)
    }

    #[test]
    fn depth_cap_memoization_is_depth_aware() {
        // Regression: a visited-set keyed only on (configuration,
        // crash-counts) skipped states first created at the depth frontier
        // when they were reached again along a shorter prefix, and the trap
        // system was wrongly certified clean at this exact budget.
        let sys = trap_system();
        let cfg = CrashtestConfig {
            max_crashes: 1,
            max_depth: 5,
            ..Default::default()
        };
        let report = CrashExplorer::new(&sys, cfg).explore();
        let cex = report
            .counterexample
            .expect("the depth-5 violation must be found despite the deep-first revisit");
        assert!(!cex.schedule.is_crash_free());
        assert!(cex.schedule.len() <= 5);
        // The found schedule independently replays to the same violation.
        let (_, violation) = sys.run_from_start(&cex.schedule);
        assert_eq!(violation, Some(cex.violation));
    }

    #[test]
    fn memoized_search_agrees_with_unmemoized_oracle() {
        // Violation existence must match a memo-free bounded DFS across
        // systems and tight budgets (where unsound pruning would show).
        let systems: Vec<(&str, System)> = vec![
            ("trap", trap_system()),
            ("tas", TasConsensus::system(vec![0, 1])),
            ("tnn-wait-free", TnnWaitFree::system(2, 1, vec![0, 1])),
            ("tnn-recoverable", TnnRecoverable::system(3, 1, vec![0, 1])),
        ];
        for (name, sys) in &systems {
            for (max_crashes, max_depth) in [(1, 4), (1, 5), (1, 6), (2, 6), (1, 8)] {
                let cfg = CrashtestConfig {
                    max_crashes,
                    max_depth,
                    ..Default::default()
                };
                let report = CrashExplorer::new(sys, cfg).explore();
                assert!(
                    report.stats.exhaustive(),
                    "{name} {cfg:?} hit the state cap"
                );
                assert_eq!(
                    report.counterexample.is_some(),
                    oracle(sys, &cfg),
                    "memoized explorer disagrees with the oracle on {name} at {cfg:?}"
                );
            }
        }
    }

    #[test]
    fn rediscovers_golabs_tas_counterexample() {
        let sys = TasConsensus::system(vec![0, 1]);
        let report = explore(&sys);
        let cex = report.counterexample.expect("T&S must break under crashes");
        // Independently confirm the found schedule through the executor.
        let (_, violation) = sys.run_from_start(&cex.schedule);
        assert_eq!(violation, Some(cex.violation));
        assert!(
            !cex.schedule.is_crash_free(),
            "crash-free T&S runs are safe; the violation needs a crash: {cex}"
        );
    }

    #[test]
    fn rediscovers_tnn_bottom_divergence() {
        let sys = TnnWaitFree::system(2, 1, vec![0, 1]);
        let report = explore(&sys);
        let cex = report
            .counterexample
            .expect("T_{2,1} wait-free must diverge once the object saturates");
        let (_, violation) = sys.run_from_start(&cex.schedule);
        assert_eq!(violation, Some(cex.violation));
    }

    #[test]
    fn certifies_tnn_recoverable_clean() {
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let report = explore(&sys);
        assert!(
            report.is_certified_clean(),
            "recoverable T_{{5,2}} must survive every budgeted crash placement: {:?}",
            report.counterexample
        );
        assert!(report.stats.states_visited > 1);
    }

    #[test]
    fn certifies_tournament_clean() {
        let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![1, 0]).unwrap();
        let report = explore(&sys);
        assert!(
            report.is_certified_clean(),
            "tournament consensus must survive every budgeted crash placement: {:?}",
            report.counterexample
        );
    }

    #[test]
    fn exploration_is_deterministic() {
        let sys = TasConsensus::system(vec![0, 1]);
        let first = explore(&sys);
        for _ in 0..3 {
            assert_eq!(explore(&sys), first);
        }
    }

    #[test]
    fn zero_crash_budget_finds_nothing_on_crash_safe_protocols() {
        // T&S consensus is correct in the crash-free model; with a zero
        // crash budget the explorer must certify it clean.
        let sys = TasConsensus::system(vec![0, 1]);
        let report = CrashExplorer::new(
            &sys,
            CrashtestConfig {
                max_crashes: 0,
                ..Default::default()
            },
        )
        .explore();
        assert!(report.is_certified_clean(), "{:?}", report.counterexample);
    }

    #[test]
    fn traced_exploration_is_transparent_and_counts_the_search() {
        let sys = TasConsensus::system(vec![0, 1]);
        let tracer = Tracer::ring(4096);
        let traced = CrashExplorer::new(&sys, CrashtestConfig::default())
            .with_tracer(tracer.clone())
            .explore();
        let plain = explore(&sys);
        assert_eq!(traced, plain, "tracing must not perturb the verdict");

        let snap = tracer.snapshot().expect("enabled tracer");
        assert_eq!(
            snap.counter("crashtest.events_applied"),
            Some(traced.stats.events_applied)
        );
        assert_eq!(
            snap.counter("crashtest.states_visited"),
            Some(traced.stats.states_visited)
        );
        assert_eq!(snap.counter("crashtest.counterexamples"), Some(1));
        // One depth observation per visited state.
        let depth = snap
            .histograms
            .iter()
            .find(|h| h.name == "crashtest.depth")
            .expect("depth histogram");
        assert_eq!(depth.count, traced.stats.states_visited);

        let rows = tracer.ring_events();
        assert!(rows.iter().any(|r| r.name == "crashtest.explore"));
        let cex_event = rows
            .iter()
            .find(|r| r.name == "crashtest.counterexample")
            .expect("counterexample event");
        assert_eq!(
            cex_event.value,
            traced.counterexample.as_ref().unwrap().schedule.len() as i64
        );

        // A clean system is explored exhaustively, so the memo must get
        // exercised (T&S above unwinds at the first counterexample and may
        // never revisit a state).
        let clean_tracer = Tracer::metrics_only();
        let clean = CrashExplorer::new(
            &TnnRecoverable::system(5, 2, vec![0, 1]),
            CrashtestConfig::default(),
        )
        .with_tracer(clean_tracer.clone())
        .explore();
        assert!(clean.is_certified_clean());
        let snap = clean_tracer.snapshot().expect("enabled tracer");
        assert!(
            snap.counter("crashtest.memo_hits").unwrap_or(0) > 0,
            "an exhaustive exploration must hit its memo: {snap:?}"
        );
        assert_eq!(snap.counter("crashtest.counterexamples"), Some(0));
        // The public stats carry the same memo counters the tracer saw.
        assert_eq!(
            snap.counter("crashtest.memo_hits"),
            Some(clean.stats.memo_hits)
        );
        assert_eq!(
            snap.counter("crashtest.re_explored"),
            Some(clean.stats.re_explored)
        );
    }

    #[test]
    fn public_stats_expose_memo_effort_without_a_tracer() {
        // The stable ExplorerStats seam: memo effort is visible on the
        // plain (untraced) report, so cross-checkers can cite both sides'
        // search effort without instrumenting anything.
        let report = explore(&TnnRecoverable::system(5, 2, vec![0, 1]));
        assert!(report.is_certified_clean());
        assert!(report.stats.memo_hits > 0, "{}", report.stats);
        assert!(report.stats.events_applied > report.stats.states_visited);
    }

    #[test]
    fn state_cap_is_reported_honestly() {
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let report = CrashExplorer::new(
            &sys,
            CrashtestConfig {
                max_states: 10,
                ..Default::default()
            },
        )
        .explore();
        assert!(report.stats.state_capped);
        assert!(!report.is_certified_clean());
    }
}
