//! Delta-debugging shrinking of violating schedules.
//!
//! The DFS explorer returns the first violating path it walks, which
//! usually carries irrelevant events (steps of uninvolved processes,
//! crashes that burned budget without mattering). Shrinking reduces it to a
//! schedule where *every* event is necessary: remove any single event and
//! the violation disappears (1-minimality, the guarantee of delta
//! debugging's final granularity).
//!
//! The procedure is deterministic and purely abstract — candidates are
//! re-executed through [`System::run_from_start`] — so a shrunk
//! counterexample is reproducible by construction.

use crate::diagnose::diagnose;
use crate::explorer::Counterexample;
use rcn_model::{Configuration, Event, Schedule, System};
use rcn_obs::Tracer;

/// Returns `true` if the schedule triggers any violation (not necessarily
/// the one originally observed — any violation is a valid counterexample).
fn violates(system: &System, events: &[Event]) -> bool {
    let schedule = Schedule::from_events(events.iter().copied());
    system.run_from_start(&schedule).1.is_some()
}

/// Lazily-grown prefix snapshots of the current best schedule, so a
/// deletion candidate `[start..end)` is tested by resuming from the
/// configuration after `events[..start]` instead of replaying the whole
/// prefix from the initial configuration. This turns each chunk pass of
/// the delta-debugging loop from O(L²) executor steps into O(L) amortized
/// prefix work plus the (unavoidable) suffix replays — exactly equivalent
/// to [`System::run_from_start`] on the spliced candidate, because event
/// application is deterministic and a violation in the untouched prefix is
/// a violation of the candidate too.
struct PrefixSnapshots<'s> {
    system: &'s System,
    /// `configs[i]` = configuration after applying `events[..i]`.
    configs: Vec<Configuration>,
    /// `violated[i]` = whether any of `events[..i]` triggered a violation.
    violated: Vec<bool>,
}

impl<'s> PrefixSnapshots<'s> {
    fn new(system: &'s System) -> Self {
        PrefixSnapshots {
            system,
            configs: vec![system.initial_config()],
            violated: vec![false],
        }
    }

    /// Extends the snapshots to cover `events[..upto]`.
    fn ensure(&mut self, events: &[Event], upto: usize) {
        while self.configs.len() <= upto {
            let i = self.configs.len() - 1;
            let mut next = self.configs[i].clone();
            let effect = self.system.apply(&mut next, events[i]);
            self.violated
                .push(self.violated[i] || effect.violation.is_some());
            self.configs.push(next);
        }
    }

    /// Invalidates every snapshot past `events[..keep]` (called when a
    /// deletion is accepted: the events after the cut point changed).
    fn truncate(&mut self, keep: usize) {
        self.configs.truncate(keep + 1);
        self.violated.truncate(keep + 1);
    }

    /// Does `events` with `[start..end)` removed still violate?
    fn candidate_violates(&mut self, events: &[Event], start: usize, end: usize) -> bool {
        self.ensure(events, start);
        if self.violated[start] {
            return true;
        }
        let mut config = self.configs[start].clone();
        events[end..]
            .iter()
            .any(|&e| self.system.apply(&mut config, e).violation.is_some())
    }
}

/// Shrinks a violating schedule to a 1-minimal one: first truncate to the
/// prefix ending at the first violation, then delete ever-smaller chunks of
/// events (halves, quarters, …, single events) as long as the result still
/// violates.
///
/// Returns the input unchanged if it does not violate at all.
pub fn shrink_schedule(system: &System, schedule: &Schedule) -> Schedule {
    shrink_schedule_traced(system, schedule, &Tracer::disabled())
}

/// [`shrink_schedule`] with observability: brackets the shrink in a
/// `crashtest.shrink` span (payload: the input length) and counts every
/// candidate re-execution in the `crashtest.shrink_iterations` counter.
/// With a disabled tracer this is exactly [`shrink_schedule`].
pub fn shrink_schedule_traced(system: &System, schedule: &Schedule, tracer: &Tracer) -> Schedule {
    let span = tracer.span_with(
        "crashtest.shrink",
        i64::try_from(schedule.len()).unwrap_or(i64::MAX),
        "",
    );
    let iterations = tracer.counter("crashtest.shrink_iterations");
    let mut events: Vec<Event> = schedule.events().to_vec();
    iterations.incr();
    if !violates(system, &events) {
        return schedule.clone();
    }
    // Truncation: nothing after the first violating event matters.
    let mut config = system.initial_config();
    let effects = system.run(&mut config, &Schedule::from_events(events.iter().copied()));
    if let Some(at) = effects.iter().position(|e| e.violation.is_some()) {
        events.truncate(at + 1);
    }
    // Delta-debugging deletion: coarse chunks first for speed, chunk size 1
    // last for the 1-minimality guarantee. Candidates resume from a prefix
    // snapshot instead of replaying `events[..start]` from the start each
    // time (the O(L²) fix); the accepted schedules — and therefore the
    // shrunk output — are identical to the replay-from-scratch procedure.
    let mut snapshots = PrefixSnapshots::new(system);
    let mut chunk = (events.len() / 2).max(1);
    loop {
        let mut reduced = false;
        let mut start = 0;
        while start < events.len() {
            let end = (start + chunk).min(events.len());
            iterations.incr();
            if snapshots.candidate_violates(&events, start, end) {
                events.drain(start..end);
                snapshots.truncate(start);
                reduced = true;
                // Re-test from the same index: the next chunk slid left.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !reduced {
            break;
        }
        if !reduced {
            chunk = (chunk / 2).max(1);
        }
    }
    drop(span);
    Schedule::from_events(events)
}

/// Shrinks a counterexample, re-diagnosing the minimal schedule (the
/// violation kind or diverging process may differ from the original — the
/// minimal schedule's own diagnosis is the one reported).
pub fn shrink_counterexample(system: &System, cex: &Counterexample) -> Counterexample {
    shrink_counterexample_traced(system, cex, &Tracer::disabled())
}

/// [`shrink_counterexample`] with observability (see
/// [`shrink_schedule_traced`]).
pub fn shrink_counterexample_traced(
    system: &System,
    cex: &Counterexample,
    tracer: &Tracer,
) -> Counterexample {
    let schedule = shrink_schedule_traced(system, &cex.schedule, tracer);
    let diagnosis = diagnose(system, &schedule);
    Counterexample {
        violation: diagnosis
            .violation
            .expect("shrinking preserves the existence of a violation"),
        divergence: diagnosis.divergence,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{CrashExplorer, CrashtestConfig};
    use rcn_protocols::{TasConsensus, TnnWaitFree};

    fn is_one_minimal(system: &System, schedule: &Schedule) -> bool {
        let events = schedule.events();
        (0..events.len()).all(|i| {
            let mut cand = events.to_vec();
            cand.remove(i);
            !violates(system, &cand)
        })
    }

    #[test]
    fn shrunk_tas_counterexample_is_one_minimal() {
        let sys = TasConsensus::system(vec![0, 1]);
        let report = CrashExplorer::new(&sys, CrashtestConfig::default()).explore();
        let cex = report.counterexample.expect("T&S breaks under crashes");
        let small = shrink_counterexample(&sys, &cex);
        assert!(small.schedule.len() <= cex.schedule.len());
        assert!(violates(&sys, small.schedule.events()));
        assert!(
            is_one_minimal(&sys, &small.schedule),
            "every event must be necessary: {}",
            small.schedule
        );
        assert!(
            !small.schedule.is_crash_free(),
            "the minimal T&S violation still needs a crash"
        );
    }

    #[test]
    fn shrunk_tnn_counterexample_is_one_minimal() {
        let sys = TnnWaitFree::system(2, 1, vec![0, 1]);
        let report = CrashExplorer::new(&sys, CrashtestConfig::default()).explore();
        let cex = report.counterexample.expect("T_{2,1} diverges");
        let small = shrink_counterexample(&sys, &cex);
        assert!(is_one_minimal(&sys, &small.schedule), "{}", small.schedule);
    }

    #[test]
    fn shrinking_a_clean_schedule_is_the_identity() {
        let sys = TasConsensus::system(vec![0, 1]);
        let clean: Schedule = "p0 p0 p1 p1 p1".parse().unwrap();
        assert_eq!(shrink_schedule(&sys, &clean), clean);
    }

    /// The original O(L²) procedure, kept as the reference: every
    /// candidate replayed from the initial configuration.
    fn shrink_reference(system: &System, schedule: &Schedule) -> Schedule {
        let mut events: Vec<Event> = schedule.events().to_vec();
        if !violates(system, &events) {
            return schedule.clone();
        }
        let mut config = system.initial_config();
        let effects = system.run(&mut config, &Schedule::from_events(events.iter().copied()));
        if let Some(at) = effects.iter().position(|e| e.violation.is_some()) {
            events.truncate(at + 1);
        }
        let mut chunk = (events.len() / 2).max(1);
        loop {
            let mut reduced = false;
            let mut start = 0;
            while start < events.len() {
                let end = (start + chunk).min(events.len());
                let mut candidate = events.clone();
                candidate.drain(start..end);
                if violates(system, &candidate) {
                    events = candidate;
                    reduced = true;
                } else {
                    start = end;
                }
            }
            if chunk == 1 && !reduced {
                break;
            }
            if !reduced {
                chunk = (chunk / 2).max(1);
            }
        }
        Schedule::from_events(events)
    }

    #[test]
    fn prefix_snapshot_shrinking_matches_the_replay_reference() {
        // The perf fix must not change a single output: the snapshot-
        // resumed procedure accepts exactly the candidates the replay-
        // from-scratch one does, on every zoo counterexample and on
        // hand-built schedules with trailing junk.
        let systems = vec![
            TasConsensus::system(vec![0, 1]),
            TnnWaitFree::system(2, 1, vec![0, 1]),
            TnnWaitFree::system(3, 2, vec![0, 1]),
        ];
        for sys in &systems {
            let report = CrashExplorer::new(sys, CrashtestConfig::default()).explore();
            let cex = report.counterexample.as_ref().expect("protocol breaks");
            assert_eq!(
                shrink_schedule(sys, &cex.schedule),
                shrink_reference(sys, &cex.schedule),
                "shrunk outputs diverge on {}",
                cex.schedule
            );
            // Padding with irrelevant suffix events exercises truncation +
            // deep deletion together.
            let padded = cex.schedule.concat(&"p0 p1 p0 p1".parse().unwrap());
            assert_eq!(
                shrink_schedule(sys, &padded),
                shrink_reference(sys, &padded),
                "shrunk outputs diverge on padded {padded}"
            );
        }
    }

    #[test]
    fn shrinking_is_deterministic() {
        let sys = TasConsensus::system(vec![0, 1]);
        let report = CrashExplorer::new(&sys, CrashtestConfig::default()).explore();
        let cex = report.counterexample.unwrap();
        let first = shrink_counterexample(&sys, &cex);
        for _ in 0..3 {
            assert_eq!(shrink_counterexample(&sys, &cex), first);
        }
    }
}
