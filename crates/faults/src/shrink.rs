//! Delta-debugging shrinking of violating schedules.
//!
//! The DFS explorer returns the first violating path it walks, which
//! usually carries irrelevant events (steps of uninvolved processes,
//! crashes that burned budget without mattering). Shrinking reduces it to a
//! schedule where *every* event is necessary: remove any single event and
//! the violation disappears (1-minimality, the guarantee of delta
//! debugging's final granularity).
//!
//! The procedure is deterministic and purely abstract — candidates are
//! re-executed through [`System::run_from_start`] — so a shrunk
//! counterexample is reproducible by construction.

use crate::diagnose::diagnose;
use crate::explorer::Counterexample;
use rcn_model::{Event, Schedule, System};
use rcn_obs::Tracer;

/// Returns `true` if the schedule triggers any violation (not necessarily
/// the one originally observed — any violation is a valid counterexample).
fn violates(system: &System, events: &[Event]) -> bool {
    let schedule = Schedule::from_events(events.iter().copied());
    system.run_from_start(&schedule).1.is_some()
}

/// Shrinks a violating schedule to a 1-minimal one: first truncate to the
/// prefix ending at the first violation, then delete ever-smaller chunks of
/// events (halves, quarters, …, single events) as long as the result still
/// violates.
///
/// Returns the input unchanged if it does not violate at all.
pub fn shrink_schedule(system: &System, schedule: &Schedule) -> Schedule {
    shrink_schedule_traced(system, schedule, &Tracer::disabled())
}

/// [`shrink_schedule`] with observability: brackets the shrink in a
/// `crashtest.shrink` span (payload: the input length) and counts every
/// candidate re-execution in the `crashtest.shrink_iterations` counter.
/// With a disabled tracer this is exactly [`shrink_schedule`].
pub fn shrink_schedule_traced(system: &System, schedule: &Schedule, tracer: &Tracer) -> Schedule {
    let span = tracer.span_with(
        "crashtest.shrink",
        i64::try_from(schedule.len()).unwrap_or(i64::MAX),
        "",
    );
    let iterations = tracer.counter("crashtest.shrink_iterations");
    let violates = |events: &[Event]| {
        iterations.incr();
        violates(system, events)
    };
    let mut events: Vec<Event> = schedule.events().to_vec();
    if !violates(&events) {
        return schedule.clone();
    }
    // Truncation: nothing after the first violating event matters.
    let mut config = system.initial_config();
    let effects = system.run(&mut config, &Schedule::from_events(events.iter().copied()));
    if let Some(at) = effects.iter().position(|e| e.violation.is_some()) {
        events.truncate(at + 1);
    }
    // Delta-debugging deletion: coarse chunks first for speed, chunk size 1
    // last for the 1-minimality guarantee.
    let mut chunk = (events.len() / 2).max(1);
    loop {
        let mut reduced = false;
        let mut start = 0;
        while start < events.len() {
            let end = (start + chunk).min(events.len());
            let mut candidate = events.clone();
            candidate.drain(start..end);
            if violates(&candidate) {
                events = candidate;
                reduced = true;
                // Re-test from the same index: the next chunk slid left.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !reduced {
            break;
        }
        if !reduced {
            chunk = (chunk / 2).max(1);
        }
    }
    drop(span);
    Schedule::from_events(events)
}

/// Shrinks a counterexample, re-diagnosing the minimal schedule (the
/// violation kind or diverging process may differ from the original — the
/// minimal schedule's own diagnosis is the one reported).
pub fn shrink_counterexample(system: &System, cex: &Counterexample) -> Counterexample {
    shrink_counterexample_traced(system, cex, &Tracer::disabled())
}

/// [`shrink_counterexample`] with observability (see
/// [`shrink_schedule_traced`]).
pub fn shrink_counterexample_traced(
    system: &System,
    cex: &Counterexample,
    tracer: &Tracer,
) -> Counterexample {
    let schedule = shrink_schedule_traced(system, &cex.schedule, tracer);
    let diagnosis = diagnose(system, &schedule);
    Counterexample {
        violation: diagnosis
            .violation
            .expect("shrinking preserves the existence of a violation"),
        divergence: diagnosis.divergence,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{CrashExplorer, CrashtestConfig};
    use rcn_protocols::{TasConsensus, TnnWaitFree};

    fn is_one_minimal(system: &System, schedule: &Schedule) -> bool {
        let events = schedule.events();
        (0..events.len()).all(|i| {
            let mut cand = events.to_vec();
            cand.remove(i);
            !violates(system, &cand)
        })
    }

    #[test]
    fn shrunk_tas_counterexample_is_one_minimal() {
        let sys = TasConsensus::system(vec![0, 1]);
        let report = CrashExplorer::new(&sys, CrashtestConfig::default()).explore();
        let cex = report.counterexample.expect("T&S breaks under crashes");
        let small = shrink_counterexample(&sys, &cex);
        assert!(small.schedule.len() <= cex.schedule.len());
        assert!(violates(&sys, small.schedule.events()));
        assert!(
            is_one_minimal(&sys, &small.schedule),
            "every event must be necessary: {}",
            small.schedule
        );
        assert!(
            !small.schedule.is_crash_free(),
            "the minimal T&S violation still needs a crash"
        );
    }

    #[test]
    fn shrunk_tnn_counterexample_is_one_minimal() {
        let sys = TnnWaitFree::system(2, 1, vec![0, 1]);
        let report = CrashExplorer::new(&sys, CrashtestConfig::default()).explore();
        let cex = report.counterexample.expect("T_{2,1} diverges");
        let small = shrink_counterexample(&sys, &cex);
        assert!(is_one_minimal(&sys, &small.schedule), "{}", small.schedule);
    }

    #[test]
    fn shrinking_a_clean_schedule_is_the_identity() {
        let sys = TasConsensus::system(vec![0, 1]);
        let clean: Schedule = "p0 p0 p1 p1 p1".parse().unwrap();
        assert_eq!(shrink_schedule(&sys, &clean), clean);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let sys = TasConsensus::system(vec![0, 1]);
        let report = CrashExplorer::new(&sys, CrashtestConfig::default()).explore();
        let cex = report.counterexample.unwrap();
        let first = shrink_counterexample(&sys, &cex);
        for _ in 0..3 {
            assert_eq!(shrink_counterexample(&sys, &cex), first);
        }
    }
}
