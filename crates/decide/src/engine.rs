//! The parallel, instrumented search engine behind the deciders.
//!
//! Both witness searches iterate the same space: `(initial value, op
//! multiset)` *instances* — each requiring one [`Analysis`] (the expensive
//! part) — times a set of team partitions (cheap bitset unions). The engine
//! shards this space across worker threads with a shared claim counter,
//! cancels all workers as soon as any of them finds a witness, and memoizes
//! analyses in a cache shared across deciders — [`classify`]
//! (`SearchEngine::classify`) runs *both* deciders over the same instance
//! space, so the second decider's scan hits the cache instead of rebuilding
//! every reachability graph.
//!
//! Two sharding grains are available:
//!
//! * **instance-level** (the default when instances are plentiful): one
//!   task per `(initial value, op multiset)` instance, covering all of its
//!   partitions;
//! * **partition-level** ([`PartitionSharding`]): when there are fewer
//!   instances than workers — few values and ops but a high level `n`, so a
//!   single instance's `2^(n-1) − 1` partitions dominate — each instance's
//!   partition list is split into chunks and the chunks become the tasks,
//!   so one dominant instance no longer serializes the search. Same-
//!   instance chunks share one analysis (computed exactly once).
//!
//! The per-search memo cache can also be made *durable* by attaching a
//! [`DiskCache`](crate::DiskCache): analyses load from disk before a level
//! is searched and flush back after, making repeated CLI invocations over
//! the same types near-instant (see [`crate::cache`] internals for the
//! trust model).
//!
//! Everything the engine does is observable through [`SearchStats`]:
//! analyses computed vs. served from the in-memory cache vs. served from
//! disk, partitions tested, instances visited, entries persisted, and both
//! time totals (true wall time and summed per-search busy time).
//!
//! Results are level-deterministic: the engine reports exactly the levels
//! the sequential deciders report (the space is either exhausted or a
//! genuine witness is found). The *witness* returned for a positive answer
//! may differ between runs with >1 thread — any verified witness is a valid
//! certificate, and [`crate::check_recording`] / [`crate::check_discerning`]
//! replay them independently.

use crate::cache::AnalysisStore;
use crate::classify::{level_to_bound, TypeClassification};
use crate::discerning::{pairs_disjoint, LevelResult};
use crate::reach::{Analysis, MAX_PROCESSES};
use crate::recording::recording_holds;
use crate::search::{instances, partitions};
use crate::witness::{Team, Witness};
use crate::DiskCache;
use rcn_obs::{MetricsSnapshot, Tracer};
use rcn_spec::{ObjectType, OpId, ValueId};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Errors from engine searches (instead of the deep asserts the plain
/// functions hit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The requested level exceeds what the analysis masks support.
    TooManyProcesses {
        /// The requested level / process count.
        n: usize,
        /// The supported maximum ([`MAX_PROCESSES`]).
        max: usize,
    },
    /// The requested level or cap is below 2 (both conditions need two
    /// nonempty teams).
    LevelTooSmall {
        /// The offending level or cap.
        n: usize,
    },
    /// An analysis task panicked (e.g. a hand-built [`ObjectType`] whose
    /// `apply` breaks its own contract). The worker caught the unwind, the
    /// remaining workers were cancelled cleanly, and the queue was not
    /// wedged.
    TaskPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::TooManyProcesses { n, max } => {
                write!(
                    f,
                    "level {n} exceeds the supported maximum of {max} processes"
                )
            }
            SearchError::LevelTooSmall { n } => {
                write!(f, "level {n} is below 2 (two nonempty teams are required)")
            }
            SearchError::TaskPanicked { message } => {
                write!(f, "a search task panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SearchError {}

fn validate_level(n: usize) -> Result<(), SearchError> {
    if n < 2 {
        Err(SearchError::LevelTooSmall { n })
    } else if n > MAX_PROCESSES {
        Err(SearchError::TooManyProcesses {
            n,
            max: MAX_PROCESSES,
        })
    } else {
        Ok(())
    }
}

/// When the engine shards the inner partition loop across workers (in
/// addition to the instance-level sharding that is always on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PartitionSharding {
    /// Shard partitions only when the instance list alone cannot saturate
    /// the workers (fewer instances than twice the worker count). The
    /// default.
    #[default]
    Auto,
    /// Never shard partitions; one task per instance (the pre-sharding
    /// behavior).
    Never,
    /// Always split each instance's partitions into at least two chunks
    /// (useful for differential testing of the sharded path).
    Always,
}

impl fmt::Display for PartitionSharding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PartitionSharding::Auto => "auto",
            PartitionSharding::Never => "never",
            PartitionSharding::Always => "always",
        })
    }
}

/// A snapshot of the engine's observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Reachability analyses actually computed.
    pub analyses_computed: u64,
    /// Analyses served from the in-memory memo cache instead of recomputed.
    pub cache_hits: u64,
    /// Analyses served from entries loaded out of the persistent
    /// [`DiskCache`] (0 when no cache directory is attached).
    pub disk_hits: u64,
    /// Analyses computed incrementally by extending a memoized level-`n`
    /// prefix analysis ([`Analysis::extend`]) instead of from scratch.
    /// Counted *in addition to* `analyses_computed` (an extension is still
    /// a computation).
    pub incremental_hits: u64,
    /// Analyses newly persisted to the [`DiskCache`] (0 when no cache
    /// directory is attached).
    pub disk_entries_written: u64,
    /// Team partitions evaluated against an analysis.
    pub partitions_tested: u64,
    /// `(initial value, op multiset)` instances visited.
    pub instances_visited: u64,
    /// Real elapsed time with at least one engine search in flight (the
    /// union of search intervals — never exceeds actual elapsed time, even
    /// when searches run concurrently).
    pub wall_time: Duration,
    /// Per-search durations summed across concurrent searches (total work
    /// time; ≥ `wall_time` whenever searches overlap).
    pub busy_time: Duration,
    /// `true` if the *most recent* public search call hit the
    /// [`SearchEngine::with_timeout`] deadline and was cancelled
    /// cooperatively — its results are partial. Unlike the work counters
    /// above, this flag (and `instances_abandoned`) is per-call, not
    /// cumulative: each public search call clears it on entry, so a
    /// timed-out search never taints the report of a later clean one.
    pub timed_out: bool,
    /// Instances whose tasks were abandoned (not finished) when a deadline
    /// fired during the most recent public search call. Always 0 when
    /// `timed_out` is `false`.
    pub instances_abandoned: u64,
}

impl SearchStats {
    /// The stats as a metrics snapshot (the same `engine.*` counter names
    /// an attached [`Tracer`] publishes), so scripts consume one schema
    /// whether they read `--stats --json` or `--metrics --json`.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("engine.analyses_computed", self.analyses_computed);
        snap.push_counter("engine.busy_ns", duration_to_ns(self.busy_time));
        snap.push_counter("engine.cache_hits", self.cache_hits);
        snap.push_counter("engine.disk_entries_written", self.disk_entries_written);
        snap.push_counter("engine.disk_hits", self.disk_hits);
        snap.push_counter("engine.incremental_hits", self.incremental_hits);
        snap.push_counter("engine.instances_abandoned", self.instances_abandoned);
        snap.push_counter("engine.instances_visited", self.instances_visited);
        snap.push_counter("engine.partitions_tested", self.partitions_tested);
        snap.push_counter("engine.timed_out", u64::from(self.timed_out));
        snap.push_counter("engine.wall_ns", duration_to_ns(self.wall_time));
        snap
    }

    /// The stats as one compact JSON object (the metrics-snapshot schema).
    pub fn to_json(&self) -> String {
        self.metrics().to_json()
    }
}

fn duration_to_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} analyses ({} cache hits, {} disk hits, {} incremental), {} partitions over {} instances in {:.3?} wall / {:.3?} busy",
            self.analyses_computed,
            self.cache_hits,
            self.disk_hits,
            self.incremental_hits,
            self.partitions_tested,
            self.instances_visited,
            self.wall_time,
            self.busy_time,
        )?;
        if self.disk_entries_written > 0 {
            write!(f, " ({} analyses persisted)", self.disk_entries_written)?;
        }
        if self.timed_out {
            write!(
                f,
                " [TIMED OUT: {} instances abandoned]",
                self.instances_abandoned
            )?;
        }
        Ok(())
    }
}

/// Which of the two conditions a search tests at each partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Condition {
    Recording,
    Discerning,
}

impl Condition {
    fn name(self) -> &'static str {
        match self {
            Condition::Recording => "recording",
            Condition::Discerning => "discerning",
        }
    }

    fn holds(self, analysis: &Analysis, u: ValueId, t0: &[usize], t1: &[usize]) -> bool {
        match self {
            Condition::Recording => recording_holds(analysis, u, t0, t1),
            Condition::Discerning => pairs_disjoint(analysis, t0, t1),
        }
    }
}

/// What one level search produced. `timed_out` is only set when the search
/// was cut short *without* finding a witness — a found witness is
/// conclusive regardless of when the deadline fired.
struct FindOutcome {
    witness: Option<Witness>,
    timed_out: bool,
}

/// Best-effort extraction of a panic payload for [`SearchError::TaskPanicked`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The engine's raw observability counters (shared with the cache layer).
#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) analyses_computed: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) disk_hits: AtomicU64,
    pub(crate) incremental_hits: AtomicU64,
    pub(crate) disk_entries_written: AtomicU64,
    pub(crate) partitions_tested: AtomicU64,
    pub(crate) instances_visited: AtomicU64,
    pub(crate) busy_nanos: AtomicU64,
    pub(crate) timed_out: AtomicBool,
    pub(crate) instances_abandoned: AtomicU64,
}

/// True-wall-time accounting: the union of in-flight search intervals.
/// Summing per-call durations (the old behavior) overstates "wall time" as
/// soon as `HierarchyReport::add_all` runs classifications concurrently on
/// one engine; this clock only ticks while at least one search is active.
#[derive(Default)]
struct WallClock {
    inner: Mutex<WallState>,
}

#[derive(Default)]
struct WallState {
    active: usize,
    started: Option<Instant>,
    total: Duration,
}

impl WallClock {
    fn enter(&self) {
        let mut state = self.inner.lock().expect("wall clock");
        if state.active == 0 {
            state.started = Some(Instant::now());
        }
        state.active += 1;
    }

    fn exit(&self) {
        let mut state = self.inner.lock().expect("wall clock");
        state.active -= 1;
        if state.active == 0 {
            if let Some(started) = state.started.take() {
                state.total += started.elapsed();
            }
        }
    }

    fn total(&self) -> Duration {
        self.inner.lock().expect("wall clock").total
    }

    fn reset(&self) {
        let mut state = self.inner.lock().expect("wall clock");
        state.total = Duration::ZERO;
        if state.active > 0 {
            state.started = Some(Instant::now());
        }
    }
}

/// The parallel, instrumented witness-search engine.
///
/// # Examples
///
/// ```
/// use rcn_decide::SearchEngine;
/// use rcn_spec::zoo::TestAndSet;
///
/// let engine = SearchEngine::new(2);
/// let c = engine.classify(&TestAndSet::new(), 4).unwrap();
/// assert_eq!(c.consensus_number.to_string(), "2");
/// // Both deciders scanned the same instances: the second scan hit the cache.
/// assert!(engine.stats().cache_hits > 0);
/// ```
pub struct SearchEngine {
    threads: usize,
    sharding: PartitionSharding,
    /// Worker count for *intra*-analysis parallelism (0 = auto: borrow the
    /// search workers when the instance list alone cannot saturate them).
    analysis_threads: usize,
    /// Whether level `n + 1` analyses may be seeded from memoized level-`n`
    /// prefixes ([`Analysis::extend`]).
    incremental: bool,
    disk: Option<DiskCache>,
    timeout: Option<Duration>,
    tracer: Tracer,
    counters: Counters,
    wall: WallClock,
}

impl SearchEngine {
    /// Creates an engine running searches on `threads` worker threads;
    /// `0` means one worker per available CPU.
    pub fn new(threads: usize) -> SearchEngine {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        SearchEngine {
            threads,
            sharding: PartitionSharding::default(),
            analysis_threads: 0,
            incremental: true,
            disk: None,
            timeout: None,
            tracer: Tracer::disabled(),
            counters: Counters::default(),
            wall: WallClock::default(),
        }
    }

    /// An engine that searches on the calling thread only.
    pub fn sequential() -> SearchEngine {
        SearchEngine::new(1)
    }

    /// Attaches a persistent analysis cache: every level search warms its
    /// memo from `cache`'s directory first and flushes newly computed
    /// analyses back after. See [`DiskCache`] for the trust model.
    #[must_use]
    pub fn with_disk_cache(mut self, cache: DiskCache) -> SearchEngine {
        // Order-independence with `with_tracer`: an engine tracer already
        // attached flows into the cache unless the cache brought its own.
        self.disk = Some(if self.tracer.enabled() && !cache.tracer().enabled() {
            cache.with_tracer(self.tracer.clone())
        } else {
            cache
        });
        self
    }

    /// Attaches a [`Tracer`]: the engine opens an `engine.level` span per
    /// level search (bracketing exactly the region `busy_time` measures),
    /// emits queue-depth and timeout events, and publishes its
    /// [`SearchStats`] counters into the tracer's metrics registry after
    /// every public search call. An attached [`DiskCache`] without its own
    /// tracer inherits this one (in either attachment order). Tracing is
    /// observation only — results are bit-identical with any tracer,
    /// including [`Tracer::disabled`] (the default).
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> SearchEngine {
        if let Some(disk) = self.disk.take() {
            self.disk = Some(if disk.tracer().enabled() {
                disk
            } else {
                disk.with_tracer(tracer.clone())
            });
        }
        self.tracer = tracer;
        self
    }

    /// Overrides the partition-sharding policy (default
    /// [`PartitionSharding::Auto`]).
    #[must_use]
    pub fn with_partition_sharding(mut self, sharding: PartitionSharding) -> SearchEngine {
        self.sharding = sharding;
        self
    }

    /// Sets the worker count for *intra*-analysis parallelism: each
    /// reachability analysis shards its mask-order propagation into
    /// popcount waves over this many threads ([`Analysis::with_threads`]).
    /// `0` (the default) is automatic: analyses borrow the engine's search
    /// workers exactly when the level's instance list alone cannot saturate
    /// them (the same regime where [`PartitionSharding::Auto`] shards
    /// partitions). Analyses are bit-identical at every setting; this is a
    /// latency knob, not a semantic one.
    #[must_use]
    pub fn with_analysis_threads(mut self, threads: usize) -> SearchEngine {
        self.analysis_threads = threads;
        self
    }

    /// Enables or disables incremental level seeding (default: enabled).
    /// When enabled, a level-`(n+1)` analysis whose `(initial value, op
    /// multiset)` extends an already-memoized level-`n` instance is built
    /// with [`Analysis::extend`] instead of from scratch — bit-identical,
    /// counted in [`SearchStats::incremental_hits`]. Disabling is only
    /// useful for differential testing and benchmarking.
    #[must_use]
    pub fn with_incremental(mut self, incremental: bool) -> SearchEngine {
        self.incremental = incremental;
        self
    }

    /// Attaches a wall-clock deadline to every *public* search call: once
    /// `timeout` elapses, workers stop claiming tasks and the call returns
    /// what it has. Timed-out searches are **inconclusive, never
    /// refutations** — a level scan that hits the deadline reports its best
    /// confirmed level with `capped: true` (rendered as `≥N`), and
    /// [`SearchStats::timed_out`] / [`SearchStats::instances_abandoned`]
    /// record that (and how much of) the space went unexplored.
    ///
    /// The deadline covers a whole public call: for
    /// [`classify`](Self::classify) both deciders share one deadline, not
    /// one each.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> SearchEngine {
        self.timeout = Some(timeout);
        self
    }

    /// The number of worker threads searches run on.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The attached persistent cache, if any.
    pub fn disk_cache(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// The partition-sharding policy in effect.
    pub fn partition_sharding(&self) -> PartitionSharding {
        self.sharding
    }

    /// The per-call wall-clock deadline, if one is attached.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// The configured intra-analysis worker count (0 = automatic).
    pub fn analysis_threads(&self) -> usize {
        self.analysis_threads
    }

    /// Whether incremental level seeding is enabled.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// The attached tracer ([`Tracer::disabled`] unless
    /// [`with_tracer`](Self::with_tracer) was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    pub(crate) fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Publishes the current [`SearchStats`] into the tracer's metrics
    /// registry (no-op when disabled). Called at the end of every public
    /// search call so `--metrics` always reflects the finished work.
    fn publish_metrics(&self) {
        if !self.tracer.enabled() {
            return;
        }
        for entry in &self.stats().metrics().counters {
            self.tracer.set(&entry.name, entry.value);
        }
    }

    /// Snapshot of the counters accumulated since creation (or the last
    /// [`reset_stats`](Self::reset_stats)). Exception: the timeout fields
    /// ([`SearchStats::timed_out`], [`SearchStats::instances_abandoned`])
    /// describe only the most recent public search call — see their docs.
    pub fn stats(&self) -> SearchStats {
        SearchStats {
            analyses_computed: self.counters.analyses_computed.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            incremental_hits: self.counters.incremental_hits.load(Ordering::Relaxed),
            disk_entries_written: self.counters.disk_entries_written.load(Ordering::Relaxed),
            partitions_tested: self.counters.partitions_tested.load(Ordering::Relaxed),
            instances_visited: self.counters.instances_visited.load(Ordering::Relaxed),
            wall_time: self.wall.total(),
            busy_time: Duration::from_nanos(self.counters.busy_nanos.load(Ordering::Relaxed)),
            timed_out: self.counters.timed_out.load(Ordering::Relaxed),
            instances_abandoned: self.counters.instances_abandoned.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters.
    pub fn reset_stats(&self) {
        self.counters.analyses_computed.store(0, Ordering::Relaxed);
        self.counters.cache_hits.store(0, Ordering::Relaxed);
        self.counters.disk_hits.store(0, Ordering::Relaxed);
        self.counters.incremental_hits.store(0, Ordering::Relaxed);
        self.counters
            .disk_entries_written
            .store(0, Ordering::Relaxed);
        self.counters.partitions_tested.store(0, Ordering::Relaxed);
        self.counters.instances_visited.store(0, Ordering::Relaxed);
        self.counters.busy_nanos.store(0, Ordering::Relaxed);
        self.counters.timed_out.store(false, Ordering::Relaxed);
        self.counters
            .instances_abandoned
            .store(0, Ordering::Relaxed);
        self.wall.reset();
    }

    /// The deadline for one public search call, armed at call entry.
    fn deadline(&self) -> Option<Instant> {
        self.timeout.map(|timeout| Instant::now() + timeout)
    }

    /// Clears the per-call timeout fields at public-call entry, so
    /// `timed_out` / `instances_abandoned` always describe the call in
    /// progress rather than sticking from an earlier timed-out search on
    /// the same engine.
    fn arm_call(&self) {
        self.counters.timed_out.store(false, Ordering::Relaxed);
        self.counters
            .instances_abandoned
            .store(0, Ordering::Relaxed);
    }

    /// Searches for an `n`-recording witness (parallel equivalent of
    /// [`crate::find_recording_witness`]).
    ///
    /// With a [`with_timeout`](Self::with_timeout) deadline attached, a
    /// timed-out search returns `Ok(None)` with [`SearchStats::timed_out`]
    /// set — an *inconclusive* `None`, not a refutation.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] if `n < 2`, `n > MAX_PROCESSES`, or a search
    /// task panicked.
    pub fn find_recording_witness<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        n: usize,
    ) -> Result<Option<Witness>, SearchError> {
        validate_level(n)?;
        self.arm_call();
        let store = AnalysisStore::new(ty, self.disk.as_ref());
        let outcome = self.find_witness(
            ty,
            n,
            Condition::Recording,
            &store,
            self.threads,
            self.deadline(),
        )?;
        self.publish_metrics();
        Ok(outcome.witness)
    }

    /// Searches for an `n`-discerning witness (parallel equivalent of
    /// [`crate::find_discerning_witness`]).
    ///
    /// With a [`with_timeout`](Self::with_timeout) deadline attached, a
    /// timed-out search returns `Ok(None)` with [`SearchStats::timed_out`]
    /// set — an *inconclusive* `None`, not a refutation.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] if `n < 2`, `n > MAX_PROCESSES`, or a search
    /// task panicked.
    pub fn find_discerning_witness<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        n: usize,
    ) -> Result<Option<Witness>, SearchError> {
        validate_level(n)?;
        self.arm_call();
        let store = AnalysisStore::new(ty, self.disk.as_ref());
        let outcome = self.find_witness(
            ty,
            n,
            Condition::Discerning,
            &store,
            self.threads,
            self.deadline(),
        )?;
        self.publish_metrics();
        Ok(outcome.witness)
    }

    /// Computes the recording number up to `cap` (parallel equivalent of
    /// [`crate::recording_number`]).
    ///
    /// A [`with_timeout`](Self::with_timeout) deadline that fires mid-scan
    /// stops the scan at the best *confirmed* level with `capped: true`
    /// (rendered `≥N`) — never misreporting an unexplored level as refuted.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] if `cap < 2`, `cap > MAX_PROCESSES`, or a
    /// search task panicked.
    pub fn recording_number<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        cap: usize,
    ) -> Result<LevelResult, SearchError> {
        validate_level(cap)?;
        self.arm_call();
        let store = AnalysisStore::new(ty, self.disk.as_ref());
        let result = self.level_scan(
            ty,
            cap,
            Condition::Recording,
            &store,
            self.threads,
            self.deadline(),
        );
        self.publish_metrics();
        result
    }

    /// Computes the discerning number up to `cap` (parallel equivalent of
    /// [`crate::discerning_number`]).
    ///
    /// A [`with_timeout`](Self::with_timeout) deadline that fires mid-scan
    /// stops the scan at the best *confirmed* level with `capped: true`
    /// (rendered `≥N`) — never misreporting an unexplored level as refuted.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] if `cap < 2`, `cap > MAX_PROCESSES`, or a
    /// search task panicked.
    pub fn discerning_number<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        cap: usize,
    ) -> Result<LevelResult, SearchError> {
        validate_level(cap)?;
        self.arm_call();
        let store = AnalysisStore::new(ty, self.disk.as_ref());
        let result = self.level_scan(
            ty,
            cap,
            Condition::Discerning,
            &store,
            self.threads,
            self.deadline(),
        );
        self.publish_metrics();
        result
    }

    /// Classifies a type by running both deciders up to `cap` over a
    /// *shared* analysis cache (parallel equivalent of [`crate::classify`]).
    ///
    /// Both deciders visit the same `(u, ops)` instances at each level, so
    /// the second scan is served largely from cache — visible as
    /// `cache_hits` in [`stats`](Self::stats). With a
    /// [`with_disk_cache`](Self::with_disk_cache)-attached cache, warm
    /// re-runs are served from `disk_hits` instead of recomputing.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] if `cap < 2`, `cap > MAX_PROCESSES`, or a
    /// search task panicked.
    pub fn classify<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        cap: usize,
    ) -> Result<TypeClassification, SearchError> {
        self.classify_with(ty, cap, self.threads)
    }

    /// Like [`classify`](Self::classify), but overriding the worker count
    /// for this call. Callers that parallelize at a coarser grain (e.g. one
    /// type per thread across a whole zoo) pass `1` to keep the total
    /// thread count at the engine's configured width.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] if `cap < 2`, `cap > MAX_PROCESSES`, or a
    /// search task panicked.
    pub fn classify_with<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        cap: usize,
        threads: usize,
    ) -> Result<TypeClassification, SearchError> {
        validate_level(cap)?;
        self.arm_call();
        let threads = threads.max(1);
        let store = AnalysisStore::new(ty, self.disk.as_ref());
        let readable = ty.is_readable();
        // One deadline for the whole classification: both deciders share it.
        let deadline = self.deadline();
        let discerning =
            self.level_scan(ty, cap, Condition::Discerning, &store, threads, deadline)?;
        let recording =
            self.level_scan(ty, cap, Condition::Recording, &store, threads, deadline)?;
        self.publish_metrics();
        let consensus_number = level_to_bound(&discerning, readable);
        let recoverable_consensus_number = level_to_bound(&recording, readable);
        Ok(TypeClassification {
            type_name: ty.name(),
            readable,
            discerning,
            recording,
            consensus_number,
            recoverable_consensus_number,
        })
    }

    /// Scans `n = 2..=cap`, stopping at the first refuted level — the same
    /// linear scan the sequential deciders use (both conditions are
    /// monotone in `n`).
    ///
    /// A deadline firing mid-scan is *inconclusive*: the best confirmed
    /// level is reported as a lower bound (`capped: true`), never as the
    /// exact answer.
    fn level_scan<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        cap: usize,
        cond: Condition,
        store: &AnalysisStore<'_>,
        threads: usize,
        deadline: Option<Instant>,
    ) -> Result<LevelResult, SearchError> {
        let mut best = LevelResult {
            level: 1,
            capped: false,
            witness: None,
        };
        for n in 2..=cap {
            let outcome = self.find_witness(ty, n, cond, store, threads, deadline)?;
            if outcome.timed_out {
                best.capped = true;
                return Ok(best);
            }
            match outcome.witness {
                Some(w) => {
                    best = LevelResult {
                        level: n,
                        capped: n == cap,
                        witness: Some(w),
                    };
                }
                None => return Ok(best),
            }
        }
        Ok(best)
    }

    /// The parallel witness search over one level: shard the task list
    /// across workers, cancel everyone on the first hit.
    ///
    /// A task is `(instance, partition range)`. With instance-level
    /// sharding (the default when instances are plentiful) each instance is
    /// one task covering all partitions. When the instance list alone
    /// cannot saturate the workers — or [`PartitionSharding::Always`] —
    /// each instance's partitions are split into chunks and every chunk is
    /// its own task, so a single dominant instance is worked by several
    /// threads at once (its analysis is still computed exactly once; the
    /// memo's `OnceLock` slots make late chunks wait instead of redo).
    ///
    /// Every task runs inside `catch_unwind`: a panicking task (a hand-built
    /// [`ObjectType`] breaking its contract mid-analysis) records its payload,
    /// cancels the remaining workers through the shared stop flag, and
    /// surfaces as [`SearchError::TaskPanicked`] — the queue is never wedged
    /// and the engine stays usable. A `deadline` is checked at every task
    /// claim and every 256 partitions within a chunk; when it fires, tasks
    /// not yet finished are counted into
    /// [`SearchStats::instances_abandoned`] by distinct instance.
    fn find_witness<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        n: usize,
        cond: Condition,
        store: &AnalysisStore<'_>,
        threads: usize,
        deadline: Option<Instant>,
    ) -> Result<FindOutcome, SearchError> {
        // Busy brackets wall (start before `enter`, measure after `exit`):
        // each wall interval nests inside its own busy interval, so the
        // interval union can never exceed the busy sum.
        let start = Instant::now();
        // The span brackets the same region `busy_time` measures, so a
        // profile's `engine.level` total reconciles with the busy stat.
        let level_span = self.tracer.span_with(
            "engine.level",
            i64::try_from(n).unwrap_or(i64::MAX),
            cond.name(),
        );
        self.wall.enter();
        store.prepare_level(ty, n);
        let space: Vec<(ValueId, Vec<OpId>)> =
            instances(ty.num_values(), ty.num_ops(), n).collect();
        let parts: Vec<Vec<Team>> = partitions(n).collect();
        let teams_of: Vec<(Vec<usize>, Vec<usize>)> = parts
            .iter()
            .map(|teams| {
                let t0 = (0..n).filter(|&i| teams[i] == Team::T0).collect();
                let t1 = (0..n).filter(|&i| teams[i] == Team::T1).collect();
                (t0, t1)
            })
            .collect();

        let workers = threads.max(1);
        // Intra-analysis parallelism: explicit setting wins; auto borrows
        // the search workers exactly when the instance list is too short to
        // keep them busy on its own (the same starvation regime partition
        // sharding targets — there the workers pile onto few analyses, so
        // letting each analysis use the pool shortens the critical path).
        let analysis_threads = match self.analysis_threads {
            0 if workers > 1 && space.len() < workers * 2 => workers,
            0 => 1,
            t => t,
        };
        let chunk_count = match self.sharding {
            PartitionSharding::Never => 1,
            PartitionSharding::Always => 2.max((workers * 2).div_ceil(space.len().max(1))),
            PartitionSharding::Auto if space.len() < workers * 2 => {
                (workers * 2).div_ceil(space.len().max(1))
            }
            PartitionSharding::Auto => 1,
        }
        .min(teams_of.len().max(1));
        let chunk_size = teams_of.len().div_ceil(chunk_count).max(1);
        // Task list: instance-major, partition-chunk-minor, so task order
        // refines the sequential visit order.
        let num_parts = teams_of.len();
        let tasks: Vec<(usize, usize, usize)> = (0..space.len())
            .flat_map(|i| {
                (0..chunk_count).filter_map(move |c| {
                    let lo = c * chunk_size;
                    (lo < num_parts).then(|| (i, lo, (lo + chunk_size).min(num_parts)))
                })
            })
            .collect();

        if self.tracer.recording() {
            // Queue depth at level start: how many claimable tasks the
            // workers are about to drain.
            level_span.event(
                "engine.queue",
                i64::try_from(tasks.len()).unwrap_or(i64::MAX),
                &format!(
                    "instances={} partitions={} chunks={}",
                    space.len(),
                    teams_of.len(),
                    chunk_count
                ),
            );
        }

        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let deadline_hit = AtomicBool::new(false);
        // One done flag per task: whatever is still unset when a deadline
        // fires is the abandoned remainder of the space.
        let done: Vec<AtomicBool> = tasks.iter().map(|_| AtomicBool::new(false)).collect();
        // First panic payload wins; later ones are dropped.
        let panicked: Mutex<Option<String>> = Mutex::new(None);
        // Earliest-(instance, partition) witness found so far, so more
        // threads or finer sharding can only improve (not degrade) how
        // canonical the returned witness is.
        let found: Mutex<Option<((usize, usize), Witness)>> = Mutex::new(None);

        let past_deadline = || deadline.is_some_and(|d| Instant::now() >= d);

        let worker = |engine: &SearchEngine| {
            let mut local_instances = 0u64;
            let mut local_partitions = 0u64;
            loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if past_deadline() {
                    deadline_hit.store(true, Ordering::Relaxed);
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
                let t = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(i, lo, hi)) = tasks.get(t) else {
                    break;
                };
                // Contain panics to the task: a broken `ObjectType` must
                // not wedge the queue or poison the engine.
                let task = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let (u, ops) = &space[i];
                    let analysis = store.get_or_compute(engine, ty, *u, ops, analysis_threads);
                    if lo == 0 {
                        // Count each instance once, at its first chunk.
                        local_instances += 1;
                    }
                    for (p, (t0, t1)) in teams_of[lo..hi].iter().enumerate() {
                        if local_partitions.is_multiple_of(256) && past_deadline() {
                            deadline_hit.store(true, Ordering::Relaxed);
                            stop.store(true, Ordering::Relaxed);
                            return false;
                        }
                        local_partitions += 1;
                        if cond.holds(&analysis, *u, t0, t1) {
                            let p = lo + p;
                            let witness = Witness::new(*u, parts[p].clone(), ops.clone());
                            let mut slot = found.lock().expect("witness slot");
                            match &*slot {
                                Some((best, _)) if *best <= (i, p) => {}
                                _ => *slot = Some(((i, p), witness)),
                            }
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    true
                }));
                match task {
                    Ok(true) => done[t].store(true, Ordering::Relaxed),
                    // Deadline fired mid-chunk: the task stays not-done.
                    Ok(false) => break,
                    Err(payload) => {
                        let mut slot = panicked.lock().expect("panic slot");
                        if slot.is_none() {
                            *slot = Some(panic_message(payload));
                        }
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            engine
                .counters
                .instances_visited
                .fetch_add(local_instances, Ordering::Relaxed);
            engine
                .counters
                .partitions_tested
                .fetch_add(local_partitions, Ordering::Relaxed);
        };

        let workers = workers.min(tasks.len().max(1));
        if workers <= 1 {
            worker(self);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| worker(self));
                }
            });
        }

        store.flush_level(self, n);
        self.wall.exit();
        self.counters.busy_nanos.fetch_add(
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        drop(level_span);
        if let Some(message) = panicked.into_inner().expect("panic slot") {
            return Err(SearchError::TaskPanicked { message });
        }
        let result = found.into_inner().expect("witness slot");
        let witness = result.map(|(_, w)| w);
        // A found witness is conclusive: the deadline only matters when the
        // search was cut short still empty-handed.
        let timed_out = witness.is_none() && deadline_hit.load(Ordering::Relaxed);
        if timed_out {
            self.counters.timed_out.store(true, Ordering::Relaxed);
            let abandoned: std::collections::HashSet<usize> = tasks
                .iter()
                .enumerate()
                .filter(|&(t, _)| !done[t].load(Ordering::Relaxed))
                .map(|(_, &(i, _, _))| i)
                .collect();
            self.counters
                .instances_abandoned
                .fetch_add(abandoned.len() as u64, Ordering::Relaxed);
            self.tracer.event(
                "engine.timeout",
                i64::try_from(abandoned.len()).unwrap_or(i64::MAX),
                cond.name(),
            );
        }
        Ok(FindOutcome { witness, timed_out })
    }
}

/// Computes the recording number with cap validation instead of asserts:
/// sequential convenience wrapper over [`SearchEngine::recording_number`].
///
/// # Errors
///
/// Returns [`SearchError`] if `cap < 2` or `cap > MAX_PROCESSES`.
pub fn try_recording_number<T: ObjectType + Sync + ?Sized>(
    ty: &T,
    cap: usize,
) -> Result<LevelResult, SearchError> {
    SearchEngine::sequential().recording_number(ty, cap)
}

/// Computes the discerning number with cap validation instead of asserts:
/// sequential convenience wrapper over [`SearchEngine::discerning_number`].
///
/// # Errors
///
/// Returns [`SearchError`] if `cap < 2` or `cap > MAX_PROCESSES`.
pub fn try_discerning_number<T: ObjectType + Sync + ?Sized>(
    ty: &T,
    cap: usize,
) -> Result<LevelResult, SearchError> {
    SearchEngine::sequential().discerning_number(ty, cap)
}

/// Classifies a type with cap validation instead of asserts: sequential
/// convenience wrapper over [`SearchEngine::classify`].
///
/// # Errors
///
/// Returns [`SearchError`] if `cap < 2` or `cap > MAX_PROCESSES`.
pub fn try_classify<T: ObjectType + Sync + ?Sized>(
    ty: &T,
    cap: usize,
) -> Result<TypeClassification, SearchError> {
    SearchEngine::sequential().classify(ty, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        check_discerning, check_recording, discerning_number, is_n_discerning, is_n_recording,
        recording_number,
    };
    use rcn_spec::zoo::{StickyBit, TestAndSet, Tnn};

    #[test]
    fn engine_agrees_with_sequential_deciders() {
        let engine = SearchEngine::new(4);
        for n in 2..=4 {
            assert_eq!(
                engine
                    .find_recording_witness(&TestAndSet::new(), n)
                    .unwrap()
                    .is_some(),
                is_n_recording(&TestAndSet::new(), n),
                "recording tas n={n}"
            );
            assert_eq!(
                engine
                    .find_discerning_witness(&StickyBit::new(), n)
                    .unwrap()
                    .is_some(),
                is_n_discerning(&StickyBit::new(), n),
                "discerning sticky n={n}"
            );
        }
        let t = Tnn::new(4, 2);
        assert_eq!(
            engine.recording_number(&t, 5).unwrap().level,
            recording_number(&t, 5).level
        );
        assert_eq!(
            engine.discerning_number(&t, 5).unwrap().level,
            discerning_number(&t, 5).level
        );
    }

    #[test]
    fn engine_witnesses_replay() {
        let engine = SearchEngine::new(3);
        let w = engine
            .find_recording_witness(&StickyBit::new(), 3)
            .unwrap()
            .expect("sticky is 3-recording");
        assert_eq!(check_recording(&StickyBit::new(), &w), Ok(true));
        let w = engine
            .find_discerning_witness(&TestAndSet::new(), 2)
            .unwrap()
            .expect("tas is 2-discerning");
        assert_eq!(check_discerning(&TestAndSet::new(), &w), Ok(true));
    }

    #[test]
    fn classify_shares_the_cache_across_deciders() {
        let engine = SearchEngine::sequential();
        let c = engine.classify(&TestAndSet::new(), 4).unwrap();
        assert_eq!(c.consensus_number.to_string(), "2");
        assert_eq!(c.recoverable_consensus_number.to_string(), "1");
        let stats = engine.stats();
        assert!(stats.cache_hits > 0, "second decider should hit: {stats}");
        assert!(stats.analyses_computed > 0);
        assert!(stats.partitions_tested > 0);
        // No cache directory attached: the disk layer stays silent.
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(stats.disk_entries_written, 0);
    }

    #[test]
    fn out_of_range_levels_are_errors_not_panics() {
        let engine = SearchEngine::sequential();
        let tas = TestAndSet::new();
        assert_eq!(
            engine.find_recording_witness(&tas, MAX_PROCESSES + 1),
            Err(SearchError::TooManyProcesses {
                n: MAX_PROCESSES + 1,
                max: MAX_PROCESSES
            })
        );
        assert_eq!(
            engine.find_discerning_witness(&tas, 1),
            Err(SearchError::LevelTooSmall { n: 1 })
        );
        assert!(try_recording_number(&tas, 25).is_err());
        assert!(try_discerning_number(&tas, 0).is_err());
        assert!(try_classify(&tas, MAX_PROCESSES + 5).is_err());
    }

    #[test]
    fn small_caps_are_errors_at_the_classify_layer() {
        // `level_scan`'s `2..=cap` loop would be empty for cap < 2 and
        // silently report level 1 with `capped: false` — a wrong "uncapped"
        // claim. The validation layer must reject instead.
        let engine = SearchEngine::sequential();
        let tas = TestAndSet::new();
        for cap in [0usize, 1] {
            assert_eq!(
                engine.classify(&tas, cap).unwrap_err(),
                SearchError::LevelTooSmall { n: cap }
            );
            assert_eq!(
                engine.recording_number(&tas, cap).unwrap_err(),
                SearchError::LevelTooSmall { n: cap }
            );
            assert_eq!(
                engine.discerning_number(&tas, cap).unwrap_err(),
                SearchError::LevelTooSmall { n: cap }
            );
        }
    }

    #[test]
    fn try_wrappers_match_the_panicking_api() {
        let tas = TestAndSet::new();
        assert_eq!(
            try_recording_number(&tas, 4).unwrap().level,
            recording_number(&tas, 4).level
        );
        assert_eq!(
            try_discerning_number(&tas, 4).unwrap().level,
            discerning_number(&tas, 4).level
        );
    }

    #[test]
    fn stats_reset() {
        let engine = SearchEngine::sequential();
        engine.classify(&TestAndSet::new(), 3).unwrap();
        assert!(engine.stats().analyses_computed > 0);
        engine.reset_stats();
        assert_eq!(engine.stats(), SearchStats::default());
    }

    #[test]
    fn parallel_levels_are_deterministic() {
        let first = SearchEngine::new(4)
            .recording_number(&Tnn::new(4, 1), 5)
            .unwrap();
        for _ in 0..3 {
            let again = SearchEngine::new(4)
                .recording_number(&Tnn::new(4, 1), 5)
                .unwrap();
            assert_eq!(again.level, first.level);
            assert_eq!(again.capped, first.capped);
        }
    }

    #[test]
    fn partition_sharding_levels_match_instance_sharding() {
        let t = Tnn::new(4, 2);
        for threads in [1usize, 4] {
            let base = SearchEngine::new(threads)
                .with_partition_sharding(PartitionSharding::Never)
                .classify(&t, 5)
                .unwrap();
            let sharded = SearchEngine::new(threads)
                .with_partition_sharding(PartitionSharding::Always)
                .classify(&t, 5)
                .unwrap();
            assert_eq!(sharded.discerning.level, base.discerning.level);
            assert_eq!(sharded.recording.level, base.recording.level);
            assert_eq!(sharded.consensus_number, base.consensus_number);
            assert_eq!(
                sharded.recoverable_consensus_number,
                base.recoverable_consensus_number
            );
        }
    }

    #[test]
    fn sequential_partition_sharding_finds_the_canonical_witness() {
        // With one thread, chunked partition order still visits
        // (instance, partition) pairs in the sequential order, so the
        // witness must be bit-identical to the unsharded one.
        let sticky = StickyBit::new();
        let base = SearchEngine::sequential()
            .with_partition_sharding(PartitionSharding::Never)
            .find_recording_witness(&sticky, 3)
            .unwrap();
        let sharded = SearchEngine::sequential()
            .with_partition_sharding(PartitionSharding::Always)
            .find_recording_witness(&sticky, 3)
            .unwrap();
        assert_eq!(base, sharded);
    }

    /// A hand-built type that breaks the `ObjectType` contract by panicking
    /// inside `apply` — the hostile input the engine must contain.
    #[derive(Debug)]
    struct PanicsOnApply;

    impl rcn_spec::ObjectType for PanicsOnApply {
        fn name(&self) -> String {
            "panics-on-apply".to_string()
        }
        fn num_values(&self) -> usize {
            2
        }
        fn num_ops(&self) -> usize {
            2
        }
        fn num_responses(&self) -> usize {
            2
        }
        fn apply(&self, _value: rcn_spec::ValueId, _op: rcn_spec::OpId) -> rcn_spec::Outcome {
            panic!("contract violation in apply");
        }
    }

    #[test]
    fn task_panics_become_errors_not_wedged_queues() {
        for threads in [1usize, 4] {
            let engine = SearchEngine::new(threads);
            let err = engine
                .find_recording_witness(&PanicsOnApply, 2)
                .expect_err("the panic must surface as an error");
            assert_eq!(
                err,
                SearchError::TaskPanicked {
                    message: "contract violation in apply".to_string()
                }
            );
            // The engine survives its poisoned task: a well-behaved search
            // on the same engine still works.
            let c = engine.classify(&TestAndSet::new(), 3).unwrap();
            assert_eq!(c.consensus_number.to_string(), "2");
        }
    }

    #[test]
    fn deadline_produces_honest_partial_results() {
        let engine = SearchEngine::new(2).with_timeout(Duration::ZERO);
        let result = engine.classify(&Tnn::new(4, 2), 5).unwrap();
        // An already-expired deadline confirms nothing: the scan reports
        // only a trivial lower bound, never a refuted level.
        assert!(result.discerning.capped, "timed-out scan must be capped");
        assert!(result.recording.capped, "timed-out scan must be capped");
        assert_eq!(result.discerning.level, 1);
        let stats = engine.stats();
        assert!(stats.timed_out, "stats must disclose the timeout: {stats}");
        assert!(
            stats.instances_abandoned > 0,
            "the whole space was abandoned: {stats}"
        );
        assert!(stats.to_string().contains("TIMED OUT"));
    }

    #[test]
    fn timeout_flags_are_per_call_not_sticky() {
        // Regression: timed_out / instances_abandoned used to accumulate
        // until reset_stats, so one timed-out search made every later
        // clean call on the same engine still report a timeout.
        let engine = SearchEngine::new(2).with_timeout(Duration::ZERO);
        engine.classify(&Tnn::new(4, 2), 5).unwrap();
        assert!(engine.stats().timed_out);
        // Same counters, deadline lifted: the next call must start clean.
        let engine = engine.with_timeout(Duration::from_secs(600));
        let c = engine.classify(&TestAndSet::new(), 3).unwrap();
        assert_eq!(c.consensus_number.to_string(), "2");
        let stats = engine.stats();
        assert!(
            !stats.timed_out,
            "a clean call must not inherit an earlier call's timeout: {stats}"
        );
        assert_eq!(stats.instances_abandoned, 0);
        // The cumulative work counters, by contrast, do carry over.
        assert!(stats.analyses_computed > 0);
    }

    #[test]
    fn generous_deadlines_change_nothing() {
        let engine = SearchEngine::new(2).with_timeout(Duration::from_secs(600));
        assert_eq!(engine.timeout(), Some(Duration::from_secs(600)));
        let c = engine.classify(&TestAndSet::new(), 4).unwrap();
        assert_eq!(c.consensus_number.to_string(), "2");
        assert_eq!(c.recoverable_consensus_number.to_string(), "1");
        let stats = engine.stats();
        assert!(!stats.timed_out);
        assert_eq!(stats.instances_abandoned, 0);
    }

    #[test]
    fn tracer_records_levels_and_publishes_metrics() {
        let tracer = Tracer::ring(4096);
        let engine = SearchEngine::sequential().with_tracer(tracer.clone());
        engine.classify(&TestAndSet::new(), 3).unwrap();
        // The registry mirrors the stats counters after every public call.
        let stats = engine.stats();
        let snap = tracer.snapshot().unwrap();
        assert_eq!(
            snap.counter("engine.analyses_computed"),
            Some(stats.analyses_computed)
        );
        assert_eq!(
            snap.counter("engine.partitions_tested"),
            Some(stats.partitions_tested)
        );
        assert_eq!(snap.counter("engine.timed_out"), Some(0));
        // Spans: one engine.level per (condition, level) searched, each
        // with a queue event inside, plus one engine.analysis per computed
        // analysis.
        let events = tracer.ring_events();
        let level_opens = events
            .iter()
            .filter(|e| e.kind == rcn_obs::KIND_OPEN && e.name == "engine.level")
            .count();
        assert!(level_opens >= 3, "two conditions over cap 3: {level_opens}");
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind == rcn_obs::KIND_OPEN && e.name == "engine.analysis")
                .count() as u64,
            stats.analyses_computed
        );
        assert!(events.iter().any(|e| e.name == "engine.queue"));
        // Every open has its close.
        let opens = events.iter().filter(|e| e.kind == rcn_obs::KIND_OPEN);
        assert!(opens.clone().all(|open| events
            .iter()
            .any(|e| e.kind == rcn_obs::KIND_CLOSE && e.id == open.id)));
    }

    #[test]
    fn stats_metrics_json_matches_the_counters() {
        let engine = SearchEngine::sequential();
        engine.classify(&TestAndSet::new(), 3).unwrap();
        let stats = engine.stats();
        let snap = stats.metrics();
        assert_eq!(snap.counter("engine.cache_hits"), Some(stats.cache_hits));
        assert_eq!(
            snap.counter("engine.busy_ns"),
            Some(u64::try_from(stats.busy_time.as_nanos()).unwrap())
        );
        assert!(stats.to_json().contains("\"engine.analyses_computed\""));
    }

    #[test]
    fn engine_tracer_propagates_into_the_disk_cache_either_order() {
        let tracer = Tracer::metrics_only();
        let dir = std::env::temp_dir().join(format!(
            "rcn-engine-tracer-prop-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let cache_first = SearchEngine::sequential()
            .with_disk_cache(DiskCache::new(&dir))
            .with_tracer(tracer.clone());
        assert!(cache_first.disk_cache().unwrap().tracer().enabled());
        let tracer_first = SearchEngine::sequential()
            .with_tracer(tracer)
            .with_disk_cache(DiskCache::new(&dir));
        assert!(tracer_first.disk_cache().unwrap().tracer().enabled());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wall_time_never_exceeds_busy_time() {
        let engine = SearchEngine::new(2);
        engine.classify(&TestAndSet::new(), 4).unwrap();
        engine.classify(&StickyBit::new(), 3).unwrap();
        let stats = engine.stats();
        assert!(
            stats.wall_time <= stats.busy_time,
            "interval union must not exceed summed durations: {stats}"
        );
        assert!(stats.busy_time > Duration::ZERO);
    }
}
