//! The parallel, instrumented search engine behind the deciders.
//!
//! Both witness searches iterate the same space: `(initial value, op
//! multiset)` *instances* — each requiring one [`Analysis`] (the expensive
//! part) — times a set of team partitions (cheap bitset unions). The engine
//! shards the instance list across worker threads with a shared claim
//! counter, cancels all workers as soon as any of them finds a witness, and
//! memoizes analyses in a cache shared across deciders — [`classify`]
//! (`SearchEngine::classify`) runs *both* deciders over the same instance
//! space, so the second decider's scan hits the cache instead of rebuilding
//! every reachability graph.
//!
//! Everything the engine does is observable through [`SearchStats`]:
//! analyses computed vs. served from cache, partitions tested, instances
//! visited, and wall time.
//!
//! Results are level-deterministic: the engine reports exactly the levels
//! the sequential deciders report (the space is either exhausted or a
//! genuine witness is found). The *witness* returned for a positive answer
//! may differ between runs with >1 thread — any verified witness is a valid
//! certificate, and [`crate::check_recording`] / [`crate::check_discerning`]
//! replay them independently.

use crate::classify::{level_to_bound, TypeClassification};
use crate::discerning::{pairs_disjoint, LevelResult};
use crate::reach::{Analysis, MAX_PROCESSES};
use crate::recording::recording_holds;
use crate::search::{instances, partitions};
use crate::witness::{Team, Witness};
use rcn_spec::{ObjectType, OpId, ValueId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Errors from engine searches (instead of the deep asserts the plain
/// functions hit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The requested level exceeds what the analysis masks support.
    TooManyProcesses {
        /// The requested level / process count.
        n: usize,
        /// The supported maximum ([`MAX_PROCESSES`]).
        max: usize,
    },
    /// The requested level or cap is below 2 (both conditions need two
    /// nonempty teams).
    LevelTooSmall {
        /// The offending level or cap.
        n: usize,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SearchError::TooManyProcesses { n, max } => {
                write!(
                    f,
                    "level {n} exceeds the supported maximum of {max} processes"
                )
            }
            SearchError::LevelTooSmall { n } => {
                write!(f, "level {n} is below 2 (two nonempty teams are required)")
            }
        }
    }
}

impl std::error::Error for SearchError {}

fn validate_level(n: usize) -> Result<(), SearchError> {
    if n < 2 {
        Err(SearchError::LevelTooSmall { n })
    } else if n > MAX_PROCESSES {
        Err(SearchError::TooManyProcesses {
            n,
            max: MAX_PROCESSES,
        })
    } else {
        Ok(())
    }
}

/// A snapshot of the engine's observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Reachability analyses actually computed.
    pub analyses_computed: u64,
    /// Analyses served from the memo cache instead of recomputed.
    pub cache_hits: u64,
    /// Team partitions evaluated against an analysis.
    pub partitions_tested: u64,
    /// `(initial value, op multiset)` instances visited.
    pub instances_visited: u64,
    /// Total wall time spent inside engine searches.
    pub wall_time: Duration,
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} analyses ({} cache hits), {} partitions over {} instances in {:.3?}",
            self.analyses_computed,
            self.cache_hits,
            self.partitions_tested,
            self.instances_visited,
            self.wall_time,
        )
    }
}

/// Which of the two conditions a search tests at each partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Condition {
    Recording,
    Discerning,
}

impl Condition {
    fn holds(self, analysis: &Analysis, u: ValueId, t0: &[usize], t1: &[usize]) -> bool {
        match self {
            Condition::Recording => recording_holds(analysis, u, t0, t1),
            Condition::Discerning => pairs_disjoint(analysis, t0, t1),
        }
    }
}

/// Memo cache of analyses, keyed by instance. Scoped to one type: every
/// public entry point creates its own cache (and `classify` shares one
/// across both deciders, which is where the cache earns its keep).
type AnalysisCache = Mutex<HashMap<(u16, Vec<OpId>), Arc<Analysis>>>;

/// The parallel, instrumented witness-search engine.
///
/// # Examples
///
/// ```
/// use rcn_decide::SearchEngine;
/// use rcn_spec::zoo::TestAndSet;
///
/// let engine = SearchEngine::new(2);
/// let c = engine.classify(&TestAndSet::new(), 4).unwrap();
/// assert_eq!(c.consensus_number.to_string(), "2");
/// // Both deciders scanned the same instances: the second scan hit the cache.
/// assert!(engine.stats().cache_hits > 0);
/// ```
pub struct SearchEngine {
    threads: usize,
    analyses_computed: AtomicU64,
    cache_hits: AtomicU64,
    partitions_tested: AtomicU64,
    instances_visited: AtomicU64,
    wall_nanos: AtomicU64,
}

impl SearchEngine {
    /// Creates an engine running searches on `threads` worker threads;
    /// `0` means one worker per available CPU.
    pub fn new(threads: usize) -> SearchEngine {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        SearchEngine {
            threads,
            analyses_computed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            partitions_tested: AtomicU64::new(0),
            instances_visited: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
        }
    }

    /// An engine that searches on the calling thread only.
    pub fn sequential() -> SearchEngine {
        SearchEngine::new(1)
    }

    /// The number of worker threads searches run on.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the counters accumulated since creation (or the last
    /// [`reset_stats`](Self::reset_stats)).
    pub fn stats(&self) -> SearchStats {
        SearchStats {
            analyses_computed: self.analyses_computed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            partitions_tested: self.partitions_tested.load(Ordering::Relaxed),
            instances_visited: self.instances_visited.load(Ordering::Relaxed),
            wall_time: Duration::from_nanos(self.wall_nanos.load(Ordering::Relaxed)),
        }
    }

    /// Zeroes the counters.
    pub fn reset_stats(&self) {
        self.analyses_computed.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.partitions_tested.store(0, Ordering::Relaxed);
        self.instances_visited.store(0, Ordering::Relaxed);
        self.wall_nanos.store(0, Ordering::Relaxed);
    }

    /// Searches for an `n`-recording witness (parallel equivalent of
    /// [`crate::find_recording_witness`]).
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] if `n < 2` or `n > MAX_PROCESSES`.
    pub fn find_recording_witness<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        n: usize,
    ) -> Result<Option<Witness>, SearchError> {
        validate_level(n)?;
        let cache = AnalysisCache::default();
        Ok(self.find_witness(ty, n, Condition::Recording, &cache, self.threads))
    }

    /// Searches for an `n`-discerning witness (parallel equivalent of
    /// [`crate::find_discerning_witness`]).
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] if `n < 2` or `n > MAX_PROCESSES`.
    pub fn find_discerning_witness<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        n: usize,
    ) -> Result<Option<Witness>, SearchError> {
        validate_level(n)?;
        let cache = AnalysisCache::default();
        Ok(self.find_witness(ty, n, Condition::Discerning, &cache, self.threads))
    }

    /// Computes the recording number up to `cap` (parallel equivalent of
    /// [`crate::recording_number`]).
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] if `cap < 2` or `cap > MAX_PROCESSES`.
    pub fn recording_number<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        cap: usize,
    ) -> Result<LevelResult, SearchError> {
        validate_level(cap)?;
        let cache = AnalysisCache::default();
        Ok(self.level_scan(ty, cap, Condition::Recording, &cache, self.threads))
    }

    /// Computes the discerning number up to `cap` (parallel equivalent of
    /// [`crate::discerning_number`]).
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] if `cap < 2` or `cap > MAX_PROCESSES`.
    pub fn discerning_number<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        cap: usize,
    ) -> Result<LevelResult, SearchError> {
        validate_level(cap)?;
        let cache = AnalysisCache::default();
        Ok(self.level_scan(ty, cap, Condition::Discerning, &cache, self.threads))
    }

    /// Classifies a type by running both deciders up to `cap` over a
    /// *shared* analysis cache (parallel equivalent of [`crate::classify`]).
    ///
    /// Both deciders visit the same `(u, ops)` instances at each level, so
    /// the second scan is served largely from cache — visible as
    /// `cache_hits` in [`stats`](Self::stats).
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] if `cap < 2` or `cap > MAX_PROCESSES`.
    pub fn classify<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        cap: usize,
    ) -> Result<TypeClassification, SearchError> {
        self.classify_with(ty, cap, self.threads)
    }

    /// Like [`classify`](Self::classify), but overriding the worker count
    /// for this call. Callers that parallelize at a coarser grain (e.g. one
    /// type per thread across a whole zoo) pass `1` to keep the total
    /// thread count at the engine's configured width.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] if `cap < 2` or `cap > MAX_PROCESSES`.
    pub fn classify_with<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        cap: usize,
        threads: usize,
    ) -> Result<TypeClassification, SearchError> {
        validate_level(cap)?;
        let threads = threads.max(1);
        let cache = AnalysisCache::default();
        let readable = ty.is_readable();
        let discerning = self.level_scan(ty, cap, Condition::Discerning, &cache, threads);
        let recording = self.level_scan(ty, cap, Condition::Recording, &cache, threads);
        let consensus_number = level_to_bound(&discerning, readable);
        let recoverable_consensus_number = level_to_bound(&recording, readable);
        Ok(TypeClassification {
            type_name: ty.name(),
            readable,
            discerning,
            recording,
            consensus_number,
            recoverable_consensus_number,
        })
    }

    /// Scans `n = 2..=cap`, stopping at the first refuted level — the same
    /// linear scan the sequential deciders use (both conditions are
    /// monotone in `n`).
    fn level_scan<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        cap: usize,
        cond: Condition,
        cache: &AnalysisCache,
        threads: usize,
    ) -> LevelResult {
        let mut best = LevelResult {
            level: 1,
            capped: false,
            witness: None,
        };
        for n in 2..=cap {
            match self.find_witness(ty, n, cond, cache, threads) {
                Some(w) => {
                    best = LevelResult {
                        level: n,
                        capped: n == cap,
                        witness: Some(w),
                    };
                }
                None => return best,
            }
        }
        best
    }

    /// The parallel witness search over one level: shard the instance list
    /// across workers, cancel everyone on the first hit.
    fn find_witness<T: ObjectType + Sync + ?Sized>(
        &self,
        ty: &T,
        n: usize,
        cond: Condition,
        cache: &AnalysisCache,
        threads: usize,
    ) -> Option<Witness> {
        let start = Instant::now();
        let space: Vec<(ValueId, Vec<OpId>)> =
            instances(ty.num_values(), ty.num_ops(), n).collect();
        let parts: Vec<Vec<Team>> = partitions(n).collect();
        let teams_of: Vec<(Vec<usize>, Vec<usize>)> = parts
            .iter()
            .map(|teams| {
                let t0 = (0..n).filter(|&i| teams[i] == Team::T0).collect();
                let t1 = (0..n).filter(|&i| teams[i] == Team::T1).collect();
                (t0, t1)
            })
            .collect();

        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        // Earliest-instance witness found so far, so more threads can only
        // improve (not degrade) how canonical the returned witness is.
        let found: Mutex<Option<(usize, Witness)>> = Mutex::new(None);

        let worker = |budget: &SearchEngine| {
            let mut local_instances = 0u64;
            let mut local_partitions = 0u64;
            loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((u, ops)) = space.get(i) else { break };
                let analysis = budget.analysis_for(ty, *u, ops, cache);
                local_instances += 1;
                for (p, (t0, t1)) in teams_of.iter().enumerate() {
                    local_partitions += 1;
                    if cond.holds(&analysis, *u, t0, t1) {
                        let witness = Witness::new(*u, parts[p].clone(), ops.clone());
                        let mut slot = found.lock().expect("witness slot");
                        match &*slot {
                            Some((best_i, _)) if *best_i <= i => {}
                            _ => *slot = Some((i, witness)),
                        }
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            budget
                .instances_visited
                .fetch_add(local_instances, Ordering::Relaxed);
            budget
                .partitions_tested
                .fetch_add(local_partitions, Ordering::Relaxed);
        };

        let workers = threads.max(1).min(space.len().max(1));
        if workers <= 1 {
            worker(self);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| worker(self));
                }
            });
        }

        self.wall_nanos.fetch_add(
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        let result = found.into_inner().expect("witness slot");
        result.map(|(_, w)| w)
    }

    /// Gets the analysis of one instance, from cache if available.
    fn analysis_for<T: ObjectType + ?Sized>(
        &self,
        ty: &T,
        u: ValueId,
        ops: &[OpId],
        cache: &AnalysisCache,
    ) -> Arc<Analysis> {
        let key = (u.index() as u16, ops.to_vec());
        if let Some(hit) = cache.lock().expect("analysis cache").get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Compute outside the lock so analyses build in parallel; a rare
        // duplicate computation under a race just warms the same entry.
        let analysis = Arc::new(Analysis::new(ty, u, ops));
        self.analyses_computed.fetch_add(1, Ordering::Relaxed);
        Arc::clone(
            cache
                .lock()
                .expect("analysis cache")
                .entry(key)
                .or_insert(analysis),
        )
    }
}

/// Computes the recording number with cap validation instead of asserts:
/// sequential convenience wrapper over [`SearchEngine::recording_number`].
///
/// # Errors
///
/// Returns [`SearchError`] if `cap < 2` or `cap > MAX_PROCESSES`.
pub fn try_recording_number<T: ObjectType + Sync + ?Sized>(
    ty: &T,
    cap: usize,
) -> Result<LevelResult, SearchError> {
    SearchEngine::sequential().recording_number(ty, cap)
}

/// Computes the discerning number with cap validation instead of asserts:
/// sequential convenience wrapper over [`SearchEngine::discerning_number`].
///
/// # Errors
///
/// Returns [`SearchError`] if `cap < 2` or `cap > MAX_PROCESSES`.
pub fn try_discerning_number<T: ObjectType + Sync + ?Sized>(
    ty: &T,
    cap: usize,
) -> Result<LevelResult, SearchError> {
    SearchEngine::sequential().discerning_number(ty, cap)
}

/// Classifies a type with cap validation instead of asserts: sequential
/// convenience wrapper over [`SearchEngine::classify`].
///
/// # Errors
///
/// Returns [`SearchError`] if `cap < 2` or `cap > MAX_PROCESSES`.
pub fn try_classify<T: ObjectType + Sync + ?Sized>(
    ty: &T,
    cap: usize,
) -> Result<TypeClassification, SearchError> {
    SearchEngine::sequential().classify(ty, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        check_discerning, check_recording, discerning_number, is_n_discerning, is_n_recording,
        recording_number,
    };
    use rcn_spec::zoo::{StickyBit, TestAndSet, Tnn};

    #[test]
    fn engine_agrees_with_sequential_deciders() {
        let engine = SearchEngine::new(4);
        for n in 2..=4 {
            assert_eq!(
                engine
                    .find_recording_witness(&TestAndSet::new(), n)
                    .unwrap()
                    .is_some(),
                is_n_recording(&TestAndSet::new(), n),
                "recording tas n={n}"
            );
            assert_eq!(
                engine
                    .find_discerning_witness(&StickyBit::new(), n)
                    .unwrap()
                    .is_some(),
                is_n_discerning(&StickyBit::new(), n),
                "discerning sticky n={n}"
            );
        }
        let t = Tnn::new(4, 2);
        assert_eq!(
            engine.recording_number(&t, 5).unwrap().level,
            recording_number(&t, 5).level
        );
        assert_eq!(
            engine.discerning_number(&t, 5).unwrap().level,
            discerning_number(&t, 5).level
        );
    }

    #[test]
    fn engine_witnesses_replay() {
        let engine = SearchEngine::new(3);
        let w = engine
            .find_recording_witness(&StickyBit::new(), 3)
            .unwrap()
            .expect("sticky is 3-recording");
        assert_eq!(check_recording(&StickyBit::new(), &w), Ok(true));
        let w = engine
            .find_discerning_witness(&TestAndSet::new(), 2)
            .unwrap()
            .expect("tas is 2-discerning");
        assert_eq!(check_discerning(&TestAndSet::new(), &w), Ok(true));
    }

    #[test]
    fn classify_shares_the_cache_across_deciders() {
        let engine = SearchEngine::sequential();
        let c = engine.classify(&TestAndSet::new(), 4).unwrap();
        assert_eq!(c.consensus_number.to_string(), "2");
        assert_eq!(c.recoverable_consensus_number.to_string(), "1");
        let stats = engine.stats();
        assert!(stats.cache_hits > 0, "second decider should hit: {stats}");
        assert!(stats.analyses_computed > 0);
        assert!(stats.partitions_tested > 0);
    }

    #[test]
    fn out_of_range_levels_are_errors_not_panics() {
        let engine = SearchEngine::sequential();
        let tas = TestAndSet::new();
        assert_eq!(
            engine.find_recording_witness(&tas, MAX_PROCESSES + 1),
            Err(SearchError::TooManyProcesses {
                n: MAX_PROCESSES + 1,
                max: MAX_PROCESSES
            })
        );
        assert_eq!(
            engine.find_discerning_witness(&tas, 1),
            Err(SearchError::LevelTooSmall { n: 1 })
        );
        assert!(try_recording_number(&tas, 25).is_err());
        assert!(try_discerning_number(&tas, 0).is_err());
        assert!(try_classify(&tas, MAX_PROCESSES + 5).is_err());
    }

    #[test]
    fn try_wrappers_match_the_panicking_api() {
        let tas = TestAndSet::new();
        assert_eq!(
            try_recording_number(&tas, 4).unwrap().level,
            recording_number(&tas, 4).level
        );
        assert_eq!(
            try_discerning_number(&tas, 4).unwrap().level,
            discerning_number(&tas, 4).level
        );
    }

    #[test]
    fn stats_reset() {
        let engine = SearchEngine::sequential();
        engine.classify(&TestAndSet::new(), 3).unwrap();
        assert!(engine.stats().analyses_computed > 0);
        engine.reset_stats();
        assert_eq!(engine.stats(), SearchStats::default());
    }

    #[test]
    fn parallel_levels_are_deterministic() {
        let first = SearchEngine::new(4)
            .recording_number(&Tnn::new(4, 1), 5)
            .unwrap();
        for _ in 0..3 {
            let again = SearchEngine::new(4)
                .recording_number(&Tnn::new(4, 1), 5)
                .unwrap();
            assert_eq!(again.level, first.level);
            assert_eq!(again.capped, first.capped);
        }
    }
}
