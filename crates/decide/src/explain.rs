//! Human-readable explanations of witnesses: *why* a type is (or is not)
//! n-discerning / n-recording, with the `U_x` and `R_{x,j}` sets spelled
//! out in the type's own value and response names.
//!
//! Used by the `repro` driver and handy in the REPL when exploring a new
//! type; the rendered sets are recomputed from the definition via
//! [`crate::brute`], so an explanation doubles as an independent check of
//! the fast decider.

use crate::brute::{r_set, u_set};
use crate::discerning::check_discerning;
use crate::recording::check_recording;
use crate::witness::{Team, Witness};
use rcn_spec::{ObjectType, Response, ValueId};
use std::fmt::Write as _;

fn value_list<T: ObjectType + ?Sized>(ty: &T, mut ids: Vec<usize>) -> String {
    ids.sort_unstable();
    let names: Vec<String> = ids
        .into_iter()
        .map(|v| ty.value_name(ValueId(v as u16)))
        .collect();
    format!("{{{}}}", names.join(", "))
}

fn pair_list<T: ObjectType + ?Sized>(ty: &T, mut pairs: Vec<(usize, usize)>) -> String {
    pairs.sort_unstable();
    let names: Vec<String> = pairs
        .into_iter()
        .map(|(r, v)| {
            format!(
                "({}, {})",
                ty.response_name(Response(r as u16)),
                ty.value_name(ValueId(v as u16))
            )
        })
        .collect();
    format!("{{{}}}", names.join(", "))
}

/// Renders the recording analysis of a witness: the `U_0` / `U_1` sets,
/// whether they are disjoint, and how the hiding clause resolves.
///
/// # Examples
///
/// ```
/// use rcn_decide::{explain_recording, Team, Witness};
/// use rcn_spec::{zoo::TestAndSet, OpId, ValueId};
///
/// let w = Witness::new(
///     ValueId::new(0),
///     vec![Team::T0, Team::T1],
///     vec![OpId::new(0), OpId::new(0)],
/// );
/// let text = explain_recording(&TestAndSet::new(), &w);
/// assert!(text.contains("U_0"));
/// assert!(text.contains("NOT 2-recording"));
/// ```
pub fn explain_recording<T: ObjectType + ?Sized>(ty: &T, witness: &Witness) -> String {
    let mut out = String::new();
    let n = witness.n();
    let _ = writeln!(out, "recording analysis of {} for n = {n}:", ty.name());
    let _ = writeln!(out, "  witness: {}", witness.describe(ty));
    let u0 = u_set(ty, witness, Team::T0);
    let u1 = u_set(ty, witness, Team::T1);
    let _ = writeln!(
        out,
        "  U_0 = {}",
        value_list(ty, u0.iter().copied().collect())
    );
    let _ = writeln!(
        out,
        "  U_1 = {}",
        value_list(ty, u1.iter().copied().collect())
    );
    let inter: Vec<usize> = u0.intersection(&u1).copied().collect();
    if !inter.is_empty() {
        let _ = writeln!(
            out,
            "  U_0 ∩ U_1 = {} ≠ ∅ — the value cannot record the first team",
            value_list(ty, inter)
        );
    } else {
        let _ = writeln!(out, "  U_0 ∩ U_1 = ∅ ✓");
        let u = witness.initial.index();
        for (x, set, other) in [(0, &u0, Team::T1), (1, &u1, Team::T0)] {
            if set.contains(&u) {
                let size = witness.team_members(other).len();
                let _ = writeln!(
                    out,
                    "  u ∈ U_{x} (team {x} can hide) — needs |T_{}| = 1, have {size}",
                    1 - x,
                );
            }
        }
    }
    let verdict = check_recording(ty, witness) == Ok(true);
    let _ = writeln!(
        out,
        "  ⇒ witness {} {n}-recording",
        if verdict {
            "establishes"
        } else {
            "does NOT establish"
        }
    );
    if !verdict {
        let _ = write!(out, "  (NOT {n}-recording via this witness)");
    }
    out
}

/// Renders the discerning analysis of a witness: per-process
/// `R_{0,j}` / `R_{1,j}` sets and their disjointness.
///
/// # Examples
///
/// ```
/// use rcn_decide::{explain_discerning, Team, Witness};
/// use rcn_spec::{zoo::TestAndSet, OpId, ValueId};
///
/// let w = Witness::new(
///     ValueId::new(0),
///     vec![Team::T0, Team::T1],
///     vec![OpId::new(0), OpId::new(0)],
/// );
/// let text = explain_discerning(&TestAndSet::new(), &w);
/// assert!(text.contains("R_{0,0}"));
/// assert!(text.contains("establishes"));
/// ```
pub fn explain_discerning<T: ObjectType + ?Sized>(ty: &T, witness: &Witness) -> String {
    let mut out = String::new();
    let n = witness.n();
    let _ = writeln!(out, "discerning analysis of {} for n = {n}:", ty.name());
    let _ = writeln!(out, "  witness: {}", witness.describe(ty));
    let mut all_disjoint = true;
    for j in 0..n {
        let r0 = r_set(ty, witness, Team::T0, j);
        let r1 = r_set(ty, witness, Team::T1, j);
        let inter: Vec<(usize, usize)> = r0.intersection(&r1).copied().collect();
        let _ = writeln!(
            out,
            "  R_{{0,{j}}} = {}",
            pair_list(ty, r0.iter().copied().collect())
        );
        let _ = writeln!(
            out,
            "  R_{{1,{j}}} = {}",
            pair_list(ty, r1.iter().copied().collect())
        );
        if inter.is_empty() {
            let _ = writeln!(out, "    disjoint ✓");
        } else {
            all_disjoint = false;
            let _ = writeln!(out, "    collide at {}", pair_list(ty, inter));
        }
    }
    debug_assert_eq!(Ok(all_disjoint), check_discerning(ty, witness));
    let _ = writeln!(
        out,
        "  ⇒ witness {} {n}-discerning",
        if all_disjoint {
            "establishes"
        } else {
            "does NOT establish"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_spec::zoo::{StickyBit, TestAndSet};
    use rcn_spec::OpId;

    fn tas_witness() -> Witness {
        Witness::new(
            ValueId::new(0),
            vec![Team::T0, Team::T1],
            vec![OpId::new(0), OpId::new(0)],
        )
    }

    #[test]
    fn tas_discerning_explanation_shows_disjoint_pairs() {
        let text = explain_discerning(&TestAndSet::new(), &tas_witness());
        assert!(text.contains("establishes 2-discerning"), "{text}");
        assert!(text.contains("disjoint ✓"));
        // The winner's response 0 shows up in the rendered pairs.
        assert!(text.contains("(0, set)"));
    }

    #[test]
    fn tas_recording_explanation_shows_the_collision() {
        let text = explain_recording(&TestAndSet::new(), &tas_witness());
        assert!(text.contains("NOT 2-recording"), "{text}");
        assert!(text.contains("U_0 ∩ U_1"));
        assert!(text.contains("set"), "collision at the `set` value: {text}");
    }

    #[test]
    fn sticky_recording_explanation_is_positive() {
        let w = Witness::new(
            ValueId::new(0),
            vec![Team::T0, Team::T1],
            vec![OpId::new(0), OpId::new(1)],
        );
        let text = explain_recording(&StickyBit::new(), &w);
        assert!(text.contains("establishes 2-recording"), "{text}");
        assert!(text.contains("stuck-0"));
        assert!(text.contains("stuck-1"));
    }

    #[test]
    fn explanations_use_type_names_not_ids() {
        let text = explain_recording(
            &StickyBit::new(),
            &Witness::new(
                ValueId::new(0),
                vec![Team::T0, Team::T1],
                vec![OpId::new(0), OpId::new(1)],
            ),
        );
        assert!(!text.contains("v0"), "should use value names: {text}");
    }
}
