//! # rcn-decide — determining (recoverable) consensus numbers
//!
//! Decision procedures for the two finitely-checkable conditions that
//! determine the consensus power of finite deterministic types:
//!
//! * **n-discerning** (Ruppert 2000) — characterizes consensus number `≥ n`
//!   for deterministic readable types;
//! * **n-recording** (DFFR'22) — by Theorem 13 of *"Determining Recoverable
//!   Consensus Numbers"* (Ovens, PODC 2024) combined with DFFR'22 Theorem 8,
//!   characterizes recoverable consensus number `≥ n` for deterministic
//!   readable types.
//!
//! Both searches avoid factorial schedule enumeration by a BFS over
//! `(applied-process set, object value)` nodes ([`Analysis`]), and cut the
//! witness space by process-permutation and team-relabeling symmetries.
//!
//! ## Quickstart
//!
//! ```
//! use rcn_decide::classify;
//! use rcn_spec::zoo::{TestAndSet, Tnn};
//!
//! // Golab's separation, fully automatically:
//! let tas = classify(&TestAndSet::new(), 4);
//! assert_eq!(tas.consensus_number.to_string(), "2");
//! assert_eq!(tas.recoverable_consensus_number.to_string(), "1");
//!
//! // The paper's T_{4,2}: 4-discerning but only 3-recording.
//! let t = classify(&Tnn::new(4, 2), 5);
//! assert_eq!(t.discerning.level, 4);
//! assert_eq!(t.recording.level, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod bitset;
pub mod brute;
mod cache;
mod classify;
mod discerning;
mod engine;
mod explain;
mod reach;
mod recording;
mod search;
pub mod synthesis;
mod witness;

pub use bench::{BenchRecord, BenchRecorder};
pub use bitset::BitSet;
pub use cache::{
    type_fingerprint, CacheIo, DiskCache, FaultMode, FaultyIo, SystemIo, CACHE_FORMAT_VERSION,
};
pub use classify::{classify, robust_level, Bound, TypeClassification};
pub use discerning::{
    check_discerning, discerning_number, find_discerning_witness, is_n_discerning, LevelResult,
};
pub use engine::{
    try_classify, try_discerning_number, try_recording_number, PartitionSharding, SearchEngine,
    SearchError, SearchStats,
};
pub use explain::{explain_discerning, explain_recording};
pub use reach::{Analysis, MAX_PROCESSES};
pub use recording::{check_recording, find_recording_witness, is_n_recording, recording_number};
pub use search::search_space_size;
pub use witness::{Team, Witness, WitnessError};
