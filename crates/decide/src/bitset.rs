//! A small fixed-capacity bitset used for value sets and
//! (response, value)-pair sets inside the deciders.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-capacity bitset over `0..capacity`.
///
/// Serializes as `{"words": […], "capacity": N}` (the persistent analysis
/// cache stores these); deserialized sets must be re-validated with
/// [`is_well_formed`](Self::is_well_formed) before use, since the wire
/// format cannot enforce the words-match-capacity invariant.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty bitset with room for `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bitset index {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Returns `true` if `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Returns `true` if the two sets share an element.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Returns `true` if the internal representation is consistent: the
    /// word vector has exactly the length the capacity requires and no bit
    /// at or above `capacity` is set. Always true for sets built through
    /// this API; deserialized sets must be checked before use (a stray high
    /// bit would corrupt [`intersects`](Self::intersects)).
    pub fn is_well_formed(&self) -> bool {
        if self.words.len() != self.capacity.div_ceil(64) {
            return false;
        }
        let tail = self.capacity % 64;
        match self.words.last() {
            Some(&last) if tail != 0 => last & !((1u64 << tail) - 1) == 0,
            _ => true,
        }
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(s.insert(64));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(s.contains(64));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_and_intersects() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(2);
        assert!(!a.intersects(&b));
        b.insert(65);
        assert!(a.intersects(&b));
        a.union_with(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(2));
    }

    #[test]
    fn iter_yields_sorted_elements() {
        let mut s = BitSet::new(128);
        for i in [5, 127, 0, 64] {
            s.insert(i);
        }
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 5, 64, 127]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_range_insert_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn debug_lists_elements() {
        let mut s = BitSet::new(8);
        s.insert(1);
        s.insert(7);
        assert_eq!(format!("{s:?}"), "{1, 7}");
    }
}
