//! A small fixed-capacity bitset used for value sets and
//! (response, value)-pair sets inside the deciders.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-capacity bitset over `0..capacity`.
///
/// Serializes as `{"words": […], "capacity": N}` (the persistent analysis
/// cache stores these); deserialized sets must be re-validated with
/// [`is_well_formed`](Self::is_well_formed) before use, since the wire
/// format cannot enforce the words-match-capacity invariant.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty bitset with room for `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bitset index {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Returns `true` if `i` is in the set.
    ///
    /// Out-of-range indices are a caller bug: like [`insert`](Self::insert)
    /// they trip an assertion in debug builds. Release builds answer `false`
    /// (an index beyond the capacity is trivially not a member) instead of
    /// paying for the branch on the hot membership path.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(
            i < self.capacity,
            "bitset index {i} out of capacity {}",
            self.capacity
        );
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place union of `other`'s elements shifted up by `shift`: after the
    /// call, `self` additionally contains `shift + e` for every `e` in
    /// `other`. This is the word-level kernel behind the decider hot loops,
    /// which previously inserted `(response, value)` pairs one bit at a
    /// time: the pair universe indexes as `response * num_values + value`,
    /// so ORing a whole value set at offset `response * num_values` lands
    /// every pair at once. The shift is rarely word-aligned; each source
    /// word is split across (at most) two destination words.
    ///
    /// # Panics
    ///
    /// Panics if `shift + other.capacity() > self.capacity()` (some shifted
    /// element would land out of range).
    pub fn union_shifted_with(&mut self, other: &BitSet, shift: usize) {
        assert!(
            shift + other.capacity <= self.capacity,
            "shifted bitset union out of capacity: {} + {} > {}",
            shift,
            other.capacity,
            self.capacity
        );
        self.or_words(&other.words, shift);
    }

    /// Word-level OR primitive: ORs `src` (a little-endian word image of a
    /// bitset) into `self` at bit offset `shift`. Tail bits of `src` beyond
    /// its own capacity are assumed clear (true for well-formed sets), so
    /// well-formedness of `self` is preserved whenever the caller has
    /// checked the capacity bound, as [`union_shifted_with`]
    /// (Self::union_shifted_with) does.
    fn or_words(&mut self, src: &[u64], shift: usize) {
        let (w, b) = (shift / 64, shift % 64);
        if b == 0 {
            for (i, &s) in src.iter().enumerate() {
                if s != 0 {
                    self.words[w + i] |= s;
                }
            }
        } else {
            for (i, &s) in src.iter().enumerate() {
                if s == 0 {
                    continue;
                }
                self.words[w + i] |= s << b;
                if let Some(hi) = self.words.get_mut(w + i + 1) {
                    *hi |= s >> (64 - b);
                }
            }
        }
    }

    /// Returns `true` if the two sets share an element.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Returns `true` if the internal representation is consistent: the
    /// word vector has exactly the length the capacity requires and no bit
    /// at or above `capacity` is set. Always true for sets built through
    /// this API; deserialized sets must be checked before use (a stray high
    /// bit would corrupt [`intersects`](Self::intersects)).
    pub fn is_well_formed(&self) -> bool {
        if self.words.len() != self.capacity.div_ceil(64) {
            return false;
        }
        let tail = self.capacity % 64;
        match self.words.last() {
            Some(&last) if tail != 0 => last & !((1u64 << tail) - 1) == 0,
            _ => true,
        }
    }

    /// Iterates over the elements in increasing order.
    ///
    /// Zero words are skipped in one comparison each and set bits are walked
    /// with `trailing_zeros`, so iteration costs O(words + elements) rather
    /// than 64 probes per word — the sets here are usually sparse.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the elements of a [`BitSet`], in increasing order.
///
/// Returned by [`BitSet::iter`].
#[derive(Clone)]
pub struct Iter<'a> {
    words: &'a [u64],
    /// Index of the word `current` was loaded from.
    word_index: usize,
    /// Remaining (not yet yielded) bits of `words[word_index]`.
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            self.current = *self.words.get(self.word_index)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_index * 64 + bit)
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(s.insert(64));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(s.contains(64));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_and_intersects() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(2);
        assert!(!a.intersects(&b));
        b.insert(65);
        assert!(a.intersects(&b));
        a.union_with(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(2));
    }

    #[test]
    fn iter_yields_sorted_elements() {
        let mut s = BitSet::new(128);
        for i in [5, 127, 0, 64] {
            s.insert(i);
        }
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 5, 64, 127]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_range_insert_panics() {
        BitSet::new(10).insert(10);
    }

    // `contains` mirrors `insert`'s range contract in debug builds and
    // answers `false` in release builds; both behaviors are pinned.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of capacity")]
    fn contains_out_of_range_asserts_in_debug() {
        let s = BitSet::new(10);
        let _ = s.contains(1000);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn contains_out_of_range_is_false_in_release() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn shifted_union_matches_per_element_inserts() {
        // Sweep shifts across word boundaries and compare against the
        // obvious per-element loop.
        let mut src = BitSet::new(70);
        for i in [0, 1, 5, 63, 64, 69] {
            src.insert(i);
        }
        for shift in [0usize, 1, 6, 58, 63, 64, 65, 128, 186] {
            let mut kernel = BitSet::new(256);
            kernel.insert(0); // pre-existing bits survive
            kernel.insert(255);
            let mut naive = kernel.clone();
            kernel.union_shifted_with(&src, shift);
            for e in src.iter() {
                naive.insert(shift + e);
            }
            assert_eq!(kernel, naive, "shift={shift}");
            assert!(kernel.is_well_formed(), "shift={shift}");
        }
    }

    #[test]
    fn shifted_union_with_unaligned_capacity_stays_well_formed() {
        // Destination capacity not a multiple of 64 and the shifted source
        // ends exactly at the capacity: the high spill of the last source
        // word must not create a phantom word access.
        let mut src = BitSet::new(5);
        src.insert(4);
        let mut dst = BitSet::new(70);
        dst.union_shifted_with(&src, 65);
        assert!(dst.contains(69));
        assert_eq!(dst.len(), 1);
        assert!(dst.is_well_formed());
    }

    #[test]
    #[should_panic(expected = "shifted bitset union out of capacity")]
    fn shifted_union_out_of_range_panics() {
        let src = BitSet::new(10);
        let mut dst = BitSet::new(64);
        dst.union_shifted_with(&src, 55);
    }

    #[test]
    fn iter_skips_zero_words() {
        // Elements far apart leave interior words all-zero; the walk must
        // still find every element, in order.
        let mut s = BitSet::new(1024);
        let elems = [0usize, 63, 64, 512, 1023];
        for &e in &elems {
            s.insert(e);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), elems);
        assert!(BitSet::new(1024).iter().next().is_none());
    }

    #[test]
    fn debug_lists_elements() {
        let mut s = BitSet::new(8);
        s.insert(1);
        s.insert(7);
        assert_eq!(format!("{s:?}"), "{1, 7}");
    }
}
