//! Persistent (on-disk) analysis caching for the search engine.
//!
//! A reachability [`Analysis`] is the expensive part of every decider
//! instance, and the same `(initial value, op-multiset)` analyses recur
//! across CLI invocations — repeated `classify` / `compare` / `witness`
//! calls on the same type rebuild identical reachability graphs from
//! scratch. This module makes the engine's per-call memo cache *durable*:
//!
//! * [`DiskCache`] serializes analyses to JSON files in a cache directory,
//!   one file per `(type, level)` pair. Files carry a format-version header
//!   and a content [`type_fingerprint`] of the type's full transition
//!   table, so a renamed, stale, truncated, corrupted, or hand-edited file
//!   can never poison a search — any mismatch degrades silently to a full
//!   recompute. Writes go to a temporary file first and are published with
//!   an atomic rename, so concurrent CLI invocations sharing a cache
//!   directory never observe half-written files.
//! * [`AnalysisStore`] is the per-search session cache the engine works
//!   against: an in-memory memo map (shared by both deciders of a
//!   `classify`) whose per-instance slots are `OnceLock`s — so when the
//!   partition-sharded search points several workers at one instance,
//!   exactly one of them computes the analysis and the rest wait for it
//!   instead of duplicating the work — optionally warmed from and flushed
//!   back to a [`DiskCache`].
//!
//! Trust model: a cache entry is only used if the whole file parses, the
//! version and fingerprint match, and every analysis passes
//! [`Analysis::shape_matches`] for its instance key. Shape-valid but
//! *wrong* analysis contents (a deliberately falsified cache) are
//! indistinguishable from genuine ones, as with any persisted index —
//! delete the cache directory to rebuild from scratch.
//!
//! Fault tolerance: every filesystem call goes through the [`CacheIo`]
//! seam, so the workspace fail-point sweep can fail or truncate each
//! individual read/write/rename/create_dir/remove_file and prove the
//! fallback story holds at *every* injection point. Wholesale-corrupt files are
//! quarantined to `.bad` (evidence preserved, recompute-forever loops
//! broken), transient write failures are retried once, and temp files get
//! a per-call unique name so concurrent flushes in one process cannot
//! race.

use crate::engine::SearchEngine;
use crate::reach::Analysis;
use rcn_obs::Tracer;
use rcn_spec::{ObjectType, OpId, ValueId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The filesystem operations the cache performs, abstracted so tests can
/// inject faults at every call site (see [`FaultyIo`]).
///
/// Implementations must be safe to share across the engine's worker
/// threads.
pub trait CacheIo: Send + Sync + fmt::Debug {
    /// Reads a whole file to a string.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] of the underlying filesystem (or an injected one).
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Writes `data` to `path`, replacing any existing file.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] of the underlying filesystem (or an injected one).
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Renames `from` to `to` (atomic on the same filesystem).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] of the underlying filesystem (or an injected one).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Creates `path` and any missing parents.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] of the underlying filesystem (or an injected one).
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Removes a file (used to clean up temp files after a failed publish).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] of the underlying filesystem (or an injected one).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem (the default [`CacheIo`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemIo;

impl CacheIo for SystemIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// What an injected fault does to the targeted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation fails with an [`io::Error`] and has no effect.
    Error,
    /// The operation processes only half its data: a read returns the
    /// first half of the file, a write silently persists only the first
    /// half of its bytes (a torn write that *reports success* — the
    /// nastiest case, caught only by the next reader's validation).
    /// Operations with no data to halve (rename, create_dir, remove_file)
    /// fail as [`FaultMode::Error`].
    Truncate,
    /// The faulted *write* reports success but its bytes reach the disk
    /// only after the **next** operation (of any kind) completes — and
    /// never, if the run issues no further operation. Models a reordered
    /// writeback buffer: a subsequent rename can observe the file missing,
    /// and the late flush can resurrect a path the store already moved or
    /// removed. Non-write operations fail as [`FaultMode::Error`].
    Reorder,
    /// The faulted *write* persists immediately **and** is executed a
    /// second time after the next operation completes — so a later rename
    /// or removal of the same path is silently undone by the replayed
    /// write. Models a duplicated journal entry. Non-write operations fail
    /// as [`FaultMode::Error`].
    Duplicate,
}

/// A [`CacheIo`] that injects exactly one fault: the `fail_at`-th
/// operation (0-based, counted across all five operation kinds) is hit
/// with the configured [`FaultMode`]; every other operation passes through
/// to the real filesystem. Sweeping `fail_at` over `0..ops_seen()` of a
/// clean run visits every injection point the cache has — the fail-point
/// sweep in the workspace tests proves classification survives all of
/// them.
#[derive(Debug)]
pub struct FaultyIo {
    fail_at: u64,
    mode: FaultMode,
    next_op: AtomicU64,
    injected: AtomicU64,
    /// A write deferred by [`FaultMode::Reorder`] or queued for replay by
    /// [`FaultMode::Duplicate`]; flushed after the next operation. The
    /// flush bypasses [`FaultyIo::trip`] so deferred traffic does not
    /// shift the sweep's operation indices.
    pending: Mutex<Option<(PathBuf, Vec<u8>)>>,
}

impl FaultyIo {
    /// Injects `mode` at the `fail_at`-th operation.
    pub fn new(fail_at: u64, mode: FaultMode) -> FaultyIo {
        FaultyIo {
            fail_at,
            mode,
            next_op: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            pending: Mutex::new(None),
        }
    }

    /// An io layer that never injects — used to count a run's operations
    /// (the sweep range).
    pub fn counting() -> FaultyIo {
        FaultyIo::new(u64::MAX, FaultMode::Error)
    }

    /// Operations issued so far.
    pub fn ops_seen(&self) -> u64 {
        self.next_op.load(Ordering::Relaxed)
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Claims the next operation index; `true` means this operation is the
    /// faulted one.
    fn trip(&self) -> bool {
        let hit = self.next_op.fetch_add(1, Ordering::Relaxed) == self.fail_at;
        if hit {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn error(kind: &str) -> io::Error {
        io::Error::other(format!("injected {kind} fault"))
    }

    /// Lands any deferred/duplicated write. Called after every
    /// non-faulted operation; best-effort and uncounted, exactly like a
    /// kernel writeback that happens to be late.
    fn flush_pending(&self) {
        if let Some((path, data)) = self.pending.lock().unwrap().take() {
            let _ = std::fs::write(&path, data);
        }
    }

    /// Runs the underlying operation, then lands any pending write
    /// *after* it — the ordering that makes Reorder/Duplicate faults
    /// visible to the store's rename/remove traffic.
    fn then_flush<T>(&self, result: io::Result<T>) -> io::Result<T> {
        self.flush_pending();
        result
    }
}

impl CacheIo for FaultyIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        if self.trip() {
            return match self.mode {
                FaultMode::Error | FaultMode::Reorder | FaultMode::Duplicate => {
                    Err(Self::error("read"))
                }
                FaultMode::Truncate => {
                    let text = std::fs::read_to_string(path)?;
                    let mut cut = text.len() / 2;
                    while cut > 0 && !text.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    Ok(text[..cut].to_string())
                }
            };
        }
        self.then_flush(std::fs::read_to_string(path))
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        if self.trip() {
            return match self.mode {
                FaultMode::Error => Err(Self::error("write")),
                // Torn write: half the bytes land, success is reported.
                FaultMode::Truncate => std::fs::write(path, &data[..data.len() / 2]),
                // Reordered write: success is reported, nothing lands yet.
                FaultMode::Reorder => {
                    *self.pending.lock().unwrap() = Some((path.to_path_buf(), data.to_vec()));
                    Ok(())
                }
                // Duplicated write: lands now and replays after the next op.
                FaultMode::Duplicate => {
                    *self.pending.lock().unwrap() = Some((path.to_path_buf(), data.to_vec()));
                    std::fs::write(path, data)
                }
            };
        }
        self.then_flush(std::fs::write(path, data))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.trip() {
            return Err(Self::error("rename"));
        }
        self.then_flush(std::fs::rename(from, to))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        if self.trip() {
            return Err(Self::error("create_dir"));
        }
        self.then_flush(std::fs::create_dir_all(path))
    }

    // No data to halve/defer: non-write faults fail like Error.
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if self.trip() {
            return Err(Self::error("remove_file"));
        }
        self.then_flush(std::fs::remove_file(path))
    }
}

/// Version stamp written into every cache file. Bump on any change to the
/// serialized shape of [`Analysis`] or the file layout; readers silently
/// ignore files with any other version.
///
/// History: v1 = value/pair sets only; v2 = [`Analysis`] additionally
/// persists its `firsts` reachability labels (the seed for incremental
/// level extension), so v1 files no longer deserialize and must be
/// recomputed.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// 64-bit FNV-1a content hash of a type's *semantics*: its dimensions and
/// the full `(value, op) → (response, next)` transition table.
///
/// Two types with the same fingerprint have identical sequential
/// specifications (up to hash collision), so their analyses are
/// interchangeable — names and display strings deliberately do not
/// participate. This keys the on-disk cache: editing a table invalidates
/// its cached analyses automatically.
pub fn type_fingerprint<T: ObjectType + ?Sized>(ty: &T) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for byte in x.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(ty.num_values() as u64);
    mix(ty.num_ops() as u64);
    mix(ty.num_responses() as u64);
    for v in 0..ty.num_values() {
        for op in 0..ty.num_ops() {
            let out = ty.apply(ValueId(v as u16), OpId(op as u16));
            mix(out.response.index() as u64);
            mix(out.next.index() as u64);
        }
    }
    hash
}

/// One persisted `(instance, analysis)` pair.
#[derive(Serialize, Deserialize)]
struct CacheEntry {
    /// The instance's initial value.
    initial: u16,
    /// The instance's op multiset (one op id per process).
    ops: Vec<u16>,
    /// The instance's reachability analysis.
    analysis: Analysis,
}

/// The on-disk file shape: versioned header plus the entries.
#[derive(Serialize, Deserialize)]
struct CacheFile {
    /// Must equal [`CACHE_FORMAT_VERSION`].
    version: u32,
    /// Must equal the [`type_fingerprint`] of the type being searched.
    fingerprint: u64,
    /// The level `n` (number of processes) all entries belong to.
    level: u64,
    /// The cached analyses.
    entries: Vec<CacheEntry>,
}

/// A directory of persisted analyses.
///
/// Cheap to clone and to construct; the directory is created lazily on the
/// first successful write. All read errors — missing file, unreadable
/// file, malformed JSON, version or fingerprint mismatch, out-of-range
/// instance keys, shape-invalid analyses — are deliberately silent: the
/// cache is a pure accelerator and must never turn a computable answer
/// into a failure.
///
/// # Examples
///
/// ```
/// use rcn_decide::{DiskCache, SearchEngine};
/// use rcn_spec::zoo::TestAndSet;
///
/// let dir = std::env::temp_dir().join("rcn-doctest-cache");
/// let cold = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
/// cold.classify(&TestAndSet::new(), 3).unwrap();
///
/// let warm = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
/// warm.classify(&TestAndSet::new(), 3).unwrap();
/// assert!(warm.stats().disk_hits > 0, "warm run is served from disk");
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
    io: Arc<dyn CacheIo>,
    tracer: Tracer,
}

/// Makes concurrent [`DiskCache::store`] calls in one process use distinct
/// temp paths (the process id alone is not enough once the engine flushes
/// from several threads).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl DiskCache {
    /// Creates a handle on `dir` (not touched until the first write).
    pub fn new(dir: impl Into<PathBuf>) -> DiskCache {
        DiskCache::with_io(dir, Arc::new(SystemIo))
    }

    /// Creates a handle on `dir` performing all filesystem operations
    /// through `io` — the seam the fault-injection tests use.
    pub fn with_io(dir: impl Into<PathBuf>, io: Arc<dyn CacheIo>) -> DiskCache {
        DiskCache {
            dir: dir.into(),
            io,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a [`Tracer`]: loads, stores, quarantines, and transient-
    /// fault retries become `cache.*` events (with byte sizes and outcomes)
    /// and counters. [`SearchEngine::with_tracer`] propagates its tracer
    /// here automatically when the cache has none of its own.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> DiskCache {
        self.tracer = tracer;
        self
    }

    /// The attached tracer ([`Tracer::disabled`] by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file that holds level-`n` analyses for a type with this
    /// fingerprint.
    fn file_path(&self, fingerprint: u64, n: usize) -> PathBuf {
        self.dir
            .join(format!("analysis-{fingerprint:016x}-n{n}.json"))
    }

    /// Moves an irreparably corrupt cache file aside to `<stem>.bad`, so
    /// the next flush writes a fresh file instead of every future run
    /// re-parsing the same damage and recomputing forever, and the evidence
    /// survives for inspection. Best-effort: a failed rename changes
    /// nothing (the corrupt file keeps being skipped by `load`).
    fn quarantine(&self, path: &Path) {
        let _ = self.io.rename(path, &path.with_extension("bad"));
        self.tracer.counter("cache.quarantined").incr();
        if self.tracer.recording() {
            self.tracer
                .event("cache.quarantine", 0, &path.to_string_lossy());
        }
    }

    /// Loads every valid level-`n` entry for the fingerprinted type.
    /// Anything invalid — at file or entry granularity — is skipped; a file
    /// that is damaged wholesale (unparseable or wrong header) is
    /// quarantined to `.bad`.
    fn load<T: ObjectType + ?Sized>(
        &self,
        ty: &T,
        fingerprint: u64,
        n: usize,
    ) -> HashMap<(u16, Vec<OpId>), Arc<Analysis>> {
        let mut out = HashMap::new();
        let path = self.file_path(fingerprint, n);
        let Ok(text) = self.io.read_to_string(&path) else {
            self.tracer.event("cache.load", 0, "miss");
            return out;
        };
        let bytes = i64::try_from(text.len()).unwrap_or(i64::MAX);
        let Ok(file) = serde_json::from_str::<CacheFile>(&text) else {
            self.quarantine(&path);
            self.tracer.event("cache.load", bytes, "corrupt");
            return out;
        };
        if file.version != CACHE_FORMAT_VERSION
            || file.fingerprint != fingerprint
            || file.level != n as u64
        {
            self.quarantine(&path);
            self.tracer.event("cache.load", bytes, "header-mismatch");
            return out;
        }
        let (num_values, num_ops) = (ty.num_values(), ty.num_ops());
        for entry in file.entries {
            if usize::from(entry.initial) >= num_values
                || entry.ops.len() != n
                || entry.ops.iter().any(|&op| usize::from(op) >= num_ops)
                || !entry
                    .analysis
                    .shape_matches(n, num_values, ty.num_responses())
            {
                continue;
            }
            let key = (entry.initial, entry.ops.iter().map(|&o| OpId(o)).collect());
            out.insert(key, Arc::new(entry.analysis));
        }
        self.tracer
            .counter("cache.entries_loaded")
            .add(out.len() as u64);
        if self.tracer.recording() {
            self.tracer.event(
                "cache.load",
                bytes,
                &format!("ok level={n} entries={}", out.len()),
            );
        }
        out
    }

    /// Persists level-`n` entries atomically (write temp file, rename).
    /// Returns `true` on success; IO failures are silent (the cache is
    /// best-effort), reported only through the return value. Each
    /// operation is retried once, so a transient fault costs nothing.
    fn store(
        &self,
        fingerprint: u64,
        n: usize,
        entries: Vec<(u16, Vec<OpId>, Arc<Analysis>)>,
    ) -> bool {
        let entry_count = entries.len();
        let file = CacheFile {
            version: CACHE_FORMAT_VERSION,
            fingerprint,
            level: n as u64,
            entries: entries
                .into_iter()
                .map(|(initial, ops, analysis)| CacheEntry {
                    initial,
                    ops: ops.iter().map(|op| op.0).collect(),
                    // Entries are written once per level flush; the clone
                    // out of the shared Arc is the serialization cost.
                    analysis: (*analysis).clone(),
                })
                .collect(),
        };
        let Ok(json) = serde_json::to_string(&file) else {
            return false;
        };
        let retries = self.tracer.counter("cache.retries");
        let retry = |op: &dyn Fn() -> io::Result<()>| match op() {
            Ok(()) => true,
            // Transient fault: count the first failure, try once more.
            Err(_) => {
                retries.incr();
                op().is_ok()
            }
        };
        if !retry(&|| self.io.create_dir_all(&self.dir)) {
            self.store_event(false, 0, entry_count, n);
            return false;
        }
        let path = self.file_path(fingerprint, n);
        // Unique temp path per call: the process id distinguishes
        // concurrent CLI invocations, the sequence number concurrent
        // threads within one invocation (two engine threads flushing the
        // same (fingerprint, level) used to race on one temp file).
        let tmp = path.with_extension(format!(
            "tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let json = json.as_bytes();
        let ok = retry(&|| self.io.write(&tmp, json)) && retry(&|| self.io.rename(&tmp, &path));
        if !ok {
            // Don't leave temp litter behind a failed publish. Through the
            // io seam like everything else, so the fail-point sweep covers
            // it and a non-filesystem CacheIo never sees a real-disk call.
            let _ = self.io.remove_file(&tmp);
        }
        self.store_event(ok, json.len(), entry_count, n);
        ok
    }

    /// Records one `cache.store` event plus the outcome counter.
    fn store_event(&self, ok: bool, bytes: usize, entries: usize, n: usize) {
        self.tracer
            .counter(if ok {
                "cache.stores"
            } else {
                "cache.store_failures"
            })
            .incr();
        if self.tracer.recording() {
            self.tracer.event(
                "cache.store",
                i64::try_from(bytes).unwrap_or(i64::MAX),
                &format!(
                    "{} level={n} entries={entries}",
                    if ok { "ok" } else { "failed" }
                ),
            );
        }
    }
}

/// How a memoized analysis slot was first populated (for the stats split
/// between in-memory and on-disk hits).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// Loaded from a [`DiskCache`] file.
    Disk,
    /// Computed during this search session.
    Fresh,
}

/// One memo slot: a lazily-initialized analysis. `OnceLock` makes
/// concurrent workers on the same instance block-and-share instead of
/// recomputing — essential once the partition-sharded search sends several
/// workers at a single instance.
struct Slot {
    cell: Arc<OnceLock<Arc<Analysis>>>,
    origin: Origin,
}

/// The per-search-session analysis cache: in-memory memo map, optionally
/// backed by a [`DiskCache`]. Scoped to one type; `classify` shares one
/// across both deciders (the second decider's scan hits the memo), and the
/// disk layer extends that sharing across process lifetimes.
pub(crate) struct AnalysisStore<'d> {
    memo: Mutex<HashMap<(u16, Vec<OpId>), Slot>>,
    disk: Option<(&'d DiskCache, u64)>,
    /// Levels already pulled from disk (so `classify`'s second decider
    /// doesn't re-read the same files).
    loaded_levels: Mutex<HashSet<usize>>,
    /// Per-level number of entries already persisted, so a flush only
    /// rewrites a file when the session actually learned something new.
    persisted: Mutex<HashMap<usize, usize>>,
}

impl<'d> AnalysisStore<'d> {
    /// Creates a store for one type; fingerprints the type only if a disk
    /// cache is attached.
    pub(crate) fn new<T: ObjectType + ?Sized>(ty: &T, disk: Option<&'d DiskCache>) -> Self {
        AnalysisStore {
            memo: Mutex::new(HashMap::new()),
            disk: disk.map(|d| (d, type_fingerprint(ty))),
            loaded_levels: Mutex::new(HashSet::new()),
            persisted: Mutex::new(HashMap::new()),
        }
    }

    /// Warms the memo with every valid persisted analysis for level `n`.
    /// Idempotent per level; a no-op without a disk cache.
    pub(crate) fn prepare_level<T: ObjectType + ?Sized>(&self, ty: &T, n: usize) {
        let Some((disk, fingerprint)) = self.disk else {
            return;
        };
        if !self.loaded_levels.lock().expect("loaded levels").insert(n) {
            return;
        }
        let loaded = disk.load(ty, fingerprint, n);
        let mut memo = self.memo.lock().expect("analysis memo");
        let mut count = 0usize;
        for (key, analysis) in loaded {
            memo.entry(key).or_insert_with(|| {
                count += 1;
                let cell = Arc::new(OnceLock::new());
                let _ = cell.set(analysis);
                Slot {
                    cell,
                    origin: Origin::Disk,
                }
            });
        }
        *self
            .persisted
            .lock()
            .expect("persisted counts")
            .entry(n)
            .or_insert(0) += count;
    }

    /// Returns the analysis for one instance, computing it at most once
    /// across all workers. Updates the engine's counters: a computation
    /// increments `analyses_computed`, a memo hit increments `cache_hits`
    /// or `disk_hits` depending on where the slot's contents came from.
    ///
    /// Computations shard their propagation over `threads` workers
    /// ([`Analysis::with_threads`]); when the engine has incremental
    /// seeding enabled and the instance's one-shorter prefix is already
    /// memoized (same scan's previous level, a disk-warmed entry, or the
    /// other decider's pass), the analysis is built by
    /// [`Analysis::extend`] instead of from scratch — bit-identical, and
    /// additionally counted in `incremental_hits`.
    pub(crate) fn get_or_compute<T: ObjectType + ?Sized>(
        &self,
        engine: &SearchEngine,
        ty: &T,
        u: ValueId,
        ops: &[OpId],
        threads: usize,
    ) -> Arc<Analysis> {
        let key = (u.index() as u16, ops.to_vec());
        let (cell, origin) = {
            let mut memo = self.memo.lock().expect("analysis memo");
            let slot = memo.entry(key).or_insert_with(|| Slot {
                cell: Arc::new(OnceLock::new()),
                origin: Origin::Fresh,
            });
            (Arc::clone(&slot.cell), slot.origin)
        };
        // Initialize outside the map lock so distinct instances build in
        // parallel; OnceLock serializes same-instance workers.
        let mut computed = false;
        let mut incremental = false;
        let analysis = cell.get_or_init(|| {
            computed = true;
            let prefix = if engine.incremental() {
                self.memoized_prefix(u, ops)
            } else {
                None
            };
            // One span per analysis actually computed (memo/disk hits stay
            // silent — they are counters, not work).
            let _span = engine.tracer().span_with(
                "engine.analysis",
                i64::try_from(ops.len()).unwrap_or(i64::MAX),
                if prefix.is_some() {
                    "extend"
                } else {
                    "scratch"
                },
            );
            Arc::new(match prefix {
                Some(p) => {
                    incremental = true;
                    Analysis::extend(ty, u, &p, ops, threads)
                }
                None => Analysis::with_threads(ty, u, ops, threads),
            })
        });
        let counter = if computed {
            &engine.counters().analyses_computed
        } else if origin == Origin::Disk {
            &engine.counters().disk_hits
        } else {
            &engine.counters().cache_hits
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if incremental {
            engine
                .counters()
                .incremental_hits
                .fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(analysis)
    }

    /// The already-completed analysis of `(u, ops[..len - 1])`, if any.
    /// A sorted op multiset's prefix is itself a valid instance of the
    /// previous level, which is what makes the lookup key meaningful.
    /// Never blocks on an in-flight prefix computation — waiting would
    /// serialize workers on the memo instead of accelerating them.
    fn memoized_prefix(&self, u: ValueId, ops: &[OpId]) -> Option<Arc<Analysis>> {
        if ops.len() < 2 {
            return None;
        }
        let key = (u.index() as u16, ops[..ops.len() - 1].to_vec());
        let memo = self.memo.lock().expect("analysis memo");
        memo.get(&key).and_then(|slot| slot.cell.get().cloned())
    }

    /// Writes the level-`n` portion of the memo back to disk if the session
    /// produced analyses not yet persisted. Counts newly persisted entries
    /// into the engine's `disk_entries_written` stat. A no-op without a
    /// disk cache.
    pub(crate) fn flush_level(&self, engine: &SearchEngine, n: usize) {
        let Some((disk, fingerprint)) = self.disk else {
            return;
        };
        let entries: Vec<(u16, Vec<OpId>, Arc<Analysis>)> = {
            let memo = self.memo.lock().expect("analysis memo");
            memo.iter()
                .filter(|((_, ops), _)| ops.len() == n)
                .filter_map(|((initial, ops), slot)| {
                    slot.cell
                        .get()
                        .map(|a| (*initial, ops.clone(), Arc::clone(a)))
                })
                .collect()
        };
        let mut persisted = self.persisted.lock().expect("persisted counts");
        let already = persisted.get(&n).copied().unwrap_or(0);
        if entries.len() <= already {
            return;
        }
        let fresh = entries.len() - already;
        if disk.store(fingerprint, n, entries) {
            persisted.insert(n, already + fresh);
            engine
                .counters()
                .disk_entries_written
                .fetch_add(fresh as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_spec::zoo::{Register, TestAndSet, Tnn};

    #[test]
    fn fingerprint_is_semantic_not_nominal() {
        // Same table, different parameters ⇒ different fingerprints.
        assert_ne!(
            type_fingerprint(&Tnn::new(4, 1)),
            type_fingerprint(&Tnn::new(4, 2))
        );
        assert_ne!(
            type_fingerprint(&Register::new(2)),
            type_fingerprint(&Register::new(3))
        );
        // Deterministic across calls.
        assert_eq!(
            type_fingerprint(&TestAndSet::new()),
            type_fingerprint(&TestAndSet::new())
        );
    }

    #[test]
    fn load_ignores_missing_and_garbage_files() {
        let dir = std::env::temp_dir().join(format!(
            "rcn-cache-unit-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let cache = DiskCache::new(&dir);
        let tas = TestAndSet::new();
        let fp = type_fingerprint(&tas);
        // Missing directory entirely: silent empty.
        assert!(cache.load(&tas, fp, 2).is_empty());
        // Garbage bytes at the expected path: silent empty.
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(cache.file_path(fp, 2), b"{not json").unwrap();
        assert!(cache.load(&tas, fp, 2).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wholesale_corrupt_files_are_quarantined_to_bad() {
        let dir = std::env::temp_dir().join(format!(
            "rcn-cache-quarantine-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cache = DiskCache::new(&dir);
        let tas = TestAndSet::new();
        let fp = type_fingerprint(&tas);
        std::fs::create_dir_all(&dir).unwrap();
        let path = cache.file_path(fp, 2);
        std::fs::write(&path, b"{definitely not a cache file").unwrap();
        assert!(cache.load(&tas, fp, 2).is_empty());
        assert!(!path.exists(), "corrupt file must be moved aside");
        assert!(
            path.with_extension("bad").exists(),
            "evidence must be preserved as .bad"
        );
        // The slot is free again: a store publishes a fresh, loadable file.
        let ops = vec![OpId(0), OpId(0)];
        let analysis = Arc::new(Analysis::new(&tas, ValueId(0), &ops));
        assert!(cache.store(fp, 2, vec![(0, ops, analysis)]));
        assert_eq!(cache.load(&tas, fp, 2).len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_stores_to_one_slot_never_collide() {
        // Regression: the temp path used to be `tmp-{pid}` only, so two
        // engine threads flushing the same (fingerprint, level) raced on
        // one temp file (one writer's rename could publish the other's
        // half-written bytes). The per-call sequence number makes every
        // in-flight store use a private temp path.
        let dir = std::env::temp_dir().join(format!(
            "rcn-cache-concurrent-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cache = DiskCache::new(&dir);
        let tas = TestAndSet::new();
        let fp = type_fingerprint(&tas);
        let ops = vec![OpId(0), OpId(0)];
        let analysis = Arc::new(Analysis::new(&tas, ValueId(0), &ops));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = &cache;
                let ops = ops.clone();
                let analysis = Arc::clone(&analysis);
                scope.spawn(move || {
                    for _ in 0..16 {
                        assert!(cache.store(fp, 2, vec![(0, ops.clone(), analysis.clone())]));
                    }
                });
            }
        });
        // Whatever store won, the published file is complete and valid.
        assert_eq!(cache.load(&tas, fp, 2).len(), 1);
        // No temp litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|name| name.contains("tmp-"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_write_faults_are_retried_once() {
        let dir = std::env::temp_dir().join(format!(
            "rcn-cache-retry-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let tas = TestAndSet::new();
        let fp = type_fingerprint(&tas);
        let ops = vec![OpId(0), OpId(0)];
        let analysis = Arc::new(Analysis::new(&tas, ValueId(0), &ops));
        // Ops of one store: create_dir (0), write (1), rename (2). Fail
        // each of them once; the in-call retry must absorb every one.
        for fail_at in 0..3 {
            let io = Arc::new(FaultyIo::new(fail_at, FaultMode::Error));
            let cache = DiskCache::with_io(&dir, io.clone() as Arc<dyn CacheIo>);
            assert!(
                cache.store(fp, 2, vec![(0, ops.clone(), analysis.clone())]),
                "store must survive a transient fault at op {fail_at}"
            );
            assert_eq!(io.injected(), 1, "fault at op {fail_at} must fire");
            assert_eq!(DiskCache::new(&dir).load(&tas, fp, 2).len(), 1);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// A [`CacheIo`] whose writes and renames always fail, recording every
    /// `remove_file` it receives — proves the failed-publish cleanup goes
    /// through the io seam, so the fail-point sweep can cover it and a
    /// non-filesystem `CacheIo` never has its temp path touched on the real
    /// filesystem.
    #[derive(Debug, Default)]
    struct WritelessIo {
        removed: Mutex<Vec<PathBuf>>,
    }

    impl CacheIo for WritelessIo {
        fn read_to_string(&self, _path: &Path) -> io::Result<String> {
            Err(io::Error::other("writeless"))
        }

        fn write(&self, _path: &Path, _data: &[u8]) -> io::Result<()> {
            Err(io::Error::other("writeless"))
        }

        fn rename(&self, _from: &Path, _to: &Path) -> io::Result<()> {
            Err(io::Error::other("writeless"))
        }

        fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
            Ok(())
        }

        fn remove_file(&self, path: &Path) -> io::Result<()> {
            self.removed.lock().unwrap().push(path.to_path_buf());
            Ok(())
        }
    }

    #[test]
    fn failed_publish_cleanup_goes_through_the_io_seam() {
        let io = Arc::new(WritelessIo::default());
        let cache =
            DiskCache::with_io("/nonexistent/rcn-seam-test", io.clone() as Arc<dyn CacheIo>);
        let tas = TestAndSet::new();
        let fp = type_fingerprint(&tas);
        let ops = vec![OpId(0), OpId(0)];
        let analysis = Arc::new(Analysis::new(&tas, ValueId(0), &ops));
        assert!(!cache.store(fp, 2, vec![(0, ops, analysis)]));
        let removed = io.removed.lock().unwrap();
        assert_eq!(
            removed.len(),
            1,
            "cleanup must target exactly the temp file"
        );
        assert!(
            removed[0].to_string_lossy().contains("tmp-"),
            "cleanup must target the temp path, got {:?}",
            removed[0]
        );
    }

    #[test]
    fn faulty_io_counts_and_injects_once() {
        let io = FaultyIo::counting();
        let dir = std::env::temp_dir();
        let missing = dir.join("rcn-cache-no-such-file");
        assert!(CacheIo::read_to_string(&io, &missing).is_err());
        assert!(CacheIo::create_dir_all(&io, &dir).is_ok());
        assert_eq!(io.ops_seen(), 2);
        assert_eq!(io.injected(), 0);

        let faulty = FaultyIo::new(1, FaultMode::Error);
        assert!(CacheIo::create_dir_all(&faulty, &dir).is_ok());
        assert!(CacheIo::create_dir_all(&faulty, &dir).is_err());
        assert!(CacheIo::create_dir_all(&faulty, &dir).is_ok());
        assert_eq!(faulty.injected(), 1);
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "rcn-cache-roundtrip-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let cache = DiskCache::new(&dir);
        let tas = TestAndSet::new();
        let fp = type_fingerprint(&tas);
        let ops = vec![OpId(0), OpId(0)];
        let analysis = Arc::new(Analysis::new(&tas, ValueId(0), &ops));
        assert!(cache.store(fp, 2, vec![(0, ops.clone(), analysis)]));
        let loaded = cache.load(&tas, fp, 2);
        assert_eq!(loaded.len(), 1);
        let back = &loaded[&(0u16, ops)];
        assert!(back.shape_matches(2, tas.num_values(), tas.num_responses()));
        // A different level's file does not exist.
        assert!(cache.load(&tas, fp, 3).is_empty());
        // A fingerprint mismatch inside the file is rejected even at the
        // right path.
        let path = cache.file_path(fp, 2);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            text.replace(&format!("\"fingerprint\":{fp}"), "\"fingerprint\":1"),
        )
        .unwrap();
        assert!(cache.load(&tas, fp, 2).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
