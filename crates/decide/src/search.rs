//! Shared search scaffolding for the witness searches.
//!
//! Both deciders search the same witness space: an initial value, an op
//! assignment, and a team partition. Two symmetries cut the space:
//!
//! * **process permutation** — process identities don't appear in either
//!   condition (schedules range over all orders), so op assignments are
//!   enumerated as *multisets* (non-decreasing op sequences);
//! * **team relabeling** — both conditions are symmetric in `T_0`/`T_1`, so
//!   partitions are enumerated with `p_0 ∈ T_0`.

use crate::witness::Team;
use rcn_spec::{OpId, ValueId};

/// Iterates all non-decreasing op assignments of length `n` over
/// `0..num_ops` (op multisets).
pub(crate) fn op_multisets(num_ops: usize, n: usize) -> OpMultisets {
    OpMultisets {
        num_ops,
        current: Some(vec![OpId(0); n]),
    }
}

pub(crate) struct OpMultisets {
    num_ops: usize,
    current: Option<Vec<OpId>>,
}

impl Iterator for OpMultisets {
    type Item = Vec<OpId>;

    fn next(&mut self) -> Option<Vec<OpId>> {
        let current = self.current.take()?;
        let mut next = current.clone();
        // Advance like a non-decreasing odometer.
        let n = next.len();
        let mut i = n;
        loop {
            if i == 0 {
                self.current = None;
                return Some(current);
            }
            i -= 1;
            if next[i].index() + 1 < self.num_ops {
                let bumped = OpId(next[i].0 + 1);
                for slot in next.iter_mut().skip(i) {
                    *slot = bumped;
                }
                self.current = Some(next);
                return Some(current);
            }
        }
    }
}

/// Iterates all partitions of `n` processes into two nonempty teams with
/// `p_0 ∈ T_0`. Each item maps process index to team.
pub(crate) fn partitions(n: usize) -> impl Iterator<Item = Vec<Team>> {
    // Bits 0..n-1 of the counter give the team of p_1..p_{n-1}.
    (1u32..(1 << (n - 1))).map(move |bits| {
        let mut teams = Vec::with_capacity(n);
        teams.push(Team::T0);
        for i in 0..n - 1 {
            teams.push(if bits & (1 << i) != 0 {
                Team::T1
            } else {
                Team::T0
            });
        }
        teams
    })
}

/// Iterates the `(initial value, op multiset)` *instances* of the witness
/// space — the outer two loops of both deciders, and the unit of work the
/// parallel engine shards across threads (one [`crate::Analysis`] is built
/// per instance; partitions are then cheap bitset unions).
pub(crate) fn instances(
    num_values: usize,
    num_ops: usize,
    n: usize,
) -> impl Iterator<Item = (ValueId, Vec<OpId>)> {
    (0..num_values)
        .flat_map(move |u| op_multisets(num_ops, n).map(move |ops| (ValueId(u as u16), ops)))
}

/// The number of `(value, op multiset, partition)` triples a search over a
/// type with `num_values` values and `num_ops` ops visits for `n` processes.
///
/// Useful for sizing caps before launching an exhaustive search.
pub fn search_space_size(num_values: usize, num_ops: usize, n: usize) -> u128 {
    let mut multisets: u128 = 1;
    // C(num_ops + n - 1, n)
    for k in 0..n {
        multisets = multisets * (num_ops + k) as u128 / (k + 1) as u128;
    }
    num_values as u128 * multisets * ((1u128 << (n - 1)) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multisets_are_sorted_and_complete() {
        let all: Vec<Vec<OpId>> = op_multisets(3, 2).collect();
        // C(3+2-1, 2) = 6 multisets.
        assert_eq!(all.len(), 6);
        for m in &all {
            assert!(m.windows(2).all(|w| w[0] <= w[1]), "not sorted: {m:?}");
        }
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn multisets_of_length_one() {
        let all: Vec<Vec<OpId>> = op_multisets(4, 1).collect();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn partitions_have_p0_in_t0_and_nonempty_t1() {
        let all: Vec<Vec<Team>> = partitions(4).collect();
        assert_eq!(all.len(), 7); // 2^3 - 1
        for p in &all {
            assert_eq!(p[0], Team::T0);
            assert!(p.contains(&Team::T1));
        }
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn partitions_of_two() {
        let all: Vec<Vec<Team>> = partitions(2).collect();
        assert_eq!(all, vec![vec![Team::T0, Team::T1]]);
    }

    #[test]
    fn instances_cover_the_outer_product() {
        let all: Vec<_> = instances(2, 3, 2).collect();
        // 2 values × C(3+2-1, 2) = 12 instances.
        assert_eq!(all.len(), 12);
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
        // Same order as the sequential deciders: value-major, multiset-minor.
        assert_eq!(all[0].0.index(), 0);
        assert_eq!(all[6].0.index(), 1);
    }

    #[test]
    fn space_size_formula() {
        // 2 values, 3 ops, n=2: 2 * C(4,2) * 1 = 12.
        assert_eq!(search_space_size(2, 3, 2), 12);
        // matches the actual iterators:
        let count = 2 * op_multisets(3, 2).count() * partitions(2).count();
        assert_eq!(search_space_size(2, 3, 2), count as u128);
    }
}
