//! Decider-driven type synthesis: searching the space of finite types for a
//! target (discerning number, recording number) profile.
//!
//! The paper's corollary needs, for each `n ≥ 4`, a readable type that is
//! `n`-discerning, `(n−2)`-recording and not `(n−1)`-recording (DFFR'22's
//! `X_n`, whose construction this paper does not restate). Because our
//! deciders are fast on small types, we can *search* for such types: seed
//! with a structured table, apply random local mutations, and keep anything
//! that moves toward the target profile. This module is that harness; the
//! `xn_hunt` binary in `rcn-bench` drives it.

use crate::classify::{classify, TypeClassification};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcn_spec::{ObjectType, Outcome, Response, TableType, ValueId};
use serde::{Deserialize, Serialize};

/// A target profile for the synthesis search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetProfile {
    /// Required readability.
    pub readable: bool,
    /// Required exact discerning number.
    pub discerning: usize,
    /// Required exact recording number.
    pub recording: usize,
}

impl TargetProfile {
    /// The profile of DFFR'22's `X_n`: readable, discerning number `n`,
    /// recording number `n − 2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` (the paper's corollary needs `n ≥ 4`).
    pub fn xn(n: usize) -> TargetProfile {
        assert!(n >= 4, "X_n is defined for n >= 4");
        TargetProfile {
            readable: true,
            discerning: n,
            recording: n - 2,
        }
    }

    /// Checks a type against the profile (deciders capped at
    /// `max(discerning, recording) + 1` so exactness is established).
    pub fn matches<T: ObjectType + ?Sized>(&self, ty: &T) -> bool {
        self.classify(ty).is_some()
    }

    /// Like [`matches`](Self::matches) but returns the classification on
    /// success.
    pub fn classify<T: ObjectType + ?Sized>(&self, ty: &T) -> Option<TypeClassification> {
        if ty.is_readable() != self.readable {
            return None;
        }
        let cap = self.discerning.max(self.recording) + 1;
        let c = classify(ty, cap);
        (c.discerning.level == self.discerning
            && !c.discerning.capped
            && c.recording.level == self.recording
            && !c.recording.capped)
            .then_some(c)
    }

    /// Distance of a type from the profile: 0 iff it matches. Used as the
    /// search objective.
    pub fn distance<T: ObjectType + ?Sized>(&self, ty: &T) -> usize {
        if ty.is_readable() != self.readable {
            return usize::MAX;
        }
        let cap = self.discerning.max(self.recording) + 1;
        let c = classify(ty, cap);
        let d_gap = c.discerning.level.abs_diff(self.discerning)
            + usize::from(c.discerning.capped && c.discerning.level == self.discerning);
        let r_gap = c.recording.level.abs_diff(self.recording)
            + usize::from(c.recording.capped && c.recording.level == self.recording);
        // Discerning is the harder property to hit; weight it more so the
        // hill climb prefers fixing it first.
        2 * d_gap + r_gap
    }
}

/// Generates a random deterministic type with `num_values` values,
/// `num_mutators` random operations plus one read operation, and responses
/// drawn from `0..num_values + num_mutators` (value reports reuse the low
/// response ids so the read op stays injective).
pub fn random_readable_table(
    rng: &mut StdRng,
    num_values: usize,
    num_mutators: usize,
) -> TableType {
    let num_responses = num_values + num_mutators;
    let mut b = TableType::builder("synthesized", num_values, num_mutators + 1, num_responses);
    for v in 0..num_values as u16 {
        for op in 0..num_mutators as u16 {
            let next = rng.gen_range(0..num_values) as u16;
            let resp = rng.gen_range(0..num_responses) as u16;
            b.set(v, op, Outcome::new(Response(resp), ValueId(next)));
        }
        // The last op is a read: returns the value id, never mutates.
        b.set(
            v,
            num_mutators as u16,
            Outcome::new(Response(v), ValueId(v)),
        );
    }
    b.op_name(num_mutators as u16, "read");
    b.build()
        .expect("randomly filled table is structurally valid")
}

/// Randomly perturbs one to three mutator cells of a table (the read op is
/// preserved). Multi-cell rewrites let the hill climb cross ridges where
/// any single-cell change breaks one target property while fixing another.
pub fn mutate_table(rng: &mut StdRng, table: &TableType) -> TableType {
    let num_values = table.num_values();
    let num_ops = table.num_ops();
    let num_responses = table.num_responses();
    let mut b = TableType::builder(table.name(), num_values, num_ops, num_responses);
    // Copy everything …
    for v in 0..num_values as u16 {
        for op in 0..num_ops as u16 {
            b.set(v, op, table.apply(ValueId(v), rcn_spec::OpId(op)));
        }
    }
    // … then rewrite a few random non-read cells (1 cell 70%, 2 cells 20%,
    // 3 cells 10% of the time).
    let read = table.read_op().map(|o| o.index());
    let cells = match rng.gen_range(0..10) {
        0..=6 => 1,
        7..=8 => 2,
        _ => 3,
    };
    for _ in 0..cells {
        let mut op = rng.gen_range(0..num_ops);
        if Some(op) == read {
            op = (op + 1) % num_ops;
        }
        let v = rng.gen_range(0..num_values);
        let next = rng.gen_range(0..num_values) as u16;
        let resp = rng.gen_range(0..num_responses) as u16;
        b.set(
            v as u16,
            op as u16,
            Outcome::new(Response(resp), ValueId(next)),
        );
    }
    for op in 0..num_ops as u16 {
        b.op_name(op, table.op_name(rcn_spec::OpId(op)));
    }
    b.build().expect("mutated table is structurally valid")
}

/// Outcome of a [`hill_climb`] run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best table found.
    pub best: TableType,
    /// Its distance from the profile (0 = success).
    pub distance: usize,
    /// Number of candidate evaluations performed.
    pub evaluations: usize,
}

/// Stochastic hill climb from `seed` toward `profile`, evaluating at most
/// `budget` candidates. Accepts sideways moves to escape plateaus.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rcn_decide::synthesis::{random_readable_table, TargetProfile, hill_climb};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let seed = random_readable_table(&mut rng, 4, 2);
/// // A tiny budget just exercises the machinery.
/// let out = hill_climb(&mut rng, seed, TargetProfile { readable: true, discerning: 2, recording: 1 }, 10);
/// assert!(out.evaluations <= 11);
/// ```
pub fn hill_climb(
    rng: &mut StdRng,
    seed: TableType,
    profile: TargetProfile,
    budget: usize,
) -> SearchOutcome {
    let mut best = seed;
    let mut best_dist = profile.distance(&best);
    let mut evaluations = 1;
    let mut current = best.clone();
    let mut current_dist = best_dist;
    while evaluations <= budget && best_dist > 0 {
        let candidate = mutate_table(rng, &current);
        let dist = profile.distance(&candidate);
        evaluations += 1;
        if dist <= current_dist {
            current = candidate;
            current_dist = dist;
            if dist < best_dist {
                best = current.clone();
                best_dist = dist;
            }
        } else if rng.gen_bool(0.05) {
            // Occasional uphill move keeps the walk from freezing.
            current = candidate;
            current_dist = dist;
        }
    }
    SearchOutcome {
        best,
        distance: best_dist,
        evaluations,
    }
}

/// Convenience: a fresh seeded RNG for synthesis runs.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_spec::zoo::{TeamCounter, TestAndSet};

    #[test]
    fn profile_matches_known_types() {
        // Test-and-set: readable, discerning 2, recording 1.
        let p = TargetProfile {
            readable: true,
            discerning: 2,
            recording: 1,
        };
        assert!(p.matches(&TestAndSet::new()));
        assert_eq!(p.distance(&TestAndSet::new()), 0);
    }

    #[test]
    fn team_counter_has_the_gap_1_profile() {
        let p = TargetProfile {
            readable: true,
            discerning: 4,
            recording: 3,
        };
        assert!(p.matches(&TeamCounter::new(4)));
    }

    #[test]
    fn xn_profile_requires_n_at_least_4() {
        let p = TargetProfile::xn(4);
        assert_eq!(p.discerning, 4);
        assert_eq!(p.recording, 2);
    }

    #[test]
    #[should_panic(expected = "n >= 4")]
    fn xn_profile_rejects_small_n() {
        TargetProfile::xn(3);
    }

    #[test]
    fn random_tables_are_valid_and_readable() {
        let mut r = rng(7);
        for _ in 0..5 {
            let t = random_readable_table(&mut r, 5, 2);
            assert!(t.validate().is_ok());
            assert!(t.is_readable());
        }
    }

    #[test]
    fn mutation_preserves_validity_and_readability() {
        let mut r = rng(9);
        let mut t = random_readable_table(&mut r, 4, 2);
        for _ in 0..10 {
            t = mutate_table(&mut r, &t);
            assert!(t.validate().is_ok());
            assert!(t.is_readable(), "mutation must not destroy the read op");
        }
    }

    #[test]
    fn hill_climb_reports_zero_distance_when_seeded_at_target() {
        let mut r = rng(3);
        let seed = rcn_spec::TableType::from_type(&TestAndSet::new());
        let p = TargetProfile {
            readable: true,
            discerning: 2,
            recording: 1,
        };
        let out = hill_climb(&mut r, seed, p, 5);
        assert_eq!(out.distance, 0);
        assert_eq!(out.evaluations, 1);
    }
}
