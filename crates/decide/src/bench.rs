//! Machine-readable benchmark records (`BENCH_<name>.json`).
//!
//! EXPERIMENTS.md curves used to live only in prose; a [`BenchRecorder`]
//! turns a run (a Criterion bench, an `rcn classify --bench-json PATH`
//! invocation, or a CI smoke step) into a small JSON trajectory file that
//! later PRs can diff and CI can assert on. One file holds one named
//! recorder with a list of [`BenchRecord`]s; the schema is flat on purpose
//! so `python3 -c "json.load(...)"`-style checks stay one-liners.

use crate::engine::SearchStats;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::Path;

/// One measured configuration: identifying name, thread count, wall/busy
/// times, and the engine's work/cache counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// What was measured (e.g. `"classify/team-counter:5/cap=4"`).
    pub name: String,
    /// Search worker threads the run used.
    pub threads: usize,
    /// Real elapsed time, in seconds.
    pub wall_seconds: f64,
    /// Summed per-worker busy time, in seconds (≥ wall when workers overlap).
    pub busy_seconds: f64,
    /// Reachability analyses actually computed.
    pub analyses_computed: u64,
    /// Analyses served from the in-memory memo.
    pub cache_hits: u64,
    /// Analyses served from the persistent disk cache.
    pub disk_hits: u64,
    /// Analyses built incrementally from a lower-level prefix.
    pub incremental_hits: u64,
    /// Analyses newly persisted to the disk cache.
    pub disk_entries_written: u64,
    /// Team partitions evaluated.
    pub partitions_tested: u64,
    /// `(initial value, op multiset)` instances visited.
    pub instances_visited: u64,
    /// Whether the run hit a search deadline (numbers are then partial).
    pub timed_out: bool,
}

impl BenchRecord {
    /// Builds a record from an engine's [`SearchStats`] snapshot.
    pub fn from_stats(name: impl Into<String>, threads: usize, stats: &SearchStats) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            threads,
            wall_seconds: stats.wall_time.as_secs_f64(),
            busy_seconds: stats.busy_time.as_secs_f64(),
            analyses_computed: stats.analyses_computed,
            cache_hits: stats.cache_hits,
            disk_hits: stats.disk_hits,
            incremental_hits: stats.incremental_hits,
            disk_entries_written: stats.disk_entries_written,
            partitions_tested: stats.partitions_tested,
            instances_visited: stats.instances_visited,
            timed_out: stats.timed_out,
        }
    }

    /// Builds a record from a raw timing (for benches that measure a
    /// function directly rather than through an engine); the counters other
    /// than `analyses_computed` are zero.
    pub fn from_timing(
        name: impl Into<String>,
        threads: usize,
        wall_seconds: f64,
        iterations: u64,
    ) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            threads,
            wall_seconds,
            busy_seconds: wall_seconds,
            analyses_computed: iterations,
            cache_hits: 0,
            disk_hits: 0,
            incremental_hits: 0,
            disk_entries_written: 0,
            partitions_tested: 0,
            instances_visited: 0,
            timed_out: false,
        }
    }
}

/// Collects [`BenchRecord`]s and writes them as a `BENCH_<name>.json` file.
///
/// # Examples
///
/// ```
/// use rcn_decide::{BenchRecord, BenchRecorder, SearchEngine};
/// use rcn_spec::zoo::TestAndSet;
///
/// let engine = SearchEngine::sequential();
/// engine.classify(&TestAndSet::new(), 3).unwrap();
/// let mut rec = BenchRecorder::new("doctest");
/// rec.record(BenchRecord::from_stats("classify/test-and-set", 1, &engine.stats()));
/// let json = rec.to_json();
/// assert!(json.contains("\"analyses_computed\""));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecorder {
    /// The recorder's name (used for the default file name).
    pub name: String,
    /// The accumulated records, in insertion order.
    pub records: Vec<BenchRecord>,
}

impl BenchRecorder {
    /// Creates an empty recorder.
    pub fn new(name: impl Into<String>) -> BenchRecorder {
        BenchRecorder {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// Appends one record.
    pub fn record(&mut self, record: BenchRecord) {
        self.records.push(record);
    }

    /// The JSON document (pretty-printed; stable key order from the field
    /// declaration order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench records always serialize")
    }

    /// Writes the JSON document to `path`, creating parent directories as
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())?;
        file.write_all(b"\n")
    }

    /// The conventional file name for this recorder: `BENCH_<name>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchEngine;
    use rcn_spec::zoo::TestAndSet;

    #[test]
    fn record_round_trips_through_json() {
        let engine = SearchEngine::sequential();
        engine
            .classify(&TestAndSet::new(), 3)
            .expect("cap in range");
        let mut rec = BenchRecorder::new("roundtrip");
        rec.record(BenchRecord::from_stats(
            "classify/test-and-set",
            1,
            &engine.stats(),
        ));
        let json = rec.to_json();
        let back: BenchRecorder = serde_json::from_str(&json).expect("parse back");
        assert_eq!(back, rec);
        assert_eq!(back.records.len(), 1);
        assert!(back.records[0].analyses_computed > 0);
    }

    #[test]
    fn write_to_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("rcn-bench-test-{}", std::process::id()));
        let path = dir.join("nested").join("BENCH_x.json");
        let mut rec = BenchRecorder::new("x");
        rec.record(BenchRecord::from_timing("t", 1, 0.5, 10));
        rec.write_to(&path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.contains("\"wall_seconds\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_name_follows_convention() {
        assert_eq!(
            BenchRecorder::new("kernels").file_name(),
            "BENCH_kernels.json"
        );
    }
}
