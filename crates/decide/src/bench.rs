//! Machine-readable benchmark records (`BENCH_<name>.json`).
//!
//! EXPERIMENTS.md curves used to live only in prose; a [`BenchRecorder`]
//! turns a run (a Criterion bench, an `rcn classify --bench-json PATH`
//! invocation, or a CI smoke step) into a small JSON trajectory file that
//! later PRs can diff and CI can assert on. One file holds one named
//! recorder with a list of [`BenchRecord`]s; the schema is flat on purpose
//! so `python3 -c "json.load(...)"`-style checks stay one-liners.

use crate::cache::CACHE_FORMAT_VERSION;
use crate::engine::{SearchEngine, SearchStats};
use rcn_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::Path;

/// One measured configuration: identifying name, run metadata (version,
/// cache format, feature toggles), thread counts, wall/busy times, the
/// engine's work/cache counters, and a full metrics snapshot — enough to
/// tell BENCH files from different configurations apart without guessing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// What was measured (e.g. `"classify/team-counter:5/cap=4"`).
    pub name: String,
    /// The `rcn` workspace version that produced the record.
    pub rcn_version: String,
    /// The disk-cache format version in effect
    /// ([`CACHE_FORMAT_VERSION`](crate::CACHE_FORMAT_VERSION)).
    pub cache_format_version: u32,
    /// Search worker threads the run used.
    pub threads: usize,
    /// Intra-analysis worker setting (0 = automatic).
    pub analysis_threads: usize,
    /// Whether incremental level seeding was enabled.
    pub incremental: bool,
    /// The partition-sharding policy (`"auto"`, `"never"`, `"always"`).
    pub sharding: String,
    /// Real elapsed time, in seconds.
    pub wall_seconds: f64,
    /// Summed per-worker busy time, in seconds (≥ wall when workers overlap).
    pub busy_seconds: f64,
    /// Reachability analyses actually computed.
    pub analyses_computed: u64,
    /// Analyses served from the in-memory memo.
    pub cache_hits: u64,
    /// Analyses served from the persistent disk cache.
    pub disk_hits: u64,
    /// Analyses built incrementally from a lower-level prefix.
    pub incremental_hits: u64,
    /// Analyses newly persisted to the disk cache.
    pub disk_entries_written: u64,
    /// Team partitions evaluated.
    pub partitions_tested: u64,
    /// `(initial value, op multiset)` instances visited.
    pub instances_visited: u64,
    /// Whether the run hit a search deadline (numbers are then partial).
    pub timed_out: bool,
    /// The full metrics snapshot at record time (the `engine.*` counters,
    /// plus whatever else the run's tracer registered), so the file is
    /// self-explaining without cross-referencing the flat fields.
    pub metrics: MetricsSnapshot,
}

impl BenchRecord {
    /// Builds a record from an engine's [`SearchStats`] snapshot. Feature
    /// toggles take their defaults; use [`from_engine`](Self::from_engine)
    /// when the engine is at hand.
    pub fn from_stats(name: impl Into<String>, threads: usize, stats: &SearchStats) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            rcn_version: env!("CARGO_PKG_VERSION").to_string(),
            cache_format_version: CACHE_FORMAT_VERSION,
            threads,
            analysis_threads: 0,
            incremental: true,
            sharding: "auto".to_string(),
            wall_seconds: stats.wall_time.as_secs_f64(),
            busy_seconds: stats.busy_time.as_secs_f64(),
            analyses_computed: stats.analyses_computed,
            cache_hits: stats.cache_hits,
            disk_hits: stats.disk_hits,
            incremental_hits: stats.incremental_hits,
            disk_entries_written: stats.disk_entries_written,
            partitions_tested: stats.partitions_tested,
            instances_visited: stats.instances_visited,
            timed_out: stats.timed_out,
            metrics: stats.metrics(),
        }
    }

    /// Builds a record straight from an engine: [`Self::from_stats`]
    /// plus the engine's actual configuration (analysis
    /// threads, incremental seeding, sharding policy) and, when a tracer is
    /// attached, its full metrics registry instead of the stats-only
    /// snapshot.
    pub fn from_engine(name: impl Into<String>, engine: &SearchEngine) -> BenchRecord {
        let mut record = BenchRecord::from_stats(name, engine.threads(), &engine.stats());
        record.analysis_threads = engine.analysis_threads();
        record.incremental = engine.incremental();
        record.sharding = engine.partition_sharding().to_string();
        if let Some(snapshot) = engine.tracer().snapshot() {
            record.metrics = snapshot;
        }
        record
    }

    /// Builds a record from a raw timing (for benches that measure a
    /// function directly rather than through an engine); the counters other
    /// than `analyses_computed` are zero.
    pub fn from_timing(
        name: impl Into<String>,
        threads: usize,
        wall_seconds: f64,
        iterations: u64,
    ) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            rcn_version: env!("CARGO_PKG_VERSION").to_string(),
            cache_format_version: CACHE_FORMAT_VERSION,
            threads,
            analysis_threads: 0,
            incremental: true,
            sharding: "auto".to_string(),
            wall_seconds,
            busy_seconds: wall_seconds,
            analyses_computed: iterations,
            cache_hits: 0,
            disk_hits: 0,
            incremental_hits: 0,
            disk_entries_written: 0,
            partitions_tested: 0,
            instances_visited: 0,
            timed_out: false,
            metrics: MetricsSnapshot::new(),
        }
    }
}

/// Collects [`BenchRecord`]s and writes them as a `BENCH_<name>.json` file.
///
/// # Examples
///
/// ```
/// use rcn_decide::{BenchRecord, BenchRecorder, SearchEngine};
/// use rcn_spec::zoo::TestAndSet;
///
/// let engine = SearchEngine::sequential();
/// engine.classify(&TestAndSet::new(), 3).unwrap();
/// let mut rec = BenchRecorder::new("doctest");
/// rec.record(BenchRecord::from_stats("classify/test-and-set", 1, &engine.stats()));
/// let json = rec.to_json();
/// assert!(json.contains("\"analyses_computed\""));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecorder {
    /// The recorder's name (used for the default file name).
    pub name: String,
    /// The accumulated records, in insertion order.
    pub records: Vec<BenchRecord>,
}

impl BenchRecorder {
    /// Creates an empty recorder.
    pub fn new(name: impl Into<String>) -> BenchRecorder {
        BenchRecorder {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// Appends one record.
    pub fn record(&mut self, record: BenchRecord) {
        self.records.push(record);
    }

    /// The JSON document (pretty-printed; stable key order from the field
    /// declaration order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench records always serialize")
    }

    /// Writes the JSON document to `path`, creating parent directories as
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())?;
        file.write_all(b"\n")
    }

    /// The conventional file name for this recorder: `BENCH_<name>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchEngine;
    use rcn_spec::zoo::TestAndSet;

    #[test]
    fn record_round_trips_through_json() {
        let engine = SearchEngine::sequential();
        engine
            .classify(&TestAndSet::new(), 3)
            .expect("cap in range");
        let mut rec = BenchRecorder::new("roundtrip");
        rec.record(BenchRecord::from_stats(
            "classify/test-and-set",
            1,
            &engine.stats(),
        ));
        let json = rec.to_json();
        let back: BenchRecorder = serde_json::from_str(&json).expect("parse back");
        assert_eq!(back, rec);
        assert_eq!(back.records.len(), 1);
        assert!(back.records[0].analyses_computed > 0);
    }

    #[test]
    fn write_to_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("rcn-bench-test-{}", std::process::id()));
        let path = dir.join("nested").join("BENCH_x.json");
        let mut rec = BenchRecorder::new("x");
        rec.record(BenchRecord::from_timing("t", 1, 0.5, 10));
        rec.write_to(&path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.contains("\"wall_seconds\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_engine_captures_configuration_and_metrics() {
        let engine = SearchEngine::sequential().with_incremental(false);
        engine
            .classify(&TestAndSet::new(), 3)
            .expect("cap in range");
        let record = BenchRecord::from_engine("classify/tas", &engine);
        assert_eq!(record.rcn_version, env!("CARGO_PKG_VERSION"));
        assert_eq!(
            record.cache_format_version,
            crate::cache::CACHE_FORMAT_VERSION
        );
        assert!(!record.incremental);
        assert_eq!(record.sharding, "auto");
        assert_eq!(
            record.metrics.counter("engine.analyses_computed"),
            Some(record.analyses_computed)
        );
        // The metadata survives the JSON round trip.
        let mut rec = BenchRecorder::new("meta");
        rec.record(record);
        let back: BenchRecorder = serde_json::from_str(&rec.to_json()).expect("parse back");
        assert_eq!(back, rec);
    }

    #[test]
    fn file_name_follows_convention() {
        assert_eq!(
            BenchRecorder::new("kernels").file_name(),
            "BENCH_kernels.json"
        );
    }
}
