//! Witness certificates for the *n-discerning* and *n-recording* conditions.
//!
//! Both conditions (§2 of the paper) are existential over the same data: an
//! initial value `u`, a partition of `{p_0,…,p_{n−1}}` into two nonempty
//! teams `T_0`, `T_1`, and an operation `o_i` for each process. A [`Witness`]
//! packages that data; the deciders return one whenever they report success,
//! and [`crate::check_discerning`] / [`crate::check_recording`] re-verify a
//! witness independently of the search (certificates are replayable).

use rcn_spec::{ObjectType, OpId, ValueId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A team label: `T_0` or `T_1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Team {
    /// Team 0.
    T0,
    /// Team 1.
    T1,
}

impl Team {
    /// The other team.
    pub fn other(self) -> Team {
        match self {
            Team::T0 => Team::T1,
            Team::T1 => Team::T0,
        }
    }

    /// 0 or 1.
    pub fn index(self) -> usize {
        match self {
            Team::T0 => 0,
            Team::T1 => 1,
        }
    }

    /// Builds a team from 0 or 1.
    ///
    /// # Panics
    ///
    /// Panics if `i > 1`.
    pub fn from_index(i: usize) -> Team {
        match i {
            0 => Team::T0,
            1 => Team::T1,
            _ => panic!("team index must be 0 or 1, got {i}"),
        }
    }
}

impl fmt::Display for Team {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.index())
    }
}

/// A witness for *n-discerning* / *n-recording*: initial value, team
/// partition, and per-process operations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Witness {
    /// The initial value `u`.
    pub initial: ValueId,
    /// `team_of[i]` is the team of process `p_i`.
    pub team_of: Vec<Team>,
    /// `ops[i]` is the operation `o_i` assigned to process `p_i`.
    pub ops: Vec<OpId>,
}

/// Errors found when validating a [`Witness`] against a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessError {
    /// `team_of` and `ops` have different lengths.
    LengthMismatch,
    /// Fewer than 2 processes.
    TooFewProcesses,
    /// One of the teams is empty.
    EmptyTeam,
    /// The initial value is out of range for the type.
    InitialOutOfRange,
    /// An assigned operation is out of range for the type.
    OpOutOfRange {
        /// The offending process index.
        process: usize,
    },
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::LengthMismatch => write!(f, "team and op vectors differ in length"),
            WitnessError::TooFewProcesses => write!(f, "a witness needs at least 2 processes"),
            WitnessError::EmptyTeam => write!(f, "both teams must be nonempty"),
            WitnessError::InitialOutOfRange => write!(f, "initial value out of range"),
            WitnessError::OpOutOfRange { process } => {
                write!(f, "operation of p{process} out of range")
            }
        }
    }
}

impl std::error::Error for WitnessError {}

impl Witness {
    /// Creates a witness.
    pub fn new(initial: ValueId, team_of: Vec<Team>, ops: Vec<OpId>) -> Self {
        Witness {
            initial,
            team_of,
            ops,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.team_of.len()
    }

    /// The processes on `team`.
    pub fn team_members(&self, team: Team) -> Vec<usize> {
        (0..self.n()).filter(|&i| self.team_of[i] == team).collect()
    }

    /// Validates the witness against a type.
    ///
    /// # Errors
    ///
    /// Returns the first [`WitnessError`] found.
    pub fn validate<T: ObjectType + ?Sized>(&self, ty: &T) -> Result<(), WitnessError> {
        if self.team_of.len() != self.ops.len() {
            return Err(WitnessError::LengthMismatch);
        }
        if self.n() < 2 {
            return Err(WitnessError::TooFewProcesses);
        }
        if self.team_members(Team::T0).is_empty() || self.team_members(Team::T1).is_empty() {
            return Err(WitnessError::EmptyTeam);
        }
        if self.initial.index() >= ty.num_values() {
            return Err(WitnessError::InitialOutOfRange);
        }
        for (i, op) in self.ops.iter().enumerate() {
            if op.index() >= ty.num_ops() {
                return Err(WitnessError::OpOutOfRange { process: i });
            }
        }
        Ok(())
    }

    /// Renders the witness with the type's own value/op names.
    pub fn describe<T: ObjectType + ?Sized>(&self, ty: &T) -> String {
        let team = |t: Team| {
            self.team_members(t)
                .iter()
                .map(|i| format!("p{i}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let ops = self
            .ops
            .iter()
            .enumerate()
            .map(|(i, &op)| format!("o_{i}={}", ty.op_name(op)))
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "u={} T0={{{}}} T1={{{}}} {}",
            ty.value_name(self.initial),
            team(Team::T0),
            team(Team::T1),
            ops
        )
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let teams: Vec<String> = self.team_of.iter().map(ToString::to_string).collect();
        let ops: Vec<String> = self.ops.iter().map(ToString::to_string).collect();
        write!(
            f,
            "u={} teams=[{}] ops=[{}]",
            self.initial,
            teams.join(","),
            ops.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_spec::zoo::TestAndSet;

    fn witness2() -> Witness {
        Witness::new(
            ValueId::new(0),
            vec![Team::T0, Team::T1],
            vec![OpId::new(0), OpId::new(0)],
        )
    }

    #[test]
    fn valid_witness_passes() {
        assert_eq!(witness2().validate(&TestAndSet::new()), Ok(()));
    }

    #[test]
    fn empty_team_is_rejected() {
        let w = Witness::new(
            ValueId::new(0),
            vec![Team::T0, Team::T0],
            vec![OpId::new(0), OpId::new(0)],
        );
        assert_eq!(w.validate(&TestAndSet::new()), Err(WitnessError::EmptyTeam));
    }

    #[test]
    fn out_of_range_parts_are_rejected() {
        let mut w = witness2();
        w.initial = ValueId::new(9);
        assert_eq!(
            w.validate(&TestAndSet::new()),
            Err(WitnessError::InitialOutOfRange)
        );
        let mut w = witness2();
        w.ops[1] = OpId::new(9);
        assert_eq!(
            w.validate(&TestAndSet::new()),
            Err(WitnessError::OpOutOfRange { process: 1 })
        );
    }

    #[test]
    fn too_small_witnesses_are_rejected() {
        let w = Witness::new(ValueId::new(0), vec![Team::T0], vec![OpId::new(0)]);
        assert_eq!(
            w.validate(&TestAndSet::new()),
            Err(WitnessError::TooFewProcesses)
        );
        let w = Witness::new(ValueId::new(0), vec![Team::T0], vec![]);
        assert_eq!(
            w.validate(&TestAndSet::new()),
            Err(WitnessError::LengthMismatch)
        );
    }

    #[test]
    fn team_helpers() {
        assert_eq!(Team::T0.other(), Team::T1);
        assert_eq!(Team::from_index(1), Team::T1);
        let w = witness2();
        assert_eq!(w.team_members(Team::T0), vec![0]);
        assert_eq!(w.team_members(Team::T1), vec![1]);
        assert_eq!(w.n(), 2);
    }

    #[test]
    fn describe_uses_type_names() {
        let text = witness2().describe(&TestAndSet::new());
        assert!(text.contains("u=clear"));
        assert!(text.contains("test&set"));
    }

    #[test]
    fn witness_serializes() {
        let w = witness2();
        let json = serde_json::to_string(&w).unwrap();
        let back: Witness = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }
}
