//! The *n-discerning* condition (Ruppert 2000, as restated in §2 of the
//! paper) and its decision procedure.
//!
//! A deterministic type `T` is *n-discerning* if there exist a value `u`, a
//! partition of the processes into two nonempty teams, and an operation
//! `o_i` per process such that for all `j`, `R_{0,j} ∩ R_{1,j} = ∅`, where
//! `R_{x,j}` is the set of pairs `(r, v)` arising from schedules
//! `σ ∈ S(P)` containing `p_j` whose first process is on team `x`: `r` is
//! the response of `p_j`'s operation and `v` the resulting value of the
//! object.
//!
//! Ruppert proved that a deterministic **readable** type has consensus
//! number ≥ n **iff** it is n-discerning, and that n-discerning is necessary
//! for any deterministic type.

use crate::reach::Analysis;
use crate::search::{op_multisets, partitions};
use crate::witness::{Team, Witness, WitnessError};
use rcn_spec::{ObjectType, ValueId};
use serde::{Deserialize, Serialize};

/// Checks whether a concrete witness establishes that `ty` is
/// `witness.n()`-discerning.
///
/// # Errors
///
/// Returns [`WitnessError`] if the witness is malformed for `ty`.
///
/// # Examples
///
/// ```
/// use rcn_decide::{check_discerning, Team, Witness};
/// use rcn_spec::{zoo::TestAndSet, OpId, ValueId};
///
/// // Test-and-set is 2-discerning: both processes apply test&set from the
/// // clear value; the winner's response (0) betrays who went first.
/// let w = Witness::new(
///     ValueId::new(0),
///     vec![Team::T0, Team::T1],
///     vec![OpId::new(0), OpId::new(0)],
/// );
/// assert_eq!(check_discerning(&TestAndSet::new(), &w), Ok(true));
/// ```
pub fn check_discerning<T: ObjectType + ?Sized>(
    ty: &T,
    witness: &Witness,
) -> Result<bool, WitnessError> {
    witness.validate(ty)?;
    let analysis = Analysis::new(ty, witness.initial, &witness.ops);
    let t0 = witness.team_members(Team::T0);
    let t1 = witness.team_members(Team::T1);
    Ok(pairs_disjoint(&analysis, &t0, &t1))
}

pub(crate) fn pairs_disjoint(analysis: &Analysis, t0: &[usize], t1: &[usize]) -> bool {
    (0..analysis.n()).all(|j| {
        !analysis
            .pair_set(t0, j)
            .intersects(&analysis.pair_set(t1, j))
    })
}

/// Searches exhaustively for an `n`-discerning witness.
///
/// Returns the first witness found (initial values in id order, op
/// assignments in multiset order, partitions with `p_0 ∈ T_0`), or `None`
/// if the type is not `n`-discerning.
///
/// # Panics
///
/// Panics if `n < 2` (the condition requires two nonempty teams).
pub fn find_discerning_witness<T: ObjectType + ?Sized>(ty: &T, n: usize) -> Option<Witness> {
    assert!(n >= 2, "n-discerning requires n >= 2");
    for u in 0..ty.num_values() {
        let u = ValueId(u as u16);
        for ops in op_multisets(ty.num_ops(), n) {
            let analysis = Analysis::new(ty, u, &ops);
            for teams in partitions(n) {
                let t0: Vec<usize> = (0..n).filter(|&i| teams[i] == Team::T0).collect();
                let t1: Vec<usize> = (0..n).filter(|&i| teams[i] == Team::T1).collect();
                if pairs_disjoint(&analysis, &t0, &t1) {
                    return Some(Witness::new(u, teams, ops));
                }
            }
        }
    }
    None
}

/// Returns `true` if `ty` is `n`-discerning.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn is_n_discerning<T: ObjectType + ?Sized>(ty: &T, n: usize) -> bool {
    find_discerning_witness(ty, n).is_some()
}

/// The result of computing a level (discerning number / recording number)
/// by scanning `n = 2, 3, …` up to a cap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelResult {
    /// The largest `n` for which the property holds (1 if it fails at 2 —
    /// level 1 is the trivial single-process level).
    pub level: usize,
    /// `true` if the property still held at the cap, so `level` is only a
    /// lower bound.
    pub capped: bool,
    /// A witness at `level`, when `level ≥ 2`.
    pub witness: Option<Witness>,
}

impl LevelResult {
    /// Renders `level` with a `≥` when capped.
    pub fn display_level(&self) -> String {
        if self.capped {
            format!("≥{}", self.level)
        } else {
            format!("{}", self.level)
        }
    }
}

/// Computes the *discerning number* of `ty`: the largest `n ≤ cap` such
/// that `ty` is `n`-discerning (1 if it is not even 2-discerning).
///
/// Both conditions are monotone in `n` (drop a process from a team of size
/// ≥ 2 and the `R`/`U` sets shrink), so a linear scan from 2 is exact.
///
/// For a deterministic **readable** type the discerning number *is* the
/// consensus number (Ruppert); for other deterministic types it is an upper
/// bound.
///
/// # Panics
///
/// Panics if `cap < 2`.
///
/// # Examples
///
/// ```
/// use rcn_decide::discerning_number;
/// use rcn_spec::zoo::{Register, TestAndSet};
///
/// assert_eq!(discerning_number(&Register::new(2), 4).level, 1);
/// assert_eq!(discerning_number(&TestAndSet::new(), 4).level, 2);
/// ```
pub fn discerning_number<T: ObjectType + ?Sized>(ty: &T, cap: usize) -> LevelResult {
    assert!(cap >= 2, "cap must be at least 2");
    let mut best = LevelResult {
        level: 1,
        capped: false,
        witness: None,
    };
    for n in 2..=cap {
        match find_discerning_witness(ty, n) {
            Some(w) => {
                best = LevelResult {
                    level: n,
                    capped: n == cap,
                    witness: Some(w),
                };
            }
            None => return best,
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_spec::zoo::{
        BoundedQueue, CompareAndSwap, ConsensusObject, FetchAndAdd, Register, StickyBit, Swap,
        TestAndSet,
    };

    #[test]
    fn register_is_not_2_discerning() {
        // Registers have consensus number 1 (FLP-style).
        assert!(!is_n_discerning(&Register::new(2), 2));
        assert!(!is_n_discerning(&Register::new(3), 2));
    }

    #[test]
    fn test_and_set_has_discerning_number_2() {
        let tas = TestAndSet::new();
        assert!(is_n_discerning(&tas, 2));
        assert!(!is_n_discerning(&tas, 3));
        let res = discerning_number(&tas, 5);
        assert_eq!(res.level, 2);
        assert!(!res.capped);
        let w = res.witness.expect("witness at level 2");
        assert_eq!(check_discerning(&tas, &w), Ok(true));
    }

    #[test]
    fn fetch_and_add_has_discerning_number_2() {
        let faa = FetchAndAdd::new(5);
        let res = discerning_number(&faa, 4);
        assert_eq!(res.level, 2);
    }

    #[test]
    fn swap_has_discerning_number_2() {
        let res = discerning_number(&Swap::new(2), 4);
        assert_eq!(res.level, 2);
    }

    #[test]
    fn queue_is_discerning_at_every_level_but_not_readable() {
        // Instructive: with enq-only witnesses the queue's head records the
        // first enqueuer forever, so the queue is n-discerning for every n.
        // This does NOT contradict Herlihy's CN(queue) = 2: the queue is not
        // readable, and for non-readable types n-discerning is necessary but
        // not sufficient — no process can observe the head non-destructively.
        let q = BoundedQueue::new(2, 2);
        assert!(!q.is_readable());
        let res = discerning_number(&q, 4);
        assert!(res.capped);
        assert_eq!(res.level, 4);
    }

    #[test]
    fn cas_and_sticky_bit_hit_the_cap() {
        // Note the domain: over {0,1,2} a first cas(0,1)/cas(0,2) is
        // permanently visible; binary CAS behaves like test-and-set.
        assert!(discerning_number(&CompareAndSwap::new(3), 4).capped);
        let sticky = discerning_number(&StickyBit::new(), 5);
        assert!(sticky.capped);
        assert_eq!(sticky.level, 5);
        assert!(discerning_number(&ConsensusObject::new(), 4).capped);
    }

    #[test]
    fn witnesses_replay() {
        for n in 2..5 {
            let w = find_discerning_witness(&StickyBit::new(), n).expect("sticky bit witness");
            assert_eq!(check_discerning(&StickyBit::new(), &w), Ok(true), "n={n}");
        }
    }

    #[test]
    fn malformed_witness_is_an_error() {
        let w = Witness::new(ValueId::new(9), vec![Team::T0, Team::T1], vec![]);
        assert!(check_discerning(&TestAndSet::new(), &w).is_err());
    }

    #[test]
    fn level_result_display() {
        let r = LevelResult {
            level: 4,
            capped: true,
            witness: None,
        };
        assert_eq!(r.display_level(), "≥4");
        let r = LevelResult {
            level: 2,
            capped: false,
            witness: None,
        };
        assert_eq!(r.display_level(), "2");
    }
}
