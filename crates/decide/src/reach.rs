//! Reachability analysis over `S(P)` schedule applications.
//!
//! The *n-discerning* and *n-recording* conditions quantify over all
//! schedules in `S(P)` (each process applies its assigned operation at most
//! once). Enumerating schedules is factorial; instead we explore the graph
//! whose nodes are `(set of processes that have applied, object value)` —
//! polynomial in `2^n · |values|` — which carries exactly the information
//! the conditions need:
//!
//! * `U_x` (recording): the values of all nodes reachable when the first
//!   applier is on team `x`;
//! * `R_{x,j}` (discerning): the pairs `(response p_j received, any value
//!   reachable after p_j applied)` over the same first-team restriction.
//!
//! The analysis is computed once per `(initial value, op assignment)`; team
//! partitions are then evaluated by cheap bitset unions, which is what makes
//! the exhaustive witness search feasible.
//!
//! Three implementations share the same pipeline and must stay bit-identical
//! (the differential suite pins this):
//!
//! * [`Analysis::new`] / [`Analysis::with_threads`] — the kernelized path:
//!   `ObjectType::apply` is hoisted out of the hot loops into per-(process,
//!   value) transition tables, and `(response, value)`-pair accumulation
//!   uses whole-word shifted ORs ([`BitSet::union_shifted_with`]) instead of
//!   bit-at-a-time inserts. With `threads > 1` the mask-order propagation is
//!   sharded into popcount waves (masks of equal popcount are independent;
//!   OR-accumulation is commutative), so the result does not depend on the
//!   thread count.
//! * [`Analysis::extend`] — the incremental path: a level-`n+1` instance
//!   whose op multiset extends a level-`n` instance reuses the prefix's
//!   `firsts` labels (the level-`n` node lattice embeds as the masks without
//!   the new process's bit, and its internal propagation is already a fixed
//!   point), so only edges involving the new process are propagated.
//! * [`Analysis::new_scalar`] — the original bit-at-a-time reference,
//!   kept as the differential/benchmark baseline.

use crate::bitset::BitSet;
use rcn_spec::{ObjectType, OpId, ValueId};
use serde::{Deserialize, Serialize};

/// Maximum number of processes the analysis supports (masks are `u32`).
pub const MAX_PROCESSES: usize = 20;

/// Reachability analysis of one `(u, ops)` instance.
///
/// # Examples
///
/// ```
/// use rcn_decide::Analysis;
/// use rcn_spec::{zoo::TestAndSet, OpId, ValueId};
///
/// let tas = TestAndSet::new();
/// // Two processes, both assigned test&set, from the clear value.
/// let a = Analysis::new(&tas, ValueId::new(0), &[OpId::new(0), OpId::new(0)]);
/// // Whoever goes first, the value ends up "set": the value sets intersect,
/// // which is exactly why test-and-set is not 2-recording.
/// let u0 = a.value_set(&[0]);
/// let u1 = a.value_set(&[1]);
/// assert!(u0.intersects(&u1));
/// ```
///
/// Analyses serialize (for the persistent analysis cache); a deserialized
/// analysis must pass [`shape_matches`](Self::shape_matches) before the
/// deciders may trust it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Analysis {
    n: usize,
    num_values: usize,
    num_responses: usize,
    /// `firsts[mask * num_values + v]`: bitmask of processes `f` such that
    /// the node `(mask, v)` is reachable via a schedule starting with `p_f`
    /// (0 = unreachable). Persisted so a cached level-`n` analysis can seed
    /// [`extend`](Self::extend) for level `n + 1`.
    firsts: Vec<u32>,
    /// `value_sets[f]`: values reachable over schedules whose first process
    /// is `p_f` (the per-first building block of the `U_x` sets).
    value_sets: Vec<BitSet>,
    /// `pair_sets[f * n + j]`: `(response, value)` pairs of `p_j` over
    /// schedules whose first process is `p_f` and that contain `p_j` (the
    /// per-first building block of the `R_{x,j}` sets).
    pair_sets: Vec<BitSet>,
}

/// Precomputed per-(process, value) transitions of one instance. The hot
/// propagation loops index these instead of calling `ObjectType::apply`
/// `O(2^n · |values| · n)` times — the apply of a computed (non-tabular)
/// type is far more expensive than an array load. Pure data, so the
/// parallel waves need no `Sync` bound on the type itself.
struct Tables {
    n: usize,
    num_values: usize,
    num_responses: usize,
    /// `step[j * num_values + v]` = (response index, next-value index) of
    /// process `j`'s op applied at value `v`.
    step: Vec<(usize, usize)>,
    /// `root[j]` = (response, next) of process `j`'s op applied at the
    /// initial value.
    root: Vec<(usize, usize)>,
}

impl Tables {
    fn new<T: ObjectType + ?Sized>(ty: &T, u: ValueId, ops: &[OpId]) -> Tables {
        let n = ops.len();
        assert!(
            n <= MAX_PROCESSES,
            "analysis supports at most {MAX_PROCESSES} processes"
        );
        let num_values = ty.num_values();
        let num_responses = ty.num_responses();
        assert!(u.index() < num_values, "initial value out of range");
        for op in ops {
            assert!(op.index() < ty.num_ops(), "op out of range");
        }
        let mut step = Vec::with_capacity(n * num_values);
        for &op in ops {
            for v in 0..num_values {
                let out = ty.apply(ValueId(v as u16), op);
                step.push((out.response.index(), out.next.index()));
            }
        }
        let root = ops
            .iter()
            .map(|&op| {
                let out = ty.apply(u, op);
                (out.response.index(), out.next.index())
            })
            .collect();
        Tables {
            n,
            num_values,
            num_responses,
            step,
            root,
        }
    }

    fn node(&self, mask: u32, v: usize) -> usize {
        mask as usize * self.num_values + v
    }

    fn num_nodes(&self) -> usize {
        (1usize << self.n) * self.num_values
    }
}

/// Groups the masks `0..2^n` by popcount. Edges of the node graph go from
/// popcount `k` to `k + 1`, so masks within one group are independent — the
/// unit of parallelism for the wave-sharded propagation.
fn masks_by_popcount(n: usize) -> Vec<Vec<u32>> {
    let mut waves = vec![Vec::new(); n + 1];
    for mask in 0u32..(1 << n) {
        waves[mask.count_ones() as usize].push(mask);
    }
    waves
}

/// Sequential `firsts` propagation in increasing mask order (masks only
/// grow along edges, so numeric order is topological).
fn firsts_from_scratch(t: &Tables) -> Vec<u32> {
    let nv = t.num_values;
    let mut firsts = vec![0u32; t.num_nodes()];
    for (f, &(_, next)) in t.root.iter().enumerate() {
        firsts[t.node(1 << f, next)] |= 1 << f;
    }
    for mask in 1u32..(1 << t.n) {
        for v in 0..nv {
            let label = firsts[t.node(mask, v)];
            if label == 0 {
                continue;
            }
            for j in 0..t.n {
                if mask & (1 << j) != 0 {
                    continue;
                }
                let (_, next) = t.step[j * nv + v];
                firsts[t.node(mask | (1 << j), next)] |= label;
            }
        }
    }
    firsts
}

/// `firsts` propagation seeded from a level-`(n-1)` prefix. The prefix's
/// lattice is exactly the masks without bit `n - 1`; its labels are a fixed
/// point of the propagation restricted to those masks, so they are copied
/// wholesale and only edges involving the new process are walked.
fn firsts_extended(t: &Tables, prefix_firsts: &[u32]) -> Vec<u32> {
    let n = t.n;
    let m = n - 1;
    let nv = t.num_values;
    let mut firsts = vec![0u32; t.num_nodes()];
    firsts[..(1usize << m) * nv].copy_from_slice(prefix_firsts);
    let (_, next) = t.root[m];
    firsts[t.node(1 << m, next)] |= 1 << m;
    for mask in 1u32..(1 << n) {
        let lower = mask & (1 << m) == 0;
        for v in 0..nv {
            let label = firsts[t.node(mask, v)];
            if label == 0 {
                continue;
            }
            if lower {
                // Edges inside the prefix lattice are already folded into
                // the copied labels; only the new process's edge is new.
                let (_, next) = t.step[m * nv + v];
                firsts[t.node(mask | (1 << m), next)] |= label;
            } else {
                for j in 0..n {
                    if mask & (1 << j) != 0 {
                        continue;
                    }
                    let (_, next) = t.step[j * nv + v];
                    firsts[t.node(mask | (1 << j), next)] |= label;
                }
            }
        }
    }
    firsts
}

/// Wave-parallel `firsts` propagation: one popcount level at a time, all
/// masks of the level strided across workers, labels OR-ed with atomics.
/// `fetch_or` is commutative, so the final labels equal the sequential
/// ones regardless of scheduling; the scope join is the per-wave barrier.
fn firsts_parallel(t: &Tables, threads: usize) -> Vec<u32> {
    use std::sync::atomic::{AtomicU32, Ordering};
    let nv = t.num_values;
    let firsts: Vec<AtomicU32> = (0..t.num_nodes()).map(|_| AtomicU32::new(0)).collect();
    for (f, &(_, next)) in t.root.iter().enumerate() {
        firsts[t.node(1 << f, next)].fetch_or(1 << f, Ordering::Relaxed);
    }
    let waves = masks_by_popcount(t.n);
    for wave in &waves[1..t.n] {
        std::thread::scope(|s| {
            for w in 0..threads {
                let firsts = &firsts;
                s.spawn(move || {
                    for &mask in wave.iter().skip(w).step_by(threads) {
                        for v in 0..nv {
                            let label = firsts[t.node(mask, v)].load(Ordering::Relaxed);
                            if label == 0 {
                                continue;
                            }
                            for j in 0..t.n {
                                if mask & (1 << j) != 0 {
                                    continue;
                                }
                                let (_, next) = t.step[j * nv + v];
                                firsts[t.node(mask | (1 << j), next)]
                                    .fetch_or(label, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
    }
    firsts.into_iter().map(AtomicU32::into_inner).collect()
}

/// The downstream value set of one node: its own value plus the downstream
/// sets of its children (which the caller has already computed — decreasing
/// mask order, or a completed higher-popcount wave).
fn downstream_of(t: &Tables, downstream: &[Option<BitSet>], mask: u32, v: usize) -> BitSet {
    let nv = t.num_values;
    let mut set = BitSet::new(nv);
    set.insert(v);
    for j in 0..t.n {
        if mask & (1 << j) != 0 {
            continue;
        }
        let (_, next) = t.step[j * nv + v];
        if let Some(ds) = &downstream[t.node(mask | (1 << j), next)] {
            set.union_with(ds);
        }
    }
    set
}

/// Sequential downstream pass in decreasing mask order (reverse topological).
fn downstream_from(t: &Tables, firsts: &[u32]) -> Vec<Option<BitSet>> {
    let mut downstream: Vec<Option<BitSet>> = vec![None; t.num_nodes()];
    for mask in (1u32..(1 << t.n)).rev() {
        for v in 0..t.num_values {
            let id = t.node(mask, v);
            if firsts[id] == 0 {
                continue;
            }
            let set = downstream_of(t, &downstream, mask, v);
            downstream[id] = Some(set);
        }
    }
    downstream
}

/// Wave-parallel downstream pass, from the highest popcount down. Workers
/// only read completed waves; each wave's results are joined and written
/// back single-threaded, so every node is written exactly once.
fn downstream_parallel(t: &Tables, firsts: &[u32], threads: usize) -> Vec<Option<BitSet>> {
    let mut downstream: Vec<Option<BitSet>> = vec![None; t.num_nodes()];
    let waves = masks_by_popcount(t.n);
    for k in (1..=t.n).rev() {
        let wave = &waves[k];
        let computed: Vec<Vec<(usize, BitSet)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let downstream = &downstream;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for &mask in wave.iter().skip(w).step_by(threads) {
                            for v in 0..t.num_values {
                                let id = t.node(mask, v);
                                if firsts[id] == 0 {
                                    continue;
                                }
                                out.push((id, downstream_of(t, downstream, mask, v)));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("downstream worker panicked"))
                .collect()
        });
        for chunk in computed {
            for (id, set) in chunk {
                downstream[id] = Some(set);
            }
        }
    }
    downstream
}

/// Accumulates the per-first value/pair sets contributed by `masks`. The
/// pair kernel: a node's downstream value set, shifted by
/// `response * num_values`, is exactly the block of `(response, value)`
/// pairs process `j` contributes — one whole-word OR per (node, j, first)
/// instead of one insert per pair.
fn accumulate_masks<I: Iterator<Item = u32>>(
    t: &Tables,
    firsts: &[u32],
    downstream: &[Option<BitSet>],
    masks: I,
) -> (Vec<BitSet>, Vec<BitSet>) {
    let n = t.n;
    let nv = t.num_values;
    let mut value_sets = vec![BitSet::new(nv); n];
    let mut pair_sets = vec![BitSet::new(t.num_responses * nv); n * n];
    for mask in masks {
        for v in 0..nv {
            let label = firsts[t.node(mask, v)];
            if label == 0 {
                continue;
            }
            // Values of this node belong to U_f for every first f.
            let mut l = label;
            while l != 0 {
                let f = l.trailing_zeros() as usize;
                l &= l - 1;
                value_sets[f].insert(v);
            }
            // Pairs contributed by each process j applying here.
            for j in 0..n {
                if mask & (1 << j) != 0 {
                    continue;
                }
                let (resp, next) = t.step[j * nv + v];
                let Some(ds) = &downstream[t.node(mask | (1 << j), next)] else {
                    continue;
                };
                let shift = resp * nv;
                let mut l = label;
                while l != 0 {
                    let f = l.trailing_zeros() as usize;
                    l &= l - 1;
                    pair_sets[f * n + j].union_shifted_with(ds, shift);
                }
            }
        }
    }
    (value_sets, pair_sets)
}

/// Parallel accumulation: masks strided across workers into private sets,
/// merged by plain unions (commutative, so thread count cannot change the
/// result).
fn accumulate_parallel(
    t: &Tables,
    firsts: &[u32],
    downstream: &[Option<BitSet>],
    threads: usize,
) -> (Vec<BitSet>, Vec<BitSet>) {
    let parts: Vec<(Vec<BitSet>, Vec<BitSet>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                s.spawn(move || {
                    let masks = (1u32..(1 << t.n)).skip(w).step_by(threads);
                    accumulate_masks(t, firsts, downstream, masks)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("accumulate worker panicked"))
            .collect()
    });
    let mut parts = parts.into_iter();
    let (mut value_sets, mut pair_sets) = parts.next().expect("at least one worker");
    for (vs, ps) in parts {
        for (a, b) in value_sets.iter_mut().zip(&vs) {
            a.union_with(b);
        }
        for (a, b) in pair_sets.iter_mut().zip(&ps) {
            a.union_with(b);
        }
    }
    (value_sets, pair_sets)
}

/// The first application itself: p_f's own pair from the virtual root.
fn accumulate_root(t: &Tables, downstream: &[Option<BitSet>], pair_sets: &mut [BitSet]) {
    for (f, &(resp, next)) in t.root.iter().enumerate() {
        if let Some(ds) = &downstream[t.node(1 << f, next)] {
            pair_sets[f * t.n + f].union_shifted_with(ds, resp * t.num_values);
        }
    }
}

/// Runs the downstream + accumulation phases over precomputed `firsts` and
/// assembles the result.
fn build(t: &Tables, firsts: Vec<u32>, threads: usize) -> Analysis {
    let (downstream, (value_sets, mut pair_sets)) = if threads <= 1 {
        let downstream = downstream_from(t, &firsts);
        let sets = accumulate_masks(t, &firsts, &downstream, 1u32..(1 << t.n));
        (downstream, sets)
    } else {
        let downstream = downstream_parallel(t, &firsts, threads);
        let sets = accumulate_parallel(t, &firsts, &downstream, threads);
        (downstream, sets)
    };
    accumulate_root(t, &downstream, &mut pair_sets);
    Analysis {
        n: t.n,
        num_values: t.num_values,
        num_responses: t.num_responses,
        firsts,
        value_sets,
        pair_sets,
    }
}

impl Analysis {
    /// Analyzes applying `ops[i]` (for process `p_i`) in every `S(P)` order
    /// starting from value `u`.
    ///
    /// # Panics
    ///
    /// Panics if `ops.len() > MAX_PROCESSES`, or if `u` / any op is out of
    /// range for the type.
    pub fn new<T: ObjectType + ?Sized>(ty: &T, u: ValueId, ops: &[OpId]) -> Analysis {
        Self::with_threads(ty, u, ops, 1)
    }

    /// Like [`new`](Self::new), with the mask-order propagation sharded
    /// across `threads` workers in popcount waves. Bit-identical to the
    /// sequential result at every thread count (pinned by the differential
    /// suite); `threads <= 1` takes the sequential path exactly.
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new).
    pub fn with_threads<T: ObjectType + ?Sized>(
        ty: &T,
        u: ValueId,
        ops: &[OpId],
        threads: usize,
    ) -> Analysis {
        let t = Tables::new(ty, u, ops);
        // Degenerate lattices (fewer than two processes) have nothing to
        // shard; clamp to the sequential path.
        let threads = if t.n < 2 { 1 } else { threads.max(1) };
        let firsts = if threads > 1 {
            firsts_parallel(&t, threads)
        } else {
            firsts_from_scratch(&t)
        };
        build(&t, firsts, threads)
    }

    /// Analyzes `(u, ops)` by extending `prefix`, the analysis of the same
    /// initial value and the op multiset `ops[..ops.len() - 1]`. Reuses the
    /// prefix's reachability labels, skipping re-propagation inside the
    /// already-solved sub-lattice; bit-identical to a from-scratch
    /// [`new`](Self::new). `threads` shards the remaining passes as in
    /// [`with_threads`](Self::with_threads).
    ///
    /// The caller is responsible for the prefix actually being the analysis
    /// of `(u, ops[..ops.len() - 1])` on `ty` — the engine's analysis store
    /// guarantees this by keying memoized analyses on exactly that pair.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is not exactly one process longer than the prefix or
    /// the type's dimensions disagree with the prefix's; in debug builds,
    /// also if the prefix's seed labels are inconsistent with `(u, ops)`.
    pub fn extend<T: ObjectType + ?Sized>(
        ty: &T,
        u: ValueId,
        prefix: &Analysis,
        ops: &[OpId],
        threads: usize,
    ) -> Analysis {
        let t = Tables::new(ty, u, ops);
        assert_eq!(
            ops.len(),
            prefix.n + 1,
            "extend requires exactly one more process than the prefix"
        );
        assert_eq!(
            prefix.num_values, t.num_values,
            "prefix value count disagrees with the type"
        );
        assert_eq!(
            prefix.num_responses, t.num_responses,
            "prefix response count disagrees with the type"
        );
        debug_assert!(
            t.root[..prefix.n]
                .iter()
                .enumerate()
                .all(|(f, &(_, next))| prefix.firsts[t.node(1 << f, next)] & (1 << f) != 0),
            "prefix analysis is not an analysis of (u, ops[..n-1])"
        );
        let firsts = firsts_extended(&t, &prefix.firsts);
        let threads = if t.n < 2 { 1 } else { threads.max(1) };
        build(&t, firsts, threads)
    }

    /// The original bit-at-a-time implementation, kept verbatim as the
    /// reference the kernelized/parallel/incremental paths are measured and
    /// differentially tested against. Produces a bit-identical [`Analysis`].
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new).
    pub fn new_scalar<T: ObjectType + ?Sized>(ty: &T, u: ValueId, ops: &[OpId]) -> Analysis {
        let n = ops.len();
        assert!(
            n <= MAX_PROCESSES,
            "analysis supports at most {MAX_PROCESSES} processes"
        );
        let num_values = ty.num_values();
        let num_responses = ty.num_responses();
        assert!(u.index() < num_values, "initial value out of range");
        for op in ops {
            assert!(op.index() < ty.num_ops(), "op out of range");
        }

        let num_nodes = (1usize << n) * num_values;
        let node = |mask: u32, v: usize| (mask as usize) * num_values + v;

        // firsts[node]: bitmask of processes f such that the node is
        // reachable via a schedule starting with p_f. 0 = unreachable.
        let mut firsts = vec![0u32; num_nodes];
        for (f, &op) in ops.iter().enumerate() {
            let out = ty.apply(u, op);
            firsts[node(1 << f, out.next.index())] |= 1 << f;
        }
        // Propagate in increasing mask order (masks only grow along edges).
        for mask in 1u32..(1 << n) {
            for v in 0..num_values {
                let label = firsts[node(mask, v)];
                if label == 0 {
                    continue;
                }
                for (j, &op) in ops.iter().enumerate() {
                    if mask & (1 << j) != 0 {
                        continue;
                    }
                    let out = ty.apply(ValueId(v as u16), op);
                    firsts[node(mask | (1 << j), out.next.index())] |= label;
                }
            }
        }

        // downstream[node]: values reachable from the node (including its
        // own value), computed in decreasing mask order (reverse topological).
        let mut downstream: Vec<Option<BitSet>> = vec![None; num_nodes];
        for mask in (1u32..(1 << n)).rev() {
            for v in 0..num_values {
                let id = node(mask, v);
                if firsts[id] == 0 {
                    continue;
                }
                let mut set = BitSet::new(num_values);
                set.insert(v);
                for (j, &op) in ops.iter().enumerate() {
                    if mask & (1 << j) != 0 {
                        continue;
                    }
                    let out = ty.apply(ValueId(v as u16), op);
                    let child = node(mask | (1 << j), out.next.index());
                    if let Some(ds) = &downstream[child] {
                        set.union_with(ds);
                    }
                }
                downstream[id] = Some(set);
            }
        }

        let mut value_sets = vec![BitSet::new(num_values); n];
        let mut pair_sets = vec![BitSet::new(num_responses * num_values); n * n];

        // The first application itself: p_f's own pair from the virtual root.
        for (f, &op) in ops.iter().enumerate() {
            let out = ty.apply(u, op);
            let start = node(1 << f, out.next.index());
            if let Some(ds) = &downstream[start] {
                for v in ds.iter() {
                    pair_sets[f * n + f].insert(out.response.index() * num_values + v);
                }
            }
        }

        for mask in 1u32..(1 << n) {
            for v in 0..num_values {
                let id = node(mask, v);
                let label = firsts[id];
                if label == 0 {
                    continue;
                }
                // Values of this node belong to U_f for every first f.
                for (f, set) in value_sets.iter_mut().enumerate() {
                    if label & (1 << f) != 0 {
                        set.insert(v);
                    }
                }
                // Pairs contributed by each process j applying here.
                for (j, &op) in ops.iter().enumerate() {
                    if mask & (1 << j) != 0 {
                        continue;
                    }
                    let out = ty.apply(ValueId(v as u16), op);
                    let child = node(mask | (1 << j), out.next.index());
                    let Some(ds) = &downstream[child] else {
                        continue;
                    };
                    for f in 0..n {
                        if label & (1 << f) == 0 {
                            continue;
                        }
                        let set = &mut pair_sets[f * n + j];
                        for v2 in ds.iter() {
                            set.insert(out.response.index() * num_values + v2);
                        }
                    }
                }
            }
        }

        Analysis {
            n,
            num_values,
            num_responses,
            firsts,
            value_sets,
            pair_sets,
        }
    }

    /// Number of processes in the analyzed assignment.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Checks that this analysis has exactly the shape an analysis of an
    /// `n`-process instance of a type with `num_values` values and
    /// `num_responses` responses must have — dimensions, set counts, bitset
    /// well-formedness, and reachability-label sanity (every `firsts` label
    /// is a subset of the `n` process bits, and the empty-mask row is
    /// unreachable). Used to validate analyses loaded from the on-disk
    /// cache before the deciders trust them; always true for analyses built
    /// by [`Analysis::new`].
    pub fn shape_matches(&self, n: usize, num_values: usize, num_responses: usize) -> bool {
        self.n == n
            && (1..=MAX_PROCESSES).contains(&n)
            && self.num_values == num_values
            && self.num_responses == num_responses
            && self.firsts.len() == (1usize << n) * num_values
            && self.firsts.iter().all(|&l| u64::from(l) < (1u64 << n))
            && self.firsts[..num_values].iter().all(|&l| l == 0)
            && self.value_sets.len() == n
            && self
                .value_sets
                .iter()
                .all(|s| s.capacity() == num_values && s.is_well_formed())
            && self.pair_sets.len() == n * n
            && self
                .pair_sets
                .iter()
                .all(|s| s.capacity() == num_responses * num_values && s.is_well_formed())
    }

    /// The `U`-style value set for a team: all values reachable over
    /// nonempty schedules whose first process is a member of `team`.
    pub fn value_set(&self, team: &[usize]) -> BitSet {
        let mut out = BitSet::new(self.num_values);
        for &f in team {
            out.union_with(&self.value_sets[f]);
        }
        out
    }

    /// The `R_{x,j}`-style pair set: `(response, value)` pairs of `p_j` over
    /// schedules containing `p_j` whose first process is in `team`.
    pub fn pair_set(&self, team: &[usize], j: usize) -> BitSet {
        // Capacity is the pair-universe size, not something to infer from an
        // arbitrary stored set (indexing `pair_sets[j]` happened to alias
        // `pair_sets[0 * n + j]`, which has the right capacity only because
        // all rows share it).
        let mut out = BitSet::new(self.num_responses * self.num_values);
        for &f in team {
            out.union_with(&self.pair_sets[f * self.n + j]);
        }
        out
    }

    /// Per-first value set (building block of [`value_set`](Self::value_set)).
    pub fn value_set_of_first(&self, f: usize) -> &BitSet {
        &self.value_sets[f]
    }

    /// Per-first pair set (building block of [`pair_set`](Self::pair_set)).
    pub fn pair_set_of_first(&self, f: usize, j: usize) -> &BitSet {
        &self.pair_sets[f * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::{s_p_first_in, ProcessId};
    use rcn_spec::apply_all;
    use rcn_spec::zoo::{Register, TeamCounter, TestAndSet, Tnn};
    use std::collections::HashSet;

    /// Brute-force U_x by enumerating S(P) schedules directly.
    fn brute_value_set<T: ObjectType>(
        ty: &T,
        u: ValueId,
        ops: &[OpId],
        team: &[usize],
    ) -> HashSet<usize> {
        let procs: Vec<ProcessId> = (0..ops.len()).map(|i| ProcessId(i as u16)).collect();
        let first: Vec<ProcessId> = team.iter().map(|&i| ProcessId(i as u16)).collect();
        let mut out = HashSet::new();
        for sched in s_p_first_in(&procs, &first) {
            let seq: Vec<OpId> = sched
                .iter()
                .map(|e| ops[e.process().expect("S(P′) schedules are step-only").index()])
                .collect();
            let (_, v) = apply_all(ty, u, &seq);
            out.insert(v.index());
        }
        out
    }

    /// Brute-force R_{x,j} by enumerating S(P) schedules directly.
    fn brute_pair_set<T: ObjectType>(
        ty: &T,
        u: ValueId,
        ops: &[OpId],
        team: &[usize],
        j: usize,
    ) -> HashSet<(usize, usize)> {
        let procs: Vec<ProcessId> = (0..ops.len()).map(|i| ProcessId(i as u16)).collect();
        let first: Vec<ProcessId> = team.iter().map(|&i| ProcessId(i as u16)).collect();
        let mut out = HashSet::new();
        for sched in s_p_first_in(&procs, &first) {
            if !sched.contains_process(ProcessId(j as u16)) {
                continue;
            }
            let seq: Vec<OpId> = sched
                .iter()
                .map(|e| ops[e.process().expect("S(P′) schedules are step-only").index()])
                .collect();
            let (outs, v) = apply_all(ty, u, &seq);
            let pos = sched
                .iter()
                .position(|e| e.process().map(ProcessId::index) == Some(j))
                .expect("j in schedule");
            out.insert((outs[pos].response.index(), v.index()));
        }
        out
    }

    fn check_against_brute<T: ObjectType>(ty: &T, u: ValueId, ops: &[OpId]) {
        let n = ops.len();
        let a = Analysis::new(ty, u, ops);
        // Check every singleton team (unions are trivially correct).
        for f in 0..n {
            let fast: HashSet<usize> = a.value_set(&[f]).iter().collect();
            let brute = brute_value_set(ty, u, ops, &[f]);
            assert_eq!(fast, brute, "U set mismatch, first={f}");
            for j in 0..n {
                let fast: HashSet<(usize, usize)> = a
                    .pair_set(&[f], j)
                    .iter()
                    .map(|i| (i / ty.num_values(), i % ty.num_values()))
                    .collect();
                let brute = brute_pair_set(ty, u, ops, &[f], j);
                assert_eq!(fast, brute, "R set mismatch, first={f}, j={j}");
            }
        }
    }

    /// All construction paths must agree bit-for-bit with the scalar
    /// reference: kernelized, wave-parallel at several thread counts, and
    /// the incremental extension of the one-shorter prefix.
    fn check_paths_agree<T: ObjectType>(ty: &T, u: ValueId, ops: &[OpId]) {
        let reference = Analysis::new_scalar(ty, u, ops);
        assert_eq!(Analysis::new(ty, u, ops), reference, "kernelized");
        for threads in [2, 3, 5] {
            assert_eq!(
                Analysis::with_threads(ty, u, ops, threads),
                reference,
                "parallel, {threads} threads"
            );
        }
        if ops.len() >= 2 {
            let prefix = Analysis::new(ty, u, &ops[..ops.len() - 1]);
            assert_eq!(
                Analysis::extend(ty, u, &prefix, ops, 1),
                reference,
                "incremental"
            );
            assert_eq!(
                Analysis::extend(ty, u, &prefix, ops, 3),
                reference,
                "incremental, parallel"
            );
        }
    }

    #[test]
    fn matches_brute_force_on_test_and_set() {
        let tas = TestAndSet::new();
        let ops = vec![OpId::new(0); 3];
        check_against_brute(&tas, ValueId::new(0), &ops);
        let mixed = vec![OpId::new(0), OpId::new(1), OpId::new(0)];
        check_against_brute(&tas, ValueId::new(0), &mixed);
    }

    #[test]
    fn matches_brute_force_on_register() {
        let reg = Register::new(2);
        // write(0), write(1), read
        let ops = vec![OpId::new(0), OpId::new(1), OpId::new(2)];
        check_against_brute(&reg, ValueId::new(0), &ops);
        check_against_brute(&reg, ValueId::new(1), &ops);
    }

    #[test]
    fn matches_brute_force_on_tnn() {
        let t = Tnn::new(4, 2);
        let ops = vec![t.op_x(0), t.op_x(1), t.op_r(), t.op_x(1)];
        check_against_brute(&t, t.s(), &ops);
        check_against_brute(&t, t.s_xi(0, 2), &ops);
    }

    #[test]
    fn construction_paths_agree_on_mixed_instances() {
        let tas = TestAndSet::new();
        check_paths_agree(&tas, ValueId::new(0), &[OpId::new(0); 4]);
        check_paths_agree(
            &tas,
            ValueId::new(0),
            &[OpId::new(0), OpId::new(1), OpId::new(0)],
        );

        let reg = Register::new(2);
        check_paths_agree(
            &reg,
            ValueId::new(1),
            &[OpId::new(0), OpId::new(1), OpId::new(2)],
        );

        let t = Tnn::new(4, 2);
        check_paths_agree(&t, t.s(), &[t.op_x(0), t.op_x(1), t.op_r(), t.op_x(1)]);

        let tc = TeamCounter::new(5);
        let inc = OpId::new(0);
        check_paths_agree(&tc, ValueId::new(0), &[inc; 5]);
    }

    #[test]
    fn extend_chains_from_two_processes_up() {
        // Build 2 -> 3 -> 4 by repeated extension and compare each level
        // against from-scratch construction.
        let t = Tnn::new(4, 2);
        let ops = [t.op_x(0), t.op_x(1), t.op_r(), t.op_x(1)];
        let mut prefix = Analysis::new(&t, t.s(), &ops[..2]);
        for m in 3..=ops.len() {
            let extended = Analysis::extend(&t, t.s(), &prefix, &ops[..m], 1);
            assert_eq!(extended, Analysis::new(&t, t.s(), &ops[..m]), "level {m}");
            prefix = extended;
        }
    }

    #[test]
    #[should_panic(expected = "one more process")]
    fn extend_rejects_wrong_arity() {
        let tas = TestAndSet::new();
        let prefix = Analysis::new(&tas, ValueId::new(0), &[OpId::new(0); 2]);
        let _ = Analysis::extend(&tas, ValueId::new(0), &prefix, &[OpId::new(0); 4], 1);
    }

    #[test]
    fn shape_matches_validates_firsts() {
        let tas = TestAndSet::new();
        let a = Analysis::new(&tas, ValueId::new(0), &[OpId::new(0); 2]);
        assert!(a.shape_matches(2, 2, 2));

        let mut wrong_len = a.clone();
        wrong_len.firsts.pop();
        assert!(!wrong_len.shape_matches(2, 2, 2));

        let mut stray_bit = a.clone();
        stray_bit.firsts[2] = 1 << 5; // label names a process that doesn't exist
        assert!(!stray_bit.shape_matches(2, 2, 2));

        let mut rooted = a.clone();
        rooted.firsts[0] = 1; // empty mask must stay unreachable
        assert!(!rooted.shape_matches(2, 2, 2));
    }

    #[test]
    fn tnn_value_sets_record_first_team() {
        // With op_0 and op_1 assigned by team, the value after any schedule
        // records the first mover's team (below the s_⊥ collapse).
        let t = Tnn::new(5, 2);
        let ops = vec![t.op_x(0), t.op_x(0), t.op_x(1), t.op_x(1)];
        let a = Analysis::new(&t, t.s(), &ops);
        let u0 = a.value_set(&[0, 1]);
        let u1 = a.value_set(&[2, 3]);
        // Only 4 processes < n = 5: never reaches s_⊥, so the sets are
        // disjoint — T_{5,2} is 4-recording for this witness.
        assert!(!u0.intersects(&u1));
    }

    #[test]
    fn pair_sets_include_first_own_application() {
        let tas = TestAndSet::new();
        let a = Analysis::new(&tas, ValueId::new(0), &[OpId::new(0), OpId::new(0)]);
        // p0 first: p0's own pair has response 0 (it won).
        let r00 = a.pair_set(&[0], 0);
        assert!(!r00.is_empty());
        let pairs: Vec<(usize, usize)> = r00.iter().map(|i| (i / 2, i % 2)).collect();
        assert!(
            pairs.iter().all(|&(r, _)| r == 0),
            "winner sees 0: {pairs:?}"
        );
    }
}
