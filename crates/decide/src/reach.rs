//! Reachability analysis over `S(P)` schedule applications.
//!
//! The *n-discerning* and *n-recording* conditions quantify over all
//! schedules in `S(P)` (each process applies its assigned operation at most
//! once). Enumerating schedules is factorial; instead we explore the graph
//! whose nodes are `(set of processes that have applied, object value)` —
//! polynomial in `2^n · |values|` — which carries exactly the information
//! the conditions need:
//!
//! * `U_x` (recording): the values of all nodes reachable when the first
//!   applier is on team `x`;
//! * `R_{x,j}` (discerning): the pairs `(response p_j received, any value
//!   reachable after p_j applied)` over the same first-team restriction.
//!
//! The analysis is computed once per `(initial value, op assignment)`; team
//! partitions are then evaluated by cheap bitset unions, which is what makes
//! the exhaustive witness search feasible.

use crate::bitset::BitSet;
use rcn_spec::{ObjectType, OpId, ValueId};
use serde::{Deserialize, Serialize};

/// Maximum number of processes the analysis supports (masks are `u32`).
pub const MAX_PROCESSES: usize = 20;

/// Reachability analysis of one `(u, ops)` instance.
///
/// # Examples
///
/// ```
/// use rcn_decide::Analysis;
/// use rcn_spec::{zoo::TestAndSet, OpId, ValueId};
///
/// let tas = TestAndSet::new();
/// // Two processes, both assigned test&set, from the clear value.
/// let a = Analysis::new(&tas, ValueId::new(0), &[OpId::new(0), OpId::new(0)]);
/// // Whoever goes first, the value ends up "set": the value sets intersect,
/// // which is exactly why test-and-set is not 2-recording.
/// let u0 = a.value_set(&[0]);
/// let u1 = a.value_set(&[1]);
/// assert!(u0.intersects(&u1));
/// ```
///
/// Analyses serialize (for the persistent analysis cache); a deserialized
/// analysis must pass [`shape_matches`](Self::shape_matches) before the
/// deciders may trust it.
#[derive(Clone, Serialize, Deserialize)]
pub struct Analysis {
    n: usize,
    num_values: usize,
    num_responses: usize,
    /// `value_sets[f]`: values reachable over schedules whose first process
    /// is `p_f` (the per-first building block of the `U_x` sets).
    value_sets: Vec<BitSet>,
    /// `pair_sets[f * n + j]`: `(response, value)` pairs of `p_j` over
    /// schedules whose first process is `p_f` and that contain `p_j` (the
    /// per-first building block of the `R_{x,j}` sets).
    pair_sets: Vec<BitSet>,
}

impl Analysis {
    /// Analyzes applying `ops[i]` (for process `p_i`) in every `S(P)` order
    /// starting from value `u`.
    ///
    /// # Panics
    ///
    /// Panics if `ops.len() > MAX_PROCESSES`, or if `u` / any op is out of
    /// range for the type.
    pub fn new<T: ObjectType + ?Sized>(ty: &T, u: ValueId, ops: &[OpId]) -> Analysis {
        let n = ops.len();
        assert!(
            n <= MAX_PROCESSES,
            "analysis supports at most {MAX_PROCESSES} processes"
        );
        let num_values = ty.num_values();
        let num_responses = ty.num_responses();
        assert!(u.index() < num_values, "initial value out of range");
        for op in ops {
            assert!(op.index() < ty.num_ops(), "op out of range");
        }

        let num_nodes = (1usize << n) * num_values;
        let node = |mask: u32, v: usize| (mask as usize) * num_values + v;

        // firsts[node]: bitmask of processes f such that the node is
        // reachable via a schedule starting with p_f. 0 = unreachable.
        let mut firsts = vec![0u32; num_nodes];
        for (f, &op) in ops.iter().enumerate() {
            let out = ty.apply(u, op);
            firsts[node(1 << f, out.next.index())] |= 1 << f;
        }
        // Propagate in increasing mask order (masks only grow along edges).
        for mask in 1u32..(1 << n) {
            for v in 0..num_values {
                let label = firsts[node(mask, v)];
                if label == 0 {
                    continue;
                }
                for (j, &op) in ops.iter().enumerate() {
                    if mask & (1 << j) != 0 {
                        continue;
                    }
                    let out = ty.apply(ValueId(v as u16), op);
                    firsts[node(mask | (1 << j), out.next.index())] |= label;
                }
            }
        }

        // downstream[node]: values reachable from the node (including its
        // own value), computed in decreasing mask order (reverse topological).
        let mut downstream: Vec<Option<BitSet>> = vec![None; num_nodes];
        for mask in (1u32..(1 << n)).rev() {
            for v in 0..num_values {
                let id = node(mask, v);
                if firsts[id] == 0 {
                    continue;
                }
                let mut set = BitSet::new(num_values);
                set.insert(v);
                for (j, &op) in ops.iter().enumerate() {
                    if mask & (1 << j) != 0 {
                        continue;
                    }
                    let out = ty.apply(ValueId(v as u16), op);
                    let child = node(mask | (1 << j), out.next.index());
                    if let Some(ds) = &downstream[child] {
                        set.union_with(ds);
                    }
                }
                downstream[id] = Some(set);
            }
        }

        let mut value_sets = vec![BitSet::new(num_values); n];
        let mut pair_sets = vec![BitSet::new(num_responses * num_values); n * n];

        // The first application itself: p_f's own pair from the virtual root.
        for (f, &op) in ops.iter().enumerate() {
            let out = ty.apply(u, op);
            let start = node(1 << f, out.next.index());
            if let Some(ds) = &downstream[start] {
                for v in ds.iter() {
                    pair_sets[f * n + f].insert(out.response.index() * num_values + v);
                }
            }
        }

        for mask in 1u32..(1 << n) {
            for v in 0..num_values {
                let id = node(mask, v);
                let label = firsts[id];
                if label == 0 {
                    continue;
                }
                // Values of this node belong to U_f for every first f.
                for (f, set) in value_sets.iter_mut().enumerate() {
                    if label & (1 << f) != 0 {
                        set.insert(v);
                    }
                }
                // Pairs contributed by each process j applying here.
                for (j, &op) in ops.iter().enumerate() {
                    if mask & (1 << j) != 0 {
                        continue;
                    }
                    let out = ty.apply(ValueId(v as u16), op);
                    let child = node(mask | (1 << j), out.next.index());
                    let Some(ds) = &downstream[child] else {
                        continue;
                    };
                    for f in 0..n {
                        if label & (1 << f) == 0 {
                            continue;
                        }
                        let set = &mut pair_sets[f * n + j];
                        for v2 in ds.iter() {
                            set.insert(out.response.index() * num_values + v2);
                        }
                    }
                }
            }
        }

        Analysis {
            n,
            num_values,
            num_responses,
            value_sets,
            pair_sets,
        }
    }

    /// Number of processes in the analyzed assignment.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Checks that this analysis has exactly the shape an analysis of an
    /// `n`-process instance of a type with `num_values` values and
    /// `num_responses` responses must have — dimensions, set counts, and
    /// bitset well-formedness. Used to validate analyses loaded from the
    /// on-disk cache before the deciders trust them; always true for
    /// analyses built by [`Analysis::new`].
    pub fn shape_matches(&self, n: usize, num_values: usize, num_responses: usize) -> bool {
        self.n == n
            && self.num_values == num_values
            && self.num_responses == num_responses
            && self.value_sets.len() == n
            && self
                .value_sets
                .iter()
                .all(|s| s.capacity() == num_values && s.is_well_formed())
            && self.pair_sets.len() == n * n
            && self
                .pair_sets
                .iter()
                .all(|s| s.capacity() == num_responses * num_values && s.is_well_formed())
    }

    /// The `U`-style value set for a team: all values reachable over
    /// nonempty schedules whose first process is a member of `team`.
    pub fn value_set(&self, team: &[usize]) -> BitSet {
        let mut out = BitSet::new(self.num_values);
        for &f in team {
            out.union_with(&self.value_sets[f]);
        }
        out
    }

    /// The `R_{x,j}`-style pair set: `(response, value)` pairs of `p_j` over
    /// schedules containing `p_j` whose first process is in `team`.
    pub fn pair_set(&self, team: &[usize], j: usize) -> BitSet {
        // Capacity is the pair-universe size, not something to infer from an
        // arbitrary stored set (indexing `pair_sets[j]` happened to alias
        // `pair_sets[0 * n + j]`, which has the right capacity only because
        // all rows share it).
        let mut out = BitSet::new(self.num_responses * self.num_values);
        for &f in team {
            out.union_with(&self.pair_sets[f * self.n + j]);
        }
        out
    }

    /// Per-first value set (building block of [`value_set`](Self::value_set)).
    pub fn value_set_of_first(&self, f: usize) -> &BitSet {
        &self.value_sets[f]
    }

    /// Per-first pair set (building block of [`pair_set`](Self::pair_set)).
    pub fn pair_set_of_first(&self, f: usize, j: usize) -> &BitSet {
        &self.pair_sets[f * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::{s_p_first_in, ProcessId};
    use rcn_spec::apply_all;
    use rcn_spec::zoo::{Register, TestAndSet, Tnn};
    use std::collections::HashSet;

    /// Brute-force U_x by enumerating S(P) schedules directly.
    fn brute_value_set<T: ObjectType>(
        ty: &T,
        u: ValueId,
        ops: &[OpId],
        team: &[usize],
    ) -> HashSet<usize> {
        let procs: Vec<ProcessId> = (0..ops.len()).map(|i| ProcessId(i as u16)).collect();
        let first: Vec<ProcessId> = team.iter().map(|&i| ProcessId(i as u16)).collect();
        let mut out = HashSet::new();
        for sched in s_p_first_in(&procs, &first) {
            let seq: Vec<OpId> = sched.iter().map(|e| ops[e.process().index()]).collect();
            let (_, v) = apply_all(ty, u, &seq);
            out.insert(v.index());
        }
        out
    }

    /// Brute-force R_{x,j} by enumerating S(P) schedules directly.
    fn brute_pair_set<T: ObjectType>(
        ty: &T,
        u: ValueId,
        ops: &[OpId],
        team: &[usize],
        j: usize,
    ) -> HashSet<(usize, usize)> {
        let procs: Vec<ProcessId> = (0..ops.len()).map(|i| ProcessId(i as u16)).collect();
        let first: Vec<ProcessId> = team.iter().map(|&i| ProcessId(i as u16)).collect();
        let mut out = HashSet::new();
        for sched in s_p_first_in(&procs, &first) {
            if !sched.contains_process(ProcessId(j as u16)) {
                continue;
            }
            let seq: Vec<OpId> = sched.iter().map(|e| ops[e.process().index()]).collect();
            let (outs, v) = apply_all(ty, u, &seq);
            let pos = sched
                .iter()
                .position(|e| e.process().index() == j)
                .expect("j in schedule");
            out.insert((outs[pos].response.index(), v.index()));
        }
        out
    }

    fn check_against_brute<T: ObjectType>(ty: &T, u: ValueId, ops: &[OpId]) {
        let n = ops.len();
        let a = Analysis::new(ty, u, ops);
        // Check every singleton team (unions are trivially correct).
        for f in 0..n {
            let fast: HashSet<usize> = a.value_set(&[f]).iter().collect();
            let brute = brute_value_set(ty, u, ops, &[f]);
            assert_eq!(fast, brute, "U set mismatch, first={f}");
            for j in 0..n {
                let fast: HashSet<(usize, usize)> = a
                    .pair_set(&[f], j)
                    .iter()
                    .map(|i| (i / ty.num_values(), i % ty.num_values()))
                    .collect();
                let brute = brute_pair_set(ty, u, ops, &[f], j);
                assert_eq!(fast, brute, "R set mismatch, first={f}, j={j}");
            }
        }
    }

    #[test]
    fn matches_brute_force_on_test_and_set() {
        let tas = TestAndSet::new();
        let ops = vec![OpId::new(0); 3];
        check_against_brute(&tas, ValueId::new(0), &ops);
        let mixed = vec![OpId::new(0), OpId::new(1), OpId::new(0)];
        check_against_brute(&tas, ValueId::new(0), &mixed);
    }

    #[test]
    fn matches_brute_force_on_register() {
        let reg = Register::new(2);
        // write(0), write(1), read
        let ops = vec![OpId::new(0), OpId::new(1), OpId::new(2)];
        check_against_brute(&reg, ValueId::new(0), &ops);
        check_against_brute(&reg, ValueId::new(1), &ops);
    }

    #[test]
    fn matches_brute_force_on_tnn() {
        let t = Tnn::new(4, 2);
        let ops = vec![t.op_x(0), t.op_x(1), t.op_r(), t.op_x(1)];
        check_against_brute(&t, t.s(), &ops);
        check_against_brute(&t, t.s_xi(0, 2), &ops);
    }

    #[test]
    fn tnn_value_sets_record_first_team() {
        // With op_0 and op_1 assigned by team, the value after any schedule
        // records the first mover's team (below the s_⊥ collapse).
        let t = Tnn::new(5, 2);
        let ops = vec![t.op_x(0), t.op_x(0), t.op_x(1), t.op_x(1)];
        let a = Analysis::new(&t, t.s(), &ops);
        let u0 = a.value_set(&[0, 1]);
        let u1 = a.value_set(&[2, 3]);
        // Only 4 processes < n = 5: never reaches s_⊥, so the sets are
        // disjoint — T_{5,2} is 4-recording for this witness.
        assert!(!u0.intersects(&u1));
    }

    #[test]
    fn pair_sets_include_first_own_application() {
        let tas = TestAndSet::new();
        let a = Analysis::new(&tas, ValueId::new(0), &[OpId::new(0), OpId::new(0)]);
        // p0 first: p0's own pair has response 0 (it won).
        let r00 = a.pair_set(&[0], 0);
        assert!(!r00.is_empty());
        let pairs: Vec<(usize, usize)> = r00.iter().map(|i| (i / 2, i % 2)).collect();
        assert!(
            pairs.iter().all(|&(r, _)| r == 0),
            "winner sees 0: {pairs:?}"
        );
    }
}
