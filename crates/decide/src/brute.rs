//! Brute-force reference implementations of the discerning/recording
//! checks, by direct enumeration of `S(P)` schedules.
//!
//! These are exponentially slower than the BFS in [`crate::Analysis`] and
//! exist purely as an oracle: the differential tests (unit, property-based,
//! and the `rcn` integration suite) check that the fast decider agrees with
//! this transliteration of the paper's definitions on thousands of random
//! instances. Keep this module boring and obviously correct.

use crate::witness::{Team, Witness};
use rcn_model::{s_p_first_in, ProcessId};
use rcn_spec::{apply_all, ObjectType, OpId};
use std::collections::HashSet;

/// `U_x` by definition: the set of (ids of) values `v` such that some
/// schedule `σ ∈ S(P)` whose first process is on team `x` leaves the object
/// with value `v` when the processes apply their assigned operations in
/// order from `witness.initial`.
pub fn u_set<T: ObjectType + ?Sized>(ty: &T, witness: &Witness, x: Team) -> HashSet<usize> {
    let procs: Vec<ProcessId> = (0..witness.n()).map(|i| ProcessId(i as u16)).collect();
    let first: Vec<ProcessId> = witness
        .team_members(x)
        .into_iter()
        .map(|i| ProcessId(i as u16))
        .collect();
    let mut out = HashSet::new();
    for sched in s_p_first_in(&procs, &first) {
        let seq: Vec<OpId> = sched
            .iter()
            .map(|e| {
                witness.ops[e
                    .process()
                    .expect("S(P\u{2032}) schedules are step-only")
                    .index()]
            })
            .collect();
        let (_, v) = apply_all(ty, witness.initial, &seq);
        out.insert(v.index());
    }
    out
}

/// `R_{x,j}` by definition: the set of `(response, final value)` pairs of
/// `p_j`'s operation over schedules `σ ∈ S(P)` containing `p_j` whose first
/// process is on team `x`.
pub fn r_set<T: ObjectType + ?Sized>(
    ty: &T,
    witness: &Witness,
    x: Team,
    j: usize,
) -> HashSet<(usize, usize)> {
    let procs: Vec<ProcessId> = (0..witness.n()).map(|i| ProcessId(i as u16)).collect();
    let first: Vec<ProcessId> = witness
        .team_members(x)
        .into_iter()
        .map(|i| ProcessId(i as u16))
        .collect();
    let mut out = HashSet::new();
    for sched in s_p_first_in(&procs, &first) {
        let Some(pos) = sched
            .iter()
            .position(|e| e.process().map(ProcessId::index) == Some(j))
        else {
            continue;
        };
        let seq: Vec<OpId> = sched
            .iter()
            .map(|e| {
                witness.ops[e
                    .process()
                    .expect("S(P\u{2032}) schedules are step-only")
                    .index()]
            })
            .collect();
        let (outs, v) = apply_all(ty, witness.initial, &seq);
        out.insert((outs[pos].response.index(), v.index()));
    }
    out
}

/// Checks a discerning witness by direct enumeration:
/// `∀j: R_{0,j} ∩ R_{1,j} = ∅`.
pub fn check_discerning_brute<T: ObjectType + ?Sized>(ty: &T, witness: &Witness) -> bool {
    (0..witness.n())
        .all(|j| r_set(ty, witness, Team::T0, j).is_disjoint(&r_set(ty, witness, Team::T1, j)))
}

/// Checks a recording witness by direct enumeration:
/// `U_0 ∩ U_1 = ∅` and the hiding clause.
pub fn check_recording_brute<T: ObjectType + ?Sized>(ty: &T, witness: &Witness) -> bool {
    let u0 = u_set(ty, witness, Team::T0);
    let u1 = u_set(ty, witness, Team::T1);
    if !u0.is_disjoint(&u1) {
        return false;
    }
    let u = witness.initial.index();
    if u0.contains(&u) && witness.team_members(Team::T1).len() != 1 {
        return false;
    }
    if u1.contains(&u) && witness.team_members(Team::T0).len() != 1 {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discerning::check_discerning;
    use crate::recording::check_recording;
    use crate::synthesis;
    use rand::Rng;
    use rcn_spec::zoo::{StickyBit, TestAndSet, Tnn};
    use rcn_spec::ValueId;

    fn random_witness(
        rng: &mut rand::rngs::StdRng,
        num_values: usize,
        num_ops: usize,
        n: usize,
    ) -> Witness {
        let mut team_of: Vec<Team> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Team::T0
                } else {
                    Team::T1
                }
            })
            .collect();
        team_of[0] = Team::T0;
        if !team_of.contains(&Team::T1) {
            team_of[n - 1] = Team::T1;
        }
        Witness::new(
            ValueId::new(rng.gen_range(0..num_values) as u16),
            team_of,
            (0..n)
                .map(|_| OpId(rng.gen_range(0..num_ops) as u16))
                .collect(),
        )
    }

    #[test]
    fn fast_and_brute_agree_on_zoo_witnesses() {
        let mut rng = synthesis::rng(42);
        for _ in 0..200 {
            let n = rng.gen_range(2..5);
            // Alternate between types.
            match rng.gen_range(0..3) {
                0 => {
                    let ty = TestAndSet::new();
                    let w = random_witness(&mut rng, 2, 2, n);
                    assert_eq!(
                        check_discerning(&ty, &w),
                        Ok(check_discerning_brute(&ty, &w)),
                        "{w}"
                    );
                    assert_eq!(
                        check_recording(&ty, &w),
                        Ok(check_recording_brute(&ty, &w)),
                        "{w}"
                    );
                }
                1 => {
                    let ty = StickyBit::new();
                    let w = random_witness(&mut rng, 3, 3, n);
                    assert_eq!(
                        check_discerning(&ty, &w),
                        Ok(check_discerning_brute(&ty, &w)),
                        "{w}"
                    );
                    assert_eq!(
                        check_recording(&ty, &w),
                        Ok(check_recording_brute(&ty, &w)),
                        "{w}"
                    );
                }
                _ => {
                    let ty = Tnn::new(4, 2);
                    let w = random_witness(&mut rng, 8, 3, n);
                    assert_eq!(
                        check_discerning(&ty, &w),
                        Ok(check_discerning_brute(&ty, &w)),
                        "{w}"
                    );
                    assert_eq!(
                        check_recording(&ty, &w),
                        Ok(check_recording_brute(&ty, &w)),
                        "{w}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_and_brute_agree_on_random_tables() {
        let mut rng = synthesis::rng(7);
        for round in 0..60 {
            let table = synthesis::random_readable_table(&mut rng, 4, 2);
            let n = rng.gen_range(2..5);
            let w = random_witness(&mut rng, 4, 3, n);
            assert_eq!(
                check_discerning(&table, &w),
                Ok(check_discerning_brute(&table, &w)),
                "round {round}: {w}"
            );
            assert_eq!(
                check_recording(&table, &w),
                Ok(check_recording_brute(&table, &w)),
                "round {round}: {w}"
            );
        }
    }

    #[test]
    fn brute_u_sets_match_known_tas_structure() {
        // Both apply test&set from clear: whoever is first, the bit is set.
        let w = Witness::new(
            ValueId::new(0),
            vec![Team::T0, Team::T1],
            vec![OpId::new(0), OpId::new(0)],
        );
        let tas = TestAndSet::new();
        assert_eq!(u_set(&tas, &w, Team::T0), HashSet::from([1]));
        assert_eq!(u_set(&tas, &w, Team::T1), HashSet::from([1]));
        assert!(!check_recording_brute(&tas, &w));
    }
}
