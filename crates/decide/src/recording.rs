//! The *n-recording* condition (DFFR'22, as restated in §2 of the paper)
//! and its decision procedure.
//!
//! A deterministic type `T` is *n-recording* if there exist a value `u`, a
//! partition of the processes into two nonempty teams, and an operation
//! `o_i` per process such that:
//!
//! * `U_0 ∩ U_1 = ∅`, where `U_x` is the set of values resulting from
//!   schedules `σ ∈ S(P)` whose first process is on team `x`, and
//! * if `u ∈ U_x`, then `|T_x̄| = 1` (the *hiding* clause: if team `x` can
//!   leave the object looking untouched, the other team must be a single
//!   process).
//!
//! This paper's **Theorem 13** shows n-recording is *necessary* for solving
//! n-process recoverable wait-free consensus with deterministic types;
//! DFFR'22 (Theorem 8) shows it is *sufficient* for deterministic readable
//! types. Hence for readable deterministic types the *recording number*
//! computed here **is** the recoverable consensus number.

use crate::discerning::LevelResult;
use crate::reach::Analysis;
use crate::search::{op_multisets, partitions};
use crate::witness::{Team, Witness, WitnessError};
use rcn_spec::{ObjectType, ValueId};

/// Checks whether a concrete witness establishes that `ty` is
/// `witness.n()`-recording.
///
/// # Errors
///
/// Returns [`WitnessError`] if the witness is malformed for `ty`.
///
/// # Examples
///
/// ```
/// use rcn_decide::{check_recording, Team, Witness};
/// use rcn_spec::{zoo::TestAndSet, OpId, ValueId};
///
/// // Test-and-set is NOT 2-recording with the natural witness: whoever
/// // goes first, the bit ends up set, so U_0 ∩ U_1 ≠ ∅. (Golab: its
/// // recoverable consensus number is 1.)
/// let w = Witness::new(
///     ValueId::new(0),
///     vec![Team::T0, Team::T1],
///     vec![OpId::new(0), OpId::new(0)],
/// );
/// assert_eq!(check_recording(&TestAndSet::new(), &w), Ok(false));
/// ```
pub fn check_recording<T: ObjectType + ?Sized>(
    ty: &T,
    witness: &Witness,
) -> Result<bool, WitnessError> {
    witness.validate(ty)?;
    let analysis = Analysis::new(ty, witness.initial, &witness.ops);
    let t0 = witness.team_members(Team::T0);
    let t1 = witness.team_members(Team::T1);
    Ok(recording_holds(&analysis, witness.initial, &t0, &t1))
}

pub(crate) fn recording_holds(analysis: &Analysis, u: ValueId, t0: &[usize], t1: &[usize]) -> bool {
    let u0 = analysis.value_set(t0);
    let u1 = analysis.value_set(t1);
    if u0.intersects(&u1) {
        return false;
    }
    // Hiding clause: if u ∈ U_x then |T_x̄| = 1.
    if u0.contains(u.index()) && t1.len() != 1 {
        return false;
    }
    if u1.contains(u.index()) && t0.len() != 1 {
        return false;
    }
    true
}

/// Searches exhaustively for an `n`-recording witness.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn find_recording_witness<T: ObjectType + ?Sized>(ty: &T, n: usize) -> Option<Witness> {
    assert!(n >= 2, "n-recording requires n >= 2");
    for u in 0..ty.num_values() {
        let u = ValueId(u as u16);
        for ops in op_multisets(ty.num_ops(), n) {
            let analysis = Analysis::new(ty, u, &ops);
            for teams in partitions(n) {
                let t0: Vec<usize> = (0..n).filter(|&i| teams[i] == Team::T0).collect();
                let t1: Vec<usize> = (0..n).filter(|&i| teams[i] == Team::T1).collect();
                if recording_holds(&analysis, u, &t0, &t1) {
                    return Some(Witness::new(u, teams, ops));
                }
            }
        }
    }
    None
}

/// Returns `true` if `ty` is `n`-recording.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn is_n_recording<T: ObjectType + ?Sized>(ty: &T, n: usize) -> bool {
    find_recording_witness(ty, n).is_some()
}

/// Computes the *recording number* of `ty`: the largest `n ≤ cap` such that
/// `ty` is `n`-recording (1 if not even 2-recording).
///
/// For a deterministic **readable** type this is exactly the recoverable
/// consensus number (Theorem 13 of the paper + DFFR'22 Theorem 8); for
/// other deterministic types it is an upper bound (Theorem 13 alone).
///
/// # Panics
///
/// Panics if `cap < 2`.
///
/// # Examples
///
/// ```
/// use rcn_decide::recording_number;
/// use rcn_spec::zoo::{StickyBit, TestAndSet};
///
/// // Golab: test-and-set cannot solve 2-process recoverable consensus.
/// assert_eq!(recording_number(&TestAndSet::new(), 4).level, 1);
/// // The sticky bit keeps its full power.
/// assert!(recording_number(&StickyBit::new(), 4).capped);
/// ```
pub fn recording_number<T: ObjectType + ?Sized>(ty: &T, cap: usize) -> LevelResult {
    assert!(cap >= 2, "cap must be at least 2");
    let mut best = LevelResult {
        level: 1,
        capped: false,
        witness: None,
    };
    for n in 2..=cap {
        match find_recording_witness(ty, n) {
            Some(w) => {
                best = LevelResult {
                    level: n,
                    capped: n == cap,
                    witness: Some(w),
                };
            }
            None => return best,
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_spec::zoo::{
        CompareAndSwap, ConsensusObject, Register, StickyBit, TeamCounter, TestAndSet, Tnn,
    };

    #[test]
    fn test_and_set_is_not_2_recording() {
        // Golab's separation, via the decider: 2-discerning (consensus
        // number 2) but not 2-recording (recoverable consensus number 1).
        assert!(!is_n_recording(&TestAndSet::new(), 2));
        assert_eq!(recording_number(&TestAndSet::new(), 3).level, 1);
    }

    #[test]
    fn register_is_not_2_recording() {
        assert!(!is_n_recording(&Register::new(2), 2));
    }

    #[test]
    fn sticky_bit_and_consensus_object_keep_full_power() {
        for n in 2..5 {
            assert!(is_n_recording(&StickyBit::new(), n), "sticky n={n}");
            assert!(
                is_n_recording(&ConsensusObject::new(), n),
                "consensus n={n}"
            );
        }
    }

    #[test]
    fn cas_is_recording_at_small_n() {
        // Domain ≥ 3 is essential: with two fresh targets, cas(0,1) vs
        // cas(0,2) records the first team in the value forever.
        assert!(is_n_recording(&CompareAndSwap::new(3), 2));
        assert!(is_n_recording(&CompareAndSwap::new(3), 3));
        // Binary CAS has only two values — no room to record disjointly.
        assert!(!is_n_recording(&CompareAndSwap::new(2), 2));
    }

    #[test]
    fn tnn_recording_number_is_n_minus_1() {
        // For T_{n,n'} the value counter records the first team up to depth
        // n−1 and collapses to s_⊥ at depth n, so the recording number is
        // n−1 regardless of n′. (Because T_{n,n'} is not readable for
        // n′ < n−1, this does NOT contradict its recoverable consensus
        // number being n′ — recording is only sufficient for readable
        // types; see §4 of the paper and EXPERIMENTS.md E3.)
        let t = Tnn::new(4, 2);
        assert!(is_n_recording(&t, 3));
        assert!(!is_n_recording(&t, 4));
        let t = Tnn::new(4, 1);
        assert_eq!(recording_number(&t, 5).level, 3);
    }

    #[test]
    fn team_counter_recording_number_is_n_minus_1() {
        let tc = TeamCounter::new(4);
        assert!(is_n_recording(&tc, 3));
        assert!(!is_n_recording(&tc, 4));
    }

    #[test]
    fn recording_witnesses_replay() {
        for n in 2..5 {
            let w = find_recording_witness(&StickyBit::new(), n).expect("witness");
            assert_eq!(check_recording(&StickyBit::new(), &w), Ok(true), "n={n}");
        }
    }

    #[test]
    fn recording_implies_discerning_on_zoo() {
        // Intuition check (not a theorem we rely on): every recording
        // witness found for these types also certifies discerning at the
        // same level via a (possibly different) witness.
        use crate::discerning::is_n_discerning;
        for n in 2..4 {
            for ty in [&TestAndSet::new() as &dyn rcn_spec::ObjectType] {
                if is_n_recording(ty, n) {
                    assert!(is_n_discerning(ty, n));
                }
            }
        }
    }
}
