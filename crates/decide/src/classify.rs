//! Classification: from decider outputs to (recoverable) consensus numbers.
//!
//! What the theory licenses:
//!
//! * **Consensus number.** Ruppert (2000): a deterministic *readable* type
//!   has consensus number ≥ n iff it is n-discerning, and n-discerning is
//!   necessary for every deterministic type. So for readable types
//!   `CN = discerning number`; for non-readable deterministic types
//!   `CN ≤ discerning number`.
//! * **Recoverable consensus number.** Theorem 13 of the paper: n-recording
//!   is necessary for every deterministic type. DFFR'22 Theorem 8:
//!   sufficient for readable types. So for readable types
//!   `RCN = recording number`; for non-readable deterministic types
//!   `RCN ≤ recording number`.
//!
//! The classification is honest about caps: searches run up to a level cap,
//! and a result at the cap is reported as a lower bound of an exact number
//! rather than an exact number.

use crate::discerning::{discerning_number, LevelResult};
use crate::recording::recording_number;
use rcn_spec::ObjectType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A one- or two-sided bound on a consensus number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// The number is known exactly.
    Exact(usize),
    /// The number is at least this (search hit its cap).
    AtLeast(usize),
    /// The number is between the two bounds (inclusive).
    Between(usize, usize),
    /// Only an upper bound is known (non-readable type: the condition is
    /// necessary but not known to be sufficient).
    AtMost(usize),
}

impl Bound {
    /// The lower end of the bound (1 if unknown).
    pub fn lower(&self) -> usize {
        match *self {
            Bound::Exact(k) | Bound::AtLeast(k) | Bound::Between(k, _) => k,
            Bound::AtMost(_) => 1,
        }
    }

    /// The upper end of the bound, if finite knowledge exists.
    pub fn upper(&self) -> Option<usize> {
        match *self {
            Bound::Exact(k) | Bound::AtMost(k) | Bound::Between(_, k) => Some(k),
            Bound::AtLeast(_) => None,
        }
    }

    /// Returns `true` if the bound pins a single number.
    pub fn is_exact(&self) -> bool {
        matches!(self, Bound::Exact(_))
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bound::Exact(k) => write!(f, "{k}"),
            Bound::AtLeast(k) => write!(f, "≥{k}"),
            Bound::AtMost(k) => write!(f, "≤{k}"),
            Bound::Between(a, b) => write!(f, "[{a},{b}]"),
        }
    }
}

/// The full classification of one type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeClassification {
    /// The type's name.
    pub type_name: String,
    /// Whether the type is readable (supports a read operation).
    pub readable: bool,
    /// The discerning-number search result.
    pub discerning: LevelResult,
    /// The recording-number search result.
    pub recording: LevelResult,
    /// What the theory concludes about the consensus number.
    pub consensus_number: Bound,
    /// What the theory concludes about the recoverable consensus number.
    pub recoverable_consensus_number: Bound,
}

impl TypeClassification {
    /// One table row: `name | readable | CN | RCN`.
    pub fn row(&self) -> String {
        format!(
            "{:<24} {:<8} {:<6} {}",
            self.type_name,
            if self.readable { "yes" } else { "no" },
            self.consensus_number.to_string(),
            self.recoverable_consensus_number,
        )
    }
}

/// Classifies a type by running both deciders up to `cap` and applying the
/// theorems above.
///
/// # Panics
///
/// Panics if `cap < 2`.
///
/// # Examples
///
/// ```
/// use rcn_decide::{classify, Bound};
/// use rcn_spec::zoo::TestAndSet;
///
/// let c = classify(&TestAndSet::new(), 4);
/// assert!(c.readable);
/// assert_eq!(c.consensus_number, Bound::Exact(2));
/// assert_eq!(c.recoverable_consensus_number, Bound::Exact(1)); // Golab
/// ```
pub fn classify<T: ObjectType + ?Sized>(ty: &T, cap: usize) -> TypeClassification {
    let readable = ty.is_readable();
    let discerning = discerning_number(ty, cap);
    let recording = recording_number(ty, cap);
    let consensus_number = level_to_bound(&discerning, readable);
    let recoverable_consensus_number = level_to_bound(&recording, readable);
    TypeClassification {
        type_name: ty.name(),
        readable,
        discerning,
        recording,
        consensus_number,
        recoverable_consensus_number,
    }
}

pub(crate) fn level_to_bound(level: &LevelResult, readable: bool) -> Bound {
    match (readable, level.capped) {
        // Readable: the condition characterizes the number exactly.
        (true, false) => Bound::Exact(level.level),
        (true, true) => Bound::AtLeast(level.level),
        // Non-readable deterministic: the condition is only necessary, so
        // the computed level is an upper bound (trivially ≥ 1 below).
        (false, false) => {
            if level.level == 1 {
                Bound::Exact(1)
            } else {
                Bound::AtMost(level.level)
            }
        }
        // Capped and non-readable: the search says nothing conclusive.
        (false, true) => Bound::AtLeast(1),
    }
}

/// The *robust level* of a set of types: by Theorem 14 (robustness of the
/// recoverable consensus hierarchy for deterministic readable types), the
/// number of processes among which recoverable consensus is solvable using
/// any combination of objects of these types is the **maximum** of the
/// individual recoverable consensus numbers — combining types does not help.
///
/// Returns the max over the lower bounds together with the arg-max type
/// name.
///
/// # Examples
///
/// ```
/// use rcn_decide::{classify, robust_level};
/// use rcn_spec::zoo::{Register, TestAndSet};
///
/// let classes = vec![classify(&Register::new(2), 3), classify(&TestAndSet::new(), 3)];
/// let (level, witness_type) = robust_level(&classes);
/// assert_eq!(level, 1); // neither helps recoverable consensus beyond 1
/// # let _ = witness_type;
/// ```
pub fn robust_level(classes: &[TypeClassification]) -> (usize, Option<String>) {
    let mut best = 1;
    let mut who = None;
    for c in classes {
        let l = c.recoverable_consensus_number.lower();
        if l > best {
            best = l;
            who = Some(c.type_name.clone());
        }
    }
    (best, who)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_spec::zoo::{BoundedQueue, Register, StickyBit, TestAndSet, Tnn};

    #[test]
    fn register_is_level_1_everywhere() {
        let c = classify(&Register::new(2), 3);
        assert_eq!(c.consensus_number, Bound::Exact(1));
        assert_eq!(c.recoverable_consensus_number, Bound::Exact(1));
        assert!(c.readable);
    }

    #[test]
    fn test_and_set_separates_the_hierarchies() {
        let c = classify(&TestAndSet::new(), 4);
        assert_eq!(c.consensus_number, Bound::Exact(2));
        assert_eq!(c.recoverable_consensus_number, Bound::Exact(1));
    }

    #[test]
    fn sticky_bit_caps_out() {
        let c = classify(&StickyBit::new(), 4);
        assert_eq!(c.consensus_number, Bound::AtLeast(4));
        assert_eq!(c.recoverable_consensus_number, Bound::AtLeast(4));
    }

    #[test]
    fn queue_classification_is_inconclusive() {
        // Queues are not readable and are n-discerning for every n (the head
        // records the first enqueuer), so the search caps out and the theory
        // licenses no nontrivial bound — Herlihy's CN(queue) = 2 needs the
        // queue-specific argument, not the discerning condition.
        let c = classify(&BoundedQueue::new(2, 2), 3);
        assert!(!c.readable);
        assert!(c.discerning.capped);
        assert_eq!(c.consensus_number, Bound::AtLeast(1));
    }

    #[test]
    fn tnn_classification_matches_lemmas() {
        // T_{4,2}: not readable; discerning number 4 (Lemma 15 says CN = 4),
        // recording number 3 (upper bound; Lemma 16 pins RCN = 2).
        let c = classify(&Tnn::new(4, 2), 5);
        assert!(!c.readable);
        assert_eq!(c.discerning.level, 4);
        assert_eq!(c.recording.level, 3);
        assert_eq!(c.consensus_number, Bound::AtMost(4));
        assert_eq!(c.recoverable_consensus_number, Bound::AtMost(3));
    }

    #[test]
    fn robust_level_takes_the_max() {
        let classes = vec![
            classify(&Register::new(2), 3),
            classify(&TestAndSet::new(), 3),
            classify(&StickyBit::new(), 3),
        ];
        let (level, who) = robust_level(&classes);
        assert_eq!(level, 3);
        assert_eq!(who.as_deref(), Some("sticky-bit"));
    }

    #[test]
    fn bound_accessors() {
        assert_eq!(Bound::Exact(3).lower(), 3);
        assert_eq!(Bound::Exact(3).upper(), Some(3));
        assert!(Bound::Exact(3).is_exact());
        assert_eq!(Bound::AtLeast(2).upper(), None);
        assert_eq!(Bound::AtMost(4).lower(), 1);
        assert_eq!(Bound::Between(2, 4).lower(), 2);
        assert_eq!(Bound::Between(2, 4).upper(), Some(4));
        assert_eq!(Bound::Between(2, 4).to_string(), "[2,4]");
    }

    #[test]
    fn rows_render() {
        let c = classify(&TestAndSet::new(), 3);
        let row = c.row();
        assert!(row.contains("test-and-set"));
        assert!(row.contains("yes"));
    }
}
