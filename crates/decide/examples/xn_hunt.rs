//! Synthesis hunt for DFFR'22's `X_n` profile: a readable type that is
//! n-discerning, (n−2)-recording and not (n−1)-recording (experiment E6).
//!
//! Usage: `xn_hunt [n] [budget-per-seed] [num-random-seeds]`
//!
//! Seeds the hill climb both from the structured `TeamCounter` family
//! (already at distance 1 from the profile: its recording number is n−1
//! instead of n−2) and from random readable tables. On success the winning
//! table is printed as JSON for embedding.

use rcn_decide::synthesis::{hill_climb, random_readable_table, rng, TargetProfile};
use rcn_spec::zoo::TeamCounter;
use rcn_spec::TableType;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).map_or(4, |s| s.parse().expect("n"));
    let budget: usize = args.get(2).map_or(20_000, |s| s.parse().expect("budget"));
    let seeds: usize = args.get(3).map_or(8, |s| s.parse().expect("seeds"));
    let profile = TargetProfile::xn(n);
    println!(
        "hunting X_{n}: readable, discerning={}, recording={}",
        profile.discerning, profile.recording
    );

    // Structured seed: the TeamCounter table.
    let tc = TableType::from_type(&TeamCounter::new(n));
    println!("team-counter seed distance: {}", profile.distance(&tc));
    for seed in 0..seeds as u64 {
        let mut r = rng(seed);
        let out = hill_climb(&mut r, tc.clone(), profile, budget);
        println!(
            "seed {seed} (team-counter start): distance={} after {} evals",
            out.distance, out.evaluations
        );
        if out.distance == 0 {
            report_success(n, &out.best, &profile);
            return;
        }
    }
    // Random seeds over a few dimension choices.
    for &(values, mutators) in &[(2 * n, 2), (2 * n, 3), (2 * n + 2, 3)] {
        for seed in 100..(100 + seeds as u64) {
            let mut r = rng(seed * 31 + values as u64);
            let start = random_readable_table(&mut r, values, mutators);
            let out = hill_climb(&mut r, start, profile, budget);
            println!(
                "seed {seed} ({values}v/{mutators}m random): distance={} after {} evals",
                out.distance, out.evaluations
            );
            if out.distance == 0 {
                report_success(n, &out.best, &profile);
                return;
            }
        }
    }
    println!("no X_{n} candidate found within budget");
}

fn report_success(n: usize, table: &TableType, profile: &TargetProfile) {
    let class = profile
        .classify(table)
        .expect("distance 0 means it matches");
    println!("FOUND X_{n} candidate!");
    println!("classification: {}", class.row());
    println!(
        "{}",
        serde_json::to_string(table).expect("tables serialize")
    );
}
