//! E15 driver: in-process tracing overhead on `team-counter:5 --cap 6`.
//!
//! Classifies the same type repeatedly under each tracer sink and reports
//! the minimum and average engine busy time. Run with
//! `cargo run --release -p rcn-decide --example trace_overhead`.
use rcn_decide::SearchEngine;
use rcn_obs::Tracer;
use rcn_spec::zoo::TeamCounter;
use rcn_spec::ObjectType;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);
    // Dyn dispatch, like the CLI's `parse_type` output.
    let ty: Box<dyn ObjectType + Sync> = Box::new(TeamCounter::new(5));
    println!("{:>8}  {:>10}  {:>10}", "sink", "min_ms", "avg_ms");
    for mode in ["off", "metrics", "ring", "jsonl"] {
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        for _ in 0..reps {
            let tracer = match mode {
                "off" => Tracer::disabled(),
                "metrics" => Tracer::metrics_only(),
                "ring" => Tracer::ring(1 << 12),
                _ => Tracer::to_jsonl(std::env::temp_dir().join("rcn-trace-overhead.jsonl"))
                    .expect("open trace file"),
            };
            let engine = SearchEngine::new(1).with_tracer(tracer);
            let c = engine.classify(ty.as_ref(), 6).expect("cap in range");
            std::hint::black_box(c);
            let ms = engine.stats().busy_time.as_secs_f64() * 1e3;
            best = best.min(ms);
            total += ms;
        }
        println!("{mode:>8}  {best:>10.3}  {:>10.3}", total / reps as f64);
    }
}
