//! Scratch probe used during development; kept as a tiny demo of the raw
//! decider API.
use rcn_decide::*;
use rcn_spec::zoo::*;

fn main() {
    for (a, c) in [(2usize, 2usize), (2, 3), (2, 4)] {
        let q = BoundedQueue::new(a, c);
        let d: Vec<bool> = (2..5).map(|n| is_n_discerning(&q, n)).collect();
        let r: Vec<bool> = (2..5).map(|n| is_n_recording(&q, n)).collect();
        println!("queue<{a},{c}>: discerning(2..5)={d:?} recording(2..5)={r:?}");
    }
    let s = BoundedStack::new(2, 3);
    println!(
        "stack<2,3>: 2d={} 3d={} 2r={}",
        is_n_discerning(&s, 2),
        is_n_discerning(&s, 3),
        is_n_recording(&s, 2)
    );
}
