//! Trace aggregation: turn a JSONL trace back into a per-span time
//! breakdown (`rcn profile <trace.jsonl>`).
//!
//! [`parse_jsonl`] parses every line back into a [`TraceEvent`] (the
//! schema round-trip the tests pin), and [`ProfileReport::build`] matches
//! span opens to closes by id, attributing each span's duration to its
//! name: total time, self time (total minus direct children), call
//! counts, and exact p50/p99 over the per-call durations.

use crate::trace::{TraceEvent, KIND_CLOSE, KIND_EVENT, KIND_OPEN};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong parsing it.
    pub message: String,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ProfileError {}

/// Parses a JSONL trace document: one [`TraceEvent`] per non-empty line.
///
/// # Errors
///
/// Returns the first line that fails to parse as a `TraceEvent`.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, ProfileError> {
    let mut events = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<TraceEvent>(line) {
            Ok(event) => events.push(event),
            Err(err) => {
                return Err(ProfileError {
                    line: index + 1,
                    message: err.to_string(),
                })
            }
        }
    }
    Ok(events)
}

/// Aggregated timing for one span name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileRow {
    /// The span name.
    pub name: String,
    /// Completed open/close pairs.
    pub calls: u64,
    /// Summed wall duration of all calls, nanoseconds. Recursive spans
    /// double-count here (standard flat-profile caveat).
    pub total_ns: u64,
    /// Total minus time spent in direct child spans, nanoseconds.
    pub self_ns: u64,
    /// Exact median call duration, nanoseconds.
    pub p50_ns: u64,
    /// Exact 99th-percentile call duration, nanoseconds.
    pub p99_ns: u64,
}

/// The whole breakdown: rows sorted by total time descending, plus trace-
/// level tallies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Per-span-name aggregates, hottest first.
    pub rows: Vec<ProfileRow>,
    /// Trace extent: last timestamp minus first, nanoseconds.
    pub wall_ns: u64,
    /// Point events in the trace.
    pub events: u64,
    /// Spans opened but never closed (0 in a well-formed trace).
    pub unclosed: u64,
}

/// Exact quantile over a sorted slice (nearest-rank on `q * (n-1)`).
fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)]
    let index = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[index.min(sorted.len() - 1)]
}

impl ProfileReport {
    /// Builds the breakdown from raw trace rows (any order within a
    /// thread's monotone timestamps; opens matched to closes by id).
    pub fn build(events: &[TraceEvent]) -> ProfileReport {
        // id → (name index into `names`, open timestamp, parent id)
        let mut open: HashMap<u64, (String, u64, u64)> = HashMap::new();
        // id → nanoseconds spent in the span's *direct* children
        let mut child_ns: HashMap<u64, u64> = HashMap::new();
        // name → completed call durations
        let mut durations: HashMap<String, Vec<u64>> = HashMap::new();
        let mut point_events = 0u64;
        let mut t_min = u64::MAX;
        let mut t_max = 0u64;

        for event in events {
            t_min = t_min.min(event.t_ns);
            t_max = t_max.max(event.t_ns);
            match event.kind.as_str() {
                KIND_OPEN => {
                    open.insert(event.id, (event.name.clone(), event.t_ns, event.parent));
                }
                KIND_CLOSE => {
                    if let Some((name, opened, parent)) = open.remove(&event.id) {
                        let duration = event.t_ns.saturating_sub(opened);
                        durations.entry(name).or_default().push(duration);
                        if parent != 0 {
                            *child_ns.entry(parent).or_default() += duration;
                        }
                    }
                }
                KIND_EVENT => point_events += 1,
                _ => {}
            }
        }

        // Self time needs per-id child totals re-aggregated by name; walk
        // the events again so completed ids still map to their names.
        let mut self_by_name: HashMap<String, u64> = HashMap::new();
        let mut opened_at: HashMap<u64, (String, u64)> = HashMap::new();
        for event in events {
            match event.kind.as_str() {
                KIND_OPEN => {
                    opened_at.insert(event.id, (event.name.clone(), event.t_ns));
                }
                KIND_CLOSE => {
                    if let Some((name, opened)) = opened_at.remove(&event.id) {
                        let duration = event.t_ns.saturating_sub(opened);
                        let children = child_ns.get(&event.id).copied().unwrap_or(0);
                        *self_by_name.entry(name).or_default() += duration.saturating_sub(children);
                    }
                }
                _ => {}
            }
        }

        let mut rows: Vec<ProfileRow> = durations
            .into_iter()
            .map(|(name, mut durs)| {
                durs.sort_unstable();
                let total: u64 = durs.iter().sum();
                ProfileRow {
                    calls: durs.len() as u64,
                    total_ns: total,
                    self_ns: self_by_name.get(&name).copied().unwrap_or(0),
                    p50_ns: quantile_sorted(&durs, 0.50),
                    p99_ns: quantile_sorted(&durs, 0.99),
                    name,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));

        ProfileReport {
            rows,
            wall_ns: if t_min == u64::MAX { 0 } else { t_max - t_min },
            events: point_events,
            unclosed: open.len() as u64,
        }
    }

    /// Total time attributed to one span name, if it appears.
    pub fn total_ns(&self, name: &str) -> Option<u64> {
        self.rows
            .iter()
            .find(|row| row.name == name)
            .map(|row| row.total_ns)
    }

    /// Aligned human-readable table, hottest span first, times in
    /// milliseconds.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let name_width = self
            .rows
            .iter()
            .map(|row| row.name.len())
            .max()
            .unwrap_or(4)
            .max("span".len());
        let _ = writeln!(
            out,
            "{:name_width$}  {:>8}  {:>12}  {:>12}  {:>10}  {:>10}",
            "span", "calls", "total_ms", "self_ms", "p50_us", "p99_us"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:name_width$}  {:>8}  {:>12.3}  {:>12.3}  {:>10.1}  {:>10.1}",
                row.name,
                row.calls,
                ms(row.total_ns),
                ms(row.self_ns),
                us(row.p50_ns),
                us(row.p99_ns),
            );
        }
        let _ = writeln!(
            out,
            "\nwall {:.3} ms · {} point events · {} unclosed spans",
            ms(self.wall_ns),
            self.events,
            self.unclosed
        );
        out
    }

    /// The report as one compact JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("profile reports always serialize")
    }
}

#[allow(clippy::cast_precision_loss)]
fn ms(ns: u64) -> f64 {
    ns as f64 / 1.0e6
}

#[allow(clippy::cast_precision_loss)]
fn us(ns: u64) -> f64 {
    ns as f64 / 1.0e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn event(kind: &str, name: &str, id: u64, parent: u64, t_ns: u64) -> TraceEvent {
        TraceEvent {
            kind: kind.to_string(),
            name: name.to_string(),
            id,
            parent,
            thread: 0,
            t_ns,
            value: 0,
            detail: String::new(),
        }
    }

    #[test]
    fn build_attributes_self_and_child_time() {
        // outer [0, 100] containing inner [10, 40].
        let rows = vec![
            event(KIND_OPEN, "outer", 1, 0, 0),
            event(KIND_OPEN, "inner", 2, 1, 10),
            event(KIND_CLOSE, "inner", 2, 1, 40),
            event(KIND_EVENT, "tick", 3, 1, 50),
            event(KIND_CLOSE, "outer", 1, 0, 100),
        ];
        let report = ProfileReport::build(&rows);
        assert_eq!(report.wall_ns, 100);
        assert_eq!(report.events, 1);
        assert_eq!(report.unclosed, 0);
        assert_eq!(report.rows.len(), 2);
        let outer = &report.rows[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.total_ns, 100);
        assert_eq!(outer.self_ns, 70);
        let inner = &report.rows[1];
        assert_eq!(inner.total_ns, 30);
        assert_eq!(inner.self_ns, 30);
    }

    #[test]
    fn unclosed_spans_are_counted_not_timed() {
        let rows = vec![event(KIND_OPEN, "leak", 1, 0, 5)];
        let report = ProfileReport::build(&rows);
        assert_eq!(report.unclosed, 1);
        assert!(report.rows.is_empty());
    }

    #[test]
    fn quantiles_are_exact_per_call() {
        let mut rows = Vec::new();
        let mut id = 0;
        let mut clock = 0;
        for duration in [10u64, 20, 30, 40, 1000] {
            id += 1;
            rows.push(event(KIND_OPEN, "op", id, 0, clock));
            clock += duration;
            rows.push(event(KIND_CLOSE, "op", id, 0, clock));
        }
        let report = ProfileReport::build(&rows);
        let op = &report.rows[0];
        assert_eq!(op.calls, 5);
        assert_eq!(op.p50_ns, 30);
        assert_eq!(op.p99_ns, 1000);
    }

    #[test]
    fn parse_jsonl_round_trips_tracer_output() {
        let t = Tracer::ring(16);
        {
            let _a = t.span_with("a", 1, "x");
            let _b = t.span("b");
        }
        let recorded = t.ring_events();
        let text: String = recorded
            .iter()
            .map(|row| serde_json::to_string(row).unwrap() + "\n")
            .collect();
        let parsed = parse_jsonl(&text).expect("round trip");
        assert_eq!(parsed, recorded);
        let report = ProfileReport::build(&parsed);
        assert_eq!(report.unclosed, 0);
        assert_eq!(report.rows.len(), 2);
    }

    #[test]
    fn parse_jsonl_reports_line_numbers() {
        let err = parse_jsonl("\n{\"bad\": true}\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("trace line 2"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let rows = vec![
            event(KIND_OPEN, "x", 1, 0, 0),
            event(KIND_CLOSE, "x", 1, 0, 9),
        ];
        let report = ProfileReport::build(&rows);
        let back: ProfileReport = serde_json::from_str(&report.to_json()).expect("parse");
        assert_eq!(back, report);
    }

    #[test]
    fn render_text_has_header_and_footer() {
        let rows = vec![
            event(KIND_OPEN, "x", 1, 0, 0),
            event(KIND_CLOSE, "x", 1, 0, 2_000_000),
        ];
        let text = ProfileReport::build(&rows).render_text();
        assert!(text.contains("span"), "{text}");
        assert!(text.contains("total_ms"), "{text}");
        assert!(text.contains("2.000"), "{text}");
        assert!(text.contains("0 unclosed"), "{text}");
    }
}
