//! The span/event tracing core.
//!
//! A [`Tracer`] is a cheaply-cloneable handle (an `Arc` internally) that
//! the hot layers thread through their seams. It does three things:
//!
//! * **spans** — [`Tracer::span`] opens a named region and returns a
//!   [`Span`] guard; dropping the guard closes it. Spans nest through a
//!   per-thread stack, carry monotonic timestamps (nanoseconds since the
//!   tracer's epoch), small per-tracer thread ids, and *deterministic*
//!   sequence ids (a single atomic counter), so two traces of the same
//!   sequential run diff cleanly.
//! * **events** — [`Tracer::event`] records a point-in-time observation
//!   with an integer payload and a free-form detail string.
//! * **instruments** — [`Tracer::counter`] / [`Tracer::observe`] feed the
//!   embedded [`MetricsRegistry`], which survives even when no span sink is
//!   attached ([`Tracer::metrics_only`]).
//!
//! Everything is recorded as flat [`TraceEvent`] rows, either into an
//! in-memory ring ([`Tracer::ring`]) or an append-only JSONL file
//! ([`Tracer::to_jsonl`]) — one JSON object per line, parseable back via
//! the vendored `serde_json` (see [`crate::parse_jsonl`]).
//!
//! **Zero-cost when disabled:** [`Tracer::disabled`] holds no allocation at
//! all; every method is an early-return on a `None`. Instrumented code can
//! therefore keep a `Tracer` field unconditionally. Observability must
//! never perturb results — the tracer only ever *reads* the computation it
//! watches (the transparency tests in the workspace pin this).

use crate::metrics::{Counter, HistogramHandle, MetricsRegistry, MetricsSnapshot};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One recorded row of a trace: a span open, a span close, or a point
/// event. The schema is deliberately flat — every field appears in every
/// row — so JSONL consumers never branch on shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// `"open"`, `"close"`, or `"event"`.
    pub kind: String,
    /// The span or event name (dotted, `subsystem.what`).
    pub name: String,
    /// The span's sequence id (`open` and its matching `close` share it);
    /// point events get their own fresh id. Ids start at 1; 0 means "no
    /// span" and only ever appears in `parent`.
    pub id: u64,
    /// The enclosing span's id at emission time, or 0 at top level.
    pub parent: u64,
    /// Small per-tracer thread id (0 for the first thread seen).
    pub thread: u64,
    /// Monotonic nanoseconds since the tracer was created.
    pub t_ns: u64,
    /// Integer payload (a level, a byte count, a state count…); 0 when the
    /// row has none.
    pub value: i64,
    /// Free-form label (an outcome, an instance description…); empty when
    /// the row has none.
    pub detail: String,
}

/// Span-open kind tag.
pub const KIND_OPEN: &str = "open";
/// Span-close kind tag.
pub const KIND_CLOSE: &str = "close";
/// Point-event kind tag.
pub const KIND_EVENT: &str = "event";

/// Where recorded rows go.
enum Sink {
    /// Last-`capacity` rows kept in memory.
    Ring {
        buf: Mutex<VecDeque<TraceEvent>>,
        capacity: usize,
    },
    /// Append-only JSONL stream (one JSON object per line).
    Jsonl(JsonlSink),
}

/// Staged rows drained to the writer once per [`STAGE_ROWS`] (or on
/// flush/drop). Staging keeps the hot emit path down to a clock read and a
/// `Vec` push — the formatting and I/O code runs once per batch instead of
/// being interleaved with the instrumented computation, where its cache
/// and branch-predictor footprint measurably slows the surrounding work.
struct JsonlSink {
    writer: Mutex<BufWriter<std::fs::File>>,
    staged: Mutex<Vec<Staged>>,
}

/// Rows buffered between batch writes; bounds staging memory.
const STAGE_ROWS: usize = 4096;

/// One not-yet-formatted row. Span and event names are `&'static str` by
/// API design, so the only owned payload is the detail string.
struct Staged {
    kind: &'static str,
    name: &'static str,
    id: u64,
    parent: u64,
    thread: u64,
    t_ns: u64,
    value: i64,
    detail: Detail,
}

/// A detail label, inlined when short (almost always) to keep a staged
/// row allocation-free.
enum Detail {
    Inline(u8, [u8; 23]),
    Heap(Box<str>),
}

impl Detail {
    fn new(s: &str) -> Detail {
        if s.len() <= 23 {
            let mut buf = [0u8; 23];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            Detail::Inline(s.len() as u8, buf)
        } else {
            Detail::Heap(Box::from(s))
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Detail::Inline(len, buf) => {
                std::str::from_utf8(&buf[..*len as usize]).expect("inline detail is utf-8")
            }
            Detail::Heap(s) => s,
        }
    }
}

impl JsonlSink {
    /// Drains staged rows into the writer (formatting happens here, in one
    /// batch, not on the emit path).
    fn write_staged(&self) {
        let mut staged = self.staged.lock().expect("tracer staged rows");
        if staged.is_empty() {
            return;
        }
        let mut out = String::with_capacity(staged.len() * 112);
        for row in staged.drain(..) {
            out.push_str("{\"kind\":\"");
            out.push_str(row.kind); // the three kind tags never need escaping
            out.push_str("\",\"name\":");
            push_json_string(&mut out, row.name);
            out.push_str(",\"id\":");
            push_u64(&mut out, row.id);
            out.push_str(",\"parent\":");
            push_u64(&mut out, row.parent);
            out.push_str(",\"thread\":");
            push_u64(&mut out, row.thread);
            out.push_str(",\"t_ns\":");
            push_u64(&mut out, row.t_ns);
            out.push_str(",\"value\":");
            push_i64(&mut out, row.value);
            out.push_str(",\"detail\":");
            push_json_string(&mut out, row.detail.as_str());
            out.push_str("}\n");
        }
        drop(staged);
        let mut w = self.writer.lock().expect("tracer jsonl writer");
        let _ = w.write_all(out.as_bytes());
    }
}

struct Inner {
    epoch: Instant,
    next_id: AtomicU64,
    sink: Option<Sink>,
    metrics: MetricsRegistry,
    threads: Mutex<HashMap<std::thread::ThreadId, u64>>,
    next_thread: AtomicU64,
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Some(Sink::Jsonl(sink)) = &self.sink {
            sink.write_staged();
            if let Ok(mut w) = sink.writer.lock() {
                let _ = w.flush();
            }
        }
    }
}

thread_local! {
    /// The per-thread stack of open span ids (spans are strict LIFO
    /// guards). Shared across tracers on one thread; in practice one
    /// tracer is live per run, and parentage degrades gracefully if not.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };

    /// Memo of this thread's small id for the last tracer it emitted
    /// through, so the hot emit path skips the registry mutex after the
    /// first row. The `Weak` pins the `Inner` allocation, making the
    /// address comparison a sound identity check (no ABA on realloc).
    static THREAD_ID_CACHE: RefCell<Option<(std::sync::Weak<Inner>, u64)>> =
        const { RefCell::new(None) };
}

/// The tracing handle. Clone freely — clones share the same sink, id
/// counter, and metrics registry.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(inner) => write!(
                f,
                "Tracer(enabled, sink: {})",
                match inner.sink {
                    None => "none",
                    Some(Sink::Ring { .. }) => "ring",
                    Some(Sink::Jsonl(_)) => "jsonl",
                }
            ),
        }
    }
}

impl Tracer {
    /// The no-op tracer: no allocation, every operation an early return.
    /// This is also [`Tracer::default`].
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer that keeps the most recent `capacity` rows in memory
    /// (drain with [`ring_events`](Self::ring_events)).
    pub fn ring(capacity: usize) -> Tracer {
        Tracer::with_sink(Some(Sink::Ring {
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity: capacity.max(1),
        }))
    }

    /// A tracer whose metrics registry is live but which records no spans
    /// or events — for `--metrics` without `--trace`.
    pub fn metrics_only() -> Tracer {
        Tracer::with_sink(None)
    }

    /// A tracer appending JSONL rows to a fresh file at `path` (parent
    /// directories are created; an existing file is truncated — overwrite
    /// policy is the caller's, see the CLI's `--force`).
    ///
    /// # Errors
    ///
    /// Any I/O error from directory creation or opening the file.
    pub fn to_jsonl(path: impl AsRef<Path>) -> io::Result<Tracer> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        Ok(Tracer::with_sink(Some(Sink::Jsonl(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            staged: Mutex::new(Vec::with_capacity(STAGE_ROWS)),
        }))))
    }

    fn with_sink(sink: Option<Sink>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(0),
                sink,
                metrics: MetricsRegistry::new(),
                threads: Mutex::new(HashMap::new()),
                next_thread: AtomicU64::new(0),
            })),
        }
    }

    /// `false` only for [`Tracer::disabled`] — instruments are live.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// `true` when spans/events are actually recorded somewhere (a ring or
    /// JSONL sink is attached). Use to gate *expensive* detail formatting;
    /// plain span guards are cheap enough to create unconditionally.
    pub fn recording(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.sink.is_some())
    }

    /// Opens a span. Close it by dropping the returned guard (strict LIFO
    /// per thread). Names are `&'static str` so a span guard never
    /// allocates — instrumentation points name themselves with literals.
    pub fn span(&self, name: &'static str) -> Span {
        self.span_with(name, 0, "")
    }

    /// Opens a span with an integer payload and a detail label.
    pub fn span_with(&self, name: &'static str, value: i64, detail: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                tracer: Tracer::disabled(),
                id: 0,
                name: "",
            };
        };
        if inner.sink.is_none() {
            // Metrics-only: spans cost nothing and record nothing.
            return Span {
                tracer: Tracer::disabled(),
                id: 0,
                name: "",
            };
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied().unwrap_or(0);
            stack.push(id);
            parent
        });
        self.emit(KIND_OPEN, name, id, parent, value, detail);
        Span {
            tracer: self.clone(),
            id,
            name,
        }
    }

    /// Records a point event.
    pub fn event(&self, name: &'static str, value: i64, detail: &str) {
        let Some(inner) = &self.inner else { return };
        if inner.sink.is_none() {
            return;
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let parent = SPAN_STACK.with(|stack| stack.borrow().last().copied().unwrap_or(0));
        self.emit(KIND_EVENT, name, id, parent, value, detail);
    }

    fn emit(
        &self,
        kind: &'static str,
        name: &'static str,
        id: u64,
        parent: u64,
        value: i64,
        detail: &str,
    ) {
        let Some(inner) = &self.inner else { return };
        let Some(sink) = &inner.sink else { return };
        let thread = THREAD_ID_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            match cache.as_ref() {
                Some((weak, id)) if std::ptr::eq(weak.as_ptr(), Arc::as_ptr(inner)) => *id,
                _ => {
                    let tid = std::thread::current().id();
                    let mut map = inner.threads.lock().expect("tracer thread map");
                    let id = *map
                        .entry(tid)
                        .or_insert_with(|| inner.next_thread.fetch_add(1, Ordering::Relaxed));
                    drop(map);
                    *cache = Some((Arc::downgrade(inner), id));
                    id
                }
            }
        });
        let t_ns = u64::try_from(inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        match sink {
            Sink::Ring { buf, capacity } => {
                let row = TraceEvent {
                    kind: kind.to_string(),
                    name: name.to_string(),
                    id,
                    parent,
                    thread,
                    t_ns,
                    value,
                    detail: detail.to_string(),
                };
                let mut buf = buf.lock().expect("tracer ring");
                if buf.len() >= *capacity {
                    buf.pop_front();
                }
                buf.push_back(row);
            }
            Sink::Jsonl(sink) => {
                let full = {
                    let mut staged = sink.staged.lock().expect("tracer staged rows");
                    staged.push(Staged {
                        kind,
                        name,
                        id,
                        parent,
                        thread,
                        t_ns,
                        value,
                        detail: Detail::new(detail),
                    });
                    staged.len() >= STAGE_ROWS
                };
                if full {
                    sink.write_staged();
                }
            }
        }
    }

    fn close_span(&self, id: u64, name: &'static str) {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Strict LIFO in correct use; search from the top to stay
            // robust if a guard outlives its parent.
            if let Some(pos) = stack.iter().rposition(|&open| open == id) {
                stack.remove(pos);
            }
        });
        let parent = SPAN_STACK.with(|stack| stack.borrow().last().copied().unwrap_or(0));
        self.emit(KIND_CLOSE, name, id, parent, 0, "");
    }

    /// A named monotonic counter from the embedded registry; a no-op
    /// handle when the tracer is disabled. Resolve once outside hot loops.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::noop(),
            Some(inner) => inner.metrics.counter(name),
        }
    }

    /// Adds `delta` to the named counter (a one-shot convenience for cold
    /// paths; use [`counter`](Self::counter) handles in loops).
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter(name).add(delta);
        }
    }

    /// Sets the named counter to an absolute value (for publishing an
    /// already-aggregated snapshot, e.g. `SearchStats`).
    pub fn set(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter(name).set(value);
        }
    }

    /// A named histogram from the embedded registry; no-op when disabled.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        match &self.inner {
            None => HistogramHandle::noop(),
            Some(inner) => inner.metrics.histogram(name),
        }
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.histogram(name).observe(value);
        }
    }

    /// A point-in-time snapshot of the metrics registry (`None` when the
    /// tracer is disabled).
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|inner| inner.metrics.snapshot())
    }

    /// Drains and returns the ring buffer's rows (empty for other sinks).
    pub fn ring_events(&self) -> Vec<TraceEvent> {
        match self.inner.as_ref().map(|inner| &inner.sink) {
            Some(Some(Sink::Ring { buf, .. })) => {
                buf.lock().expect("tracer ring").drain(..).collect()
            }
            _ => Vec::new(),
        }
    }

    /// Flushes a JSONL sink to disk (no-op otherwise).
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        if let Some(inner) = &self.inner {
            if let Some(Sink::Jsonl(sink)) = &inner.sink {
                sink.write_staged();
                sink.writer.lock().expect("tracer jsonl writer").flush()?;
            }
        }
        Ok(())
    }
}

/// An open span; dropping it emits the matching close row. Obtained from
/// [`Tracer::span`]. Spans must close in LIFO order per thread (guard
/// scoping gives this for free).
pub struct Span {
    tracer: Tracer,
    id: u64,
    name: &'static str,
}

impl Span {
    /// The span's sequence id (0 for a disabled tracer's no-op span).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Records a point event inside this span (same as calling
    /// [`Tracer::event`] while the span is open on this thread).
    pub fn event(&self, name: &'static str, value: i64, detail: &str) {
        self.tracer.event(name, value, detail);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id != 0 {
            self.tracer.close_span(self.id, self.name);
        }
    }
}

/// Appends `v` in decimal without going through `fmt` (which dominates the
/// cost of a row at trace rates).
fn push_u64(out: &mut String, mut v: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&digits[i..]).expect("ascii digits"));
}

/// Appends `v` in decimal (see [`push_u64`]).
fn push_i64(out: &mut String, v: i64) {
    if v < 0 {
        out.push('-');
    }
    push_u64(out, v.unsigned_abs());
}

/// Appends `s` as a JSON string literal (quotes included) to `out`.
///
/// Matches `serde_json`'s escaping: the two mandatory escapes, the short
/// forms for the common control characters, and `\u00XX` for the rest.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    if s.bytes().all(|b| b != b'"' && b != b'\\' && b >= 0x20) {
        // Fast path: nothing to escape (true of every built-in span and
        // counter name and almost every detail string).
        out.push_str(s);
        out.push('"');
        return;
    }
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert!(!t.recording());
        let span = t.span_with("x", 7, "d");
        assert_eq!(span.id(), 0);
        t.event("e", 1, "");
        t.add("c", 5);
        t.observe("h", 3);
        assert!(t.snapshot().is_none());
        assert!(t.ring_events().is_empty());
        t.flush().unwrap();
    }

    #[test]
    fn ring_records_nested_spans_with_parents() {
        let t = Tracer::ring(64);
        {
            let _outer = t.span("outer");
            t.event("tick", 42, "x");
            {
                let _inner = t.span_with("inner", 3, "lvl");
            }
        }
        let rows = t.ring_events();
        assert_eq!(rows.len(), 5, "{rows:?}");
        assert_eq!(rows[0].kind, KIND_OPEN);
        assert_eq!(rows[0].name, "outer");
        assert_eq!(rows[0].parent, 0);
        assert_eq!(rows[1].name, "tick");
        assert_eq!(rows[1].parent, rows[0].id);
        assert_eq!(rows[1].value, 42);
        assert_eq!(rows[2].kind, KIND_OPEN);
        assert_eq!(rows[2].name, "inner");
        assert_eq!(rows[2].parent, rows[0].id);
        assert_eq!(rows[2].value, 3);
        assert_eq!(rows[3].kind, KIND_CLOSE);
        assert_eq!(rows[3].id, rows[2].id);
        assert_eq!(rows[4].kind, KIND_CLOSE);
        assert_eq!(rows[4].id, rows[0].id);
        // Timestamps are monotone, ids deterministic from 1.
        assert!(rows.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert_eq!(rows[0].id, 1);
    }

    #[test]
    fn ring_capacity_drops_oldest() {
        let t = Tracer::ring(2);
        t.event("a", 0, "");
        t.event("b", 0, "");
        t.event("c", 0, "");
        let names: Vec<_> = t.ring_events().into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn metrics_only_counts_without_recording() {
        let t = Tracer::metrics_only();
        assert!(t.enabled());
        assert!(!t.recording());
        let c = t.counter("work");
        c.add(2);
        c.add(3);
        t.observe("sizes", 100);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.counter("work"), Some(5));
        assert_eq!(snap.histograms.len(), 1);
        // Spans/events silently vanish.
        let _s = t.span("quiet");
        t.event("quiet", 0, "");
        assert!(t.ring_events().is_empty());
    }

    #[test]
    fn jsonl_round_trips_through_serde() {
        let dir = std::env::temp_dir().join(format!("rcn-obs-trace-{}", std::process::id()));
        let path = dir.join("t.jsonl");
        let t = Tracer::to_jsonl(&path).unwrap();
        {
            let _s = t.span_with("alpha", 1, "one");
            t.event("beta", -2, "two \"quoted\"");
            t.event("gamma", 3, "tab\t newline\n back\\slash \u{1} ünïcode");
        }
        t.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let rows: Vec<TraceEvent> = text
            .lines()
            .map(|line| serde_json::from_str(line).expect("every line parses"))
            .collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[1].value, -2);
        assert_eq!(rows[1].detail, "two \"quoted\"");
        assert_eq!(rows[2].detail, "tab\t newline\n back\\slash \u{1} ünïcode");
        assert_eq!(rows[3].kind, KIND_CLOSE);
        // The hand-rendered rows match the derive-based serializer exactly.
        for (line, row) in text.lines().zip(&rows) {
            assert_eq!(line, serde_json::to_string(row).unwrap());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn thread_ids_are_small_and_distinct() {
        let t = Tracer::ring(16);
        t.event("main", 0, "");
        std::thread::scope(|scope| {
            let t2 = t.clone();
            scope.spawn(move || t2.event("worker", 0, ""));
        });
        let rows = t.ring_events();
        assert_eq!(rows.len(), 2);
        assert_ne!(rows[0].thread, rows[1].thread);
        assert!(rows.iter().all(|r| r.thread < 2));
    }
}
