//! The counter/histogram metrics registry.
//!
//! A [`MetricsRegistry`] is the always-on half of a [`Tracer`]: named
//! monotonic [`Counter`]s and log₂-bucketed [`HistogramHandle`]s that hot
//! loops bump through pre-resolved `Arc` handles. A [`MetricsSnapshot`]
//! freezes the registry into plain sorted vectors with serde derives, so
//! the CLI's `--metrics` flag can render it as aligned text or one JSON
//! object, and `BenchRecord` can embed it verbatim.
//!
//! [`Tracer`]: crate::Tracer

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ buckets a histogram keeps (covers the full `u64` range).
const BUCKETS: usize = 65;

/// A pre-resolved handle to one named counter. Cloning shares the cell;
/// a handle from a disabled tracer is a no-op. All operations are relaxed
/// atomics — counters are for accounting, not synchronization.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// The inert handle (what disabled tracers hand out).
    pub fn noop() -> Counter {
        Counter { cell: None }
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Overwrites the value (for publishing externally-aggregated totals).
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// The current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Lock-free histogram storage: log₂ buckets plus count/sum/min/max.
#[derive(Debug)]
pub(crate) struct Histo {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histo {
    fn new() -> Histo {
        Histo {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: 0 holds exactly 0, bucket `k ≥ 1` holds
    /// `[2^(k-1), 2^k)`.
    fn bucket(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Upper bound reported for a bucket (the quantile approximation).
    fn bucket_upper(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    fn observe(&self, value: u64) {
        self.buckets[Self::bucket(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The smallest bucket upper bound at or above quantile `q` (0..=1).
    fn quantile(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Never report past the observed extremes.
                return Self::bucket_upper(index).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    fn entry(&self, name: &str) -> HistogramEntry {
        let count = self.count.load(Ordering::Relaxed);
        HistogramEntry {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// A pre-resolved handle to one named histogram; no-op when obtained from
/// a disabled tracer.
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle {
    histo: Option<Arc<Histo>>,
}

impl HistogramHandle {
    /// The inert handle.
    pub fn noop() -> HistogramHandle {
        HistogramHandle { histo: None }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        if let Some(histo) = &self.histo {
            histo.observe(value);
        }
    }
}

/// Named counters and histograms, created on first use. The registry is
/// embedded in every enabled [`Tracer`](crate::Tracer); it can also stand
/// alone (e.g. in tests).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histo>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The named counter, created at 0 on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("metrics counters");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// The named histogram, created empty on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self.histograms.lock().expect("metrics histograms");
        let histo = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histo::new()));
        HistogramHandle {
            histo: Some(Arc::clone(histo)),
        }
    }

    /// Freezes the registry into sorted, serializable vectors.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics counters")
            .iter()
            .map(|(name, cell)| CounterEntry {
                name: name.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics histograms")
            .iter()
            .map(|(name, histo)| histo.entry(name))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// One counter's name and value in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// The counter's registered name.
    pub name: String,
    /// The value at snapshot time.
    pub value: u64,
}

/// One histogram's summary in a snapshot. Quantiles are log₂-bucket upper
/// bounds, clamped to the observed max.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// The histogram's registered name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Approximate 50th-percentile value.
    pub p50: u64,
    /// Approximate 90th-percentile value.
    pub p90: u64,
    /// Approximate 99th-percentile value.
    pub p99: u64,
}

/// A frozen registry: sorted counters and histograms, serde-round-trippable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramEntry>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// The named counter's value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|entry| entry.name == name)
            .map(|entry| entry.value)
    }

    /// Appends a counter entry, keeping name order (for building snapshots
    /// by hand from an existing stats struct).
    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        let entry = CounterEntry {
            name: name.into(),
            value,
        };
        let at = self
            .counters
            .partition_point(|existing| existing.name <= entry.name);
        self.counters.insert(at, entry);
    }

    /// `true` when the snapshot holds no instruments at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Aligned human-readable rendering (counters, then histograms).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let width = self
                .counters
                .iter()
                .map(|entry| entry.name.len())
                .max()
                .unwrap_or(0);
            for entry in &self.counters {
                let _ = writeln!(out, "{:width$}  {}", entry.name, entry.value);
            }
        }
        if !self.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            for histogram in &self.histograms {
                let _ = writeln!(
                    out,
                    "{}  count={} sum={} min={} max={} p50={} p90={} p99={}",
                    histogram.name,
                    histogram.count,
                    histogram.sum,
                    histogram.min,
                    histogram.max,
                    histogram.p50,
                    histogram.p90,
                    histogram.p99,
                );
            }
        }
        out
    }

    /// The snapshot as one compact JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("metrics snapshots always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let registry = MetricsRegistry::new();
        registry.counter("zeta").add(3);
        let alpha = registry.counter("alpha");
        alpha.incr();
        alpha.incr();
        // Re-resolving the same name shares the cell.
        registry.counter("zeta").add(4);
        let snap = registry.snapshot();
        let names: Vec<_> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(snap.counter("alpha"), Some(2));
        assert_eq!(snap.counter("zeta"), Some(7));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn counter_set_overwrites() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("gauge");
        c.add(10);
        c.set(3);
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn noop_handles_are_inert() {
        let c = Counter::noop();
        c.add(5);
        c.set(9);
        assert_eq!(c.get(), 0);
        let h = HistogramHandle::noop();
        h.observe(1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        assert_eq!(Histo::bucket(0), 0);
        assert_eq!(Histo::bucket(1), 1);
        assert_eq!(Histo::bucket(2), 2);
        assert_eq!(Histo::bucket(3), 2);
        assert_eq!(Histo::bucket(4), 3);
        assert_eq!(Histo::bucket(u64::MAX), 64);

        let registry = MetricsRegistry::new();
        let h = registry.histogram("depth");
        for v in [1u64, 2, 2, 3, 8] {
            h.observe(v);
        }
        let snap = registry.snapshot();
        let entry = &snap.histograms[0];
        assert_eq!(entry.name, "depth");
        assert_eq!(entry.count, 5);
        assert_eq!(entry.sum, 16);
        assert_eq!(entry.min, 1);
        assert_eq!(entry.max, 8);
        // p50 falls in the [2,4) bucket → upper bound 3.
        assert_eq!(entry.p50, 3);
        // p99 is the top observation's bucket, clamped to max.
        assert_eq!(entry.p99, 8);
    }

    #[test]
    fn empty_histogram_entry_is_zeroed() {
        let registry = MetricsRegistry::new();
        let _ = registry.histogram("empty");
        let entry = &registry.snapshot().histograms[0];
        assert_eq!((entry.count, entry.min, entry.max, entry.p50), (0, 0, 0, 0));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let registry = MetricsRegistry::new();
        registry.counter("a").add(1);
        registry.histogram("h").observe(42);
        let snap = registry.snapshot();
        let json = snap.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parse back");
        assert_eq!(back, snap);
    }

    #[test]
    fn push_counter_keeps_order() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("m", 1);
        snap.push_counter("a", 2);
        snap.push_counter("z", 3);
        let names: Vec<_> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn render_text_aligns_counters() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("short", 1);
        snap.push_counter("much.longer.name", 22);
        let text = snap.render_text();
        assert!(text.contains("short             1"), "{text}");
        assert!(text.contains("much.longer.name  22"), "{text}");
    }
}
