//! # rcn-obs — observability for the rcn workspace
//!
//! Structured tracing, a metrics registry, and trace profiling: the
//! substrate the search engine, disk cache, crash explorer, and threaded
//! runtime report through, and that `rcn serve` will one day surface
//! per-request.
//!
//! Three layers:
//!
//! * [`Tracer`] / [`Span`] / [`TraceEvent`] — hierarchical spans and point
//!   events with monotonic timestamps, per-tracer thread ids, and
//!   deterministic sequence ids, recorded to an in-memory ring or an
//!   append-only JSONL file. [`Tracer::disabled`] is a true no-op (no
//!   allocation, no global state), so instrumented code keeps a tracer
//!   field unconditionally.
//! * [`MetricsRegistry`] / [`Counter`] / [`HistogramHandle`] — named
//!   instruments behind pre-resolved atomic handles, frozen into a
//!   serializable [`MetricsSnapshot`] for `--metrics` and `BenchRecord`.
//! * [`ProfileReport`] / [`parse_jsonl`] — aggregation of a recorded
//!   trace back into a per-span breakdown (calls, total vs self time,
//!   p50/p99) for `rcn profile <trace.jsonl>`.
//!
//! The contract with the instrumented layers: observability must never
//! perturb results. The tracer only reads the computation it watches; the
//! workspace's transparency tests pin verdict bit-identity with tracing
//! on vs off.
//!
//! ```
//! use rcn_obs::{ProfileReport, Tracer};
//!
//! let tracer = Tracer::ring(1024);
//! {
//!     let _level = tracer.span_with("engine.level", 2, "discerning");
//!     tracer.counter("engine.partitions_tested").add(17);
//! }
//! let report = ProfileReport::build(&tracer.ring_events());
//! assert_eq!(report.rows[0].name, "engine.level");
//! assert_eq!(
//!     tracer.snapshot().unwrap().counter("engine.partitions_tested"),
//!     Some(17)
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod profile;
mod trace;

pub use metrics::{
    Counter, CounterEntry, HistogramEntry, HistogramHandle, MetricsRegistry, MetricsSnapshot,
};
pub use profile::{parse_jsonl, ProfileError, ProfileReport, ProfileRow};
pub use trace::{Span, TraceEvent, Tracer, KIND_CLOSE, KIND_EVENT, KIND_OPEN};
