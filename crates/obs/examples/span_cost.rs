//! Microbenchmark: cost of one span guard (open + close) per sink.
//!
//! Run with `cargo run --release -p rcn-obs --example span_cost`.
use rcn_obs::Tracer;
use std::time::Instant;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);
    for mode in ["jsonl", "ring", "metrics", "disabled"] {
        let t = match mode {
            "jsonl" => Tracer::to_jsonl(std::env::temp_dir().join("rcn-span-cost.jsonl"))
                .expect("open trace file"),
            "ring" => Tracer::ring(1 << 10),
            "metrics" => Tracer::metrics_only(),
            _ => Tracer::disabled(),
        };
        let start = Instant::now();
        for i in 0..n {
            let _s = t.span_with("engine.analysis", i as i64, "scratch");
        }
        t.flush().expect("flush");
        let el = start.elapsed();
        println!(
            "{mode:>9}: {:.0} ns/span (open+close)",
            el.as_nanos() as f64 / n as f64
        );
    }
}
