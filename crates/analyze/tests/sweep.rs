//! Empirical sweep: the shipped zoo and the recoverable protocols must
//! lint clean (no errors; warnings only where pinned below).

use rcn_analyze::{ExploreConfig, Registry, Severity};
use rcn_spec::zoo;

fn report_for(ty: &dyn rcn_spec::ObjectType) -> rcn_analyze::Report {
    Registry::with_defaults().lint_type(ty)
}

#[test]
fn zoo_types_lint_clean() {
    let types: Vec<(&str, Box<dyn rcn_spec::ObjectType>)> = vec![
        ("sticky", Box::new(zoo::StickyBit::new())),
        ("consensus", Box::new(zoo::ConsensusObject::new())),
        ("tas", Box::new(zoo::TestAndSet::new())),
        ("register:3", Box::new(zoo::Register::new(3))),
        ("faa:4", Box::new(zoo::FetchAndAdd::new(4))),
        ("swap:3", Box::new(zoo::Swap::new(3))),
        ("cas:3", Box::new(zoo::CompareAndSwap::new(3))),
        ("queue:2,2", Box::new(zoo::BoundedQueue::new(2, 2))),
        ("stack:2,2", Box::new(zoo::BoundedStack::new(2, 2))),
        ("multi:3", Box::new(zoo::MultiConsensus::new(3))),
        ("team:3", Box::new(zoo::TeamCounter::new(3))),
        (
            "xn:4",
            Box::new(rcn_core::shipped_xn(4).expect("shipped X_4")),
        ),
        ("tnn:5,2", Box::new(zoo::Tnn::new(5, 2))),
        (
            "tas+read",
            Box::new(zoo::WithRead::new(zoo::TestAndSet::new())),
        ),
    ];
    for (name, ty) in &types {
        let report = report_for(ty.as_ref());
        println!("=== {name} ===");
        print!("{}", report.render_text());
        assert_eq!(report.errors(), 0, "{name} has lint errors");
        assert_eq!(report.warnings(), 0, "{name} has lint warnings");
    }
}

#[test]
fn recoverable_protocols_lint_clean() {
    use rcn_protocols::{TnnRecoverable, TournamentConsensus};
    use std::sync::Arc;

    let reg = Registry::with_defaults();
    let cfg = ExploreConfig::default();

    let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
    let report = reg.lint_system(&sys, &cfg);
    println!("=== tnn-recoverable ===");
    print!("{}", report.render_text());
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 0);

    let sys = TournamentConsensus::try_new(Arc::new(zoo::StickyBit::new()), vec![1, 0, 1]).unwrap();
    let report = reg.lint_system(&sys, &cfg);
    println!("=== tournament/sticky ===");
    print!("{}", report.render_text());
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 0);
}

#[test]
fn broken_baselines_diverge_under_crashes() {
    use rcn_protocols::{TasConsensus, TnnWaitFree};

    let reg = Registry::with_defaults();
    let cfg = ExploreConfig::default();

    // T_{2,1}: the smallest family member, where two crashes already burn
    // the counter to s_⊥ (larger n needs a crash budget of about n).
    for (name, sys) in [
        ("tas-consensus", TasConsensus::system(vec![0, 1])),
        ("tnn-wait-free", TnnWaitFree::system(2, 1, vec![0, 1])),
    ] {
        let report = reg.lint_system(&sys, &cfg);
        println!("=== {name} ===");
        print!("{}", report.render_text());
        assert_eq!(report.errors(), 0, "{name}");
        assert!(
            report.diagnostics.iter().any(|d| d.code == "RCN104"
                && d.severity == Severity::Warn
                && d.message.contains("outputs")),
            "{name} should exhibit solo crash divergence"
        );
    }
}
