//! Golden tests: every lint code fires on a deliberately broken input,
//! with its code, severity, and message pinned.
//!
//! Broken tables enter through `serde_json::from_str`, which (unlike
//! `TableTypeBuilder::build`) performs no validation — exactly the door a
//! hand-edited `table:FILE` would come through.

use rcn_analyze::{ExploreConfig, Registry, Report, Severity};
use rcn_model::{Action, HeapLayout, LocalState, ProcessId, Program, System};
use rcn_spec::zoo::{Register, StickyBit, TestAndSet};
use rcn_spec::{ObjectType, Outcome, Response, TableType, ValueId};
use std::sync::Arc;

fn lint(ty: &dyn ObjectType) -> Report {
    Registry::with_defaults().lint_type(ty)
}

fn lint_sys(sys: &System) -> Report {
    Registry::with_defaults().lint_system(sys, &ExploreConfig::default())
}

/// A diagnostic with this code, severity, and message fragment exists.
fn pin(report: &Report, code: &str, severity: Severity, fragment: &str) {
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == code && d.severity == severity && d.message.contains(fragment)),
        "no {code} {severity:?} diagnostic containing {fragment:?} in:\n{}",
        report.render_text()
    );
}

/// An unvalidated table with an out-of-range response (cell v0/op0) and an
/// out-of-range next value (cell v1/op0).
const BROKEN_TABLE_JSON: &str = r#"{
  "name": "broken",
  "num_values": 2,
  "num_ops": 1,
  "num_responses": 2,
  "table": [
    [ { "response": 9, "next": 0 } ],
    [ { "response": 0, "next": 5 } ]
  ],
  "value_names": ["v0", "v1"],
  "op_names": ["op0"],
  "response_names": ["r0", "r1"]
}"#;

#[test]
fn rcn001_closedness_errors_are_pinned() {
    let table: TableType = serde_json::from_str(BROKEN_TABLE_JSON).unwrap();
    assert!(table.validate().is_err(), "the fixture must be invalid");
    let report = lint(&table);
    assert_eq!(report.errors(), 2);
    pin(
        &report,
        "RCN001",
        Severity::Error,
        "returns out-of-range response r9 (type has 2 responses)",
    );
    pin(
        &report,
        "RCN001",
        Severity::Error,
        "targets out-of-range value v5 (type has 2 values)",
    );
    // Closedness gates the rest: nothing but RCN001 in the report.
    assert!(report.diagnostics.iter().all(|d| d.code == "RCN001"));
}

#[test]
fn rcn001_panicking_apply_is_reported_not_propagated() {
    struct Panicky;
    impl ObjectType for Panicky {
        fn name(&self) -> String {
            "panicky".into()
        }
        fn num_values(&self) -> usize {
            1
        }
        fn num_ops(&self) -> usize {
            1
        }
        fn num_responses(&self) -> usize {
            1
        }
        fn apply(&self, _v: ValueId, _op: rcn_spec::OpId) -> Outcome {
            panic!("spec hole")
        }
    }
    let report = lint(&Panicky);
    pin(&report, "RCN001", Severity::Error, "panicked: spec hole");
}

#[test]
fn rcn002_unreachable_values_are_pinned() {
    // v0 is the only source; v1 and v2 feed each other and are unreachable.
    let mut b = TableType::builder("island", 3, 1, 1);
    b.set(0, 0, Outcome::new(Response(0), ValueId(0)));
    b.set(1, 0, Outcome::new(Response(0), ValueId(2)));
    b.set(2, 0, Outcome::new(Response(0), ValueId(1)));
    let report = lint(&b.build().unwrap());
    pin(
        &report,
        "RCN002",
        Severity::Warn,
        "unreachable from every candidate initial value (v0)",
    );
    assert_eq!(report.warnings(), 2);
}

#[test]
fn rcn003_dead_responses_are_pinned() {
    let mut b = TableType::builder("gappy", 1, 1, 3);
    b.set(0, 0, Outcome::new(Response(2), ValueId(0)));
    let report = lint(&b.build().unwrap());
    pin(&report, "RCN003", Severity::Info, "never returned");
}

#[test]
fn rcn004_duplicate_ops_are_pinned() {
    let mut b = TableType::builder("dup", 2, 2, 2);
    for v in 0..2u16 {
        for op in 0..2u16 {
            b.set(v, op, Outcome::new(Response(v), ValueId(v)));
        }
    }
    let report = lint(&b.build().unwrap());
    pin(
        &report,
        "RCN004",
        Severity::Info,
        "op1 is indistinguishable from op0",
    );
}

#[test]
fn rcn005_readability_verdicts_are_pinned() {
    // TAS read: certified with an explicit value↦response witness.
    pin(
        &lint(&TestAndSet::new()),
        "RCN005",
        Severity::Info,
        "certified readable",
    );
    // A write-only register variant refutes: writes mutate.
    let mut b = TableType::builder("write-only", 2, 2, 1);
    for v in 0..2u16 {
        for op in 0..2u16 {
            b.set(v, op, Outcome::new(Response(0), ValueId(op)));
        }
    }
    pin(
        &lint(&b.build().unwrap()),
        "RCN005",
        Severity::Info,
        "not readable",
    );
}

#[test]
fn rcn006_idempotent_ops_are_pinned() {
    pin(
        &lint(&Register::new(2)),
        "RCN006",
        Severity::Info,
        "crash-retry safe (idempotent in value and response)",
    );
}

/// A program whose local state grows without bound: the exploration
/// truncates (RCN100) rather than spinning.
struct Unbounded {
    object: rcn_model::ObjectId,
}
impl Program for Unbounded {
    fn name(&self) -> String {
        "unbounded".into()
    }
    fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
        LocalState::word1(input)
    }
    fn action(&self, _pid: ProcessId, _state: &LocalState) -> Action {
        Action::Invoke {
            object: self.object,
            op: rcn_spec::OpId(2), // read
        }
    }
    fn transition(&self, _pid: ProcessId, state: &LocalState, _r: Response) -> LocalState {
        LocalState::word1(state.word(0) + 1)
    }
}

fn register_layout() -> (Arc<HeapLayout>, rcn_model::ObjectId) {
    let mut layout = HeapLayout::new();
    let object = layout.add_object("R", Arc::new(Register::new(2)), ValueId(0));
    (Arc::new(layout), object)
}

#[test]
fn rcn100_truncation_is_pinned() {
    let (layout, object) = register_layout();
    let sys = System::new_unchecked(Arc::new(Unbounded { object }), layout, vec![0]);
    let cfg = ExploreConfig {
        max_states: 16,
        ..ExploreConfig::default()
    };
    let report = Registry::with_defaults().lint_system(&sys, &cfg);
    pin(
        &report,
        "RCN100",
        Severity::Info,
        "abstract state space exceeds the bound",
    );
}

/// A program that can never output: it rewrites the register forever.
struct Spinner {
    object: rcn_model::ObjectId,
}
impl Program for Spinner {
    fn name(&self) -> String {
        "spinner".into()
    }
    fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
        LocalState::word1(input)
    }
    fn action(&self, _pid: ProcessId, _state: &LocalState) -> Action {
        Action::Invoke {
            object: self.object,
            op: rcn_spec::OpId(0),
        }
    }
    fn transition(&self, _pid: ProcessId, state: &LocalState, _r: Response) -> LocalState {
        state.clone()
    }
}

#[test]
fn rcn101_no_output_path_is_pinned() {
    let (layout, object) = register_layout();
    let sys = System::new_unchecked(Arc::new(Spinner { object }), layout, vec![0]);
    let report = lint_sys(&sys);
    pin(
        &report,
        "RCN101",
        Severity::Warn,
        "can never reach an output state",
    );
}

/// A program that panics on a feasible response: TAS `test&set` can return
/// r1 (on a set bit), which this transition does not handle.
struct Partial {
    object: rcn_model::ObjectId,
}
impl Program for Partial {
    fn name(&self) -> String {
        "partial".into()
    }
    fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
        LocalState::from_words([input, 0, 0])
    }
    fn action(&self, _pid: ProcessId, state: &LocalState) -> Action {
        match state.word(1) {
            0 => Action::Invoke {
                object: self.object,
                op: rcn_spec::OpId(0),
            },
            _ => Action::Output(state.word(2)),
        }
    }
    fn transition(&self, _pid: ProcessId, state: &LocalState, r: Response) -> LocalState {
        match r.index() {
            0 => LocalState::from_words([state.word(0), 1, state.word(0)]),
            other => panic!("unhandled response r{other}"),
        }
    }
}

#[test]
fn rcn102_transition_panic_is_pinned() {
    let mut layout = HeapLayout::new();
    let object = layout.add_object("T", Arc::new(TestAndSet::new()), ValueId(0));
    let sys = System::new_unchecked(Arc::new(Partial { object }), Arc::new(layout), vec![0]);
    let report = lint_sys(&sys);
    pin(
        &report,
        "RCN102",
        Severity::Error,
        "transition panics on feasible response r1",
    );
    pin(&report, "RCN102", Severity::Error, "unhandled response r1");
}

#[test]
fn rcn103_dead_object_is_pinned() {
    // OutputInput decides immediately; the sticky bit in the layout is
    // never touched.
    let mut layout = HeapLayout::new();
    layout.add_object("S", Arc::new(StickyBit::new()), ValueId(0));
    let sys = System::new_unchecked(
        Arc::new(rcn_model::OutputInput),
        Arc::new(layout),
        vec![3, 3],
    );
    let report = lint_sys(&sys);
    pin(&report, "RCN103", Severity::Warn, "is never accessed");
}

#[test]
fn rcn104_crash_divergence_is_pinned() {
    let sys = rcn_protocols::TnnWaitFree::system(2, 1, vec![0, 1]);
    let report = lint_sys(&sys);
    pin(
        &report,
        "RCN104",
        Severity::Warn,
        "along the crash schedule",
    );
    let sys = rcn_protocols::TasConsensus::system(vec![0, 1]);
    let report = lint_sys(&sys);
    pin(
        &report,
        "RCN104",
        Severity::Warn,
        "along the crash schedule",
    );
}

fn synthetic_counterexample() -> rcn_faults::Counterexample {
    rcn_faults::Counterexample {
        schedule: rcn_model::Schedule::of_steps([ProcessId(0)]),
        violation: rcn_model::Violation::Agreement {
            process: ProcessId(0),
            output: 1,
            earlier: 0,
        },
        divergence: None,
    }
}

fn clean_mc_report() -> rcn_mc::McReport {
    rcn_mc::McReport {
        stats: rcn_mc::McStats::default(),
        coverage: rcn_mc::Coverage::Exhaustive,
        counterexample: None,
    }
}

#[test]
fn rcn200_divergence_is_pinned_in_both_directions() {
    // DFS finds a schedule the BFS checker does not...
    let dfs = rcn_faults::CrashtestReport {
        stats: rcn_faults::ExplorerStats::default(),
        counterexample: Some(synthetic_counterexample()),
    };
    let mut report = Report::new();
    rcn_analyze::compare_crashtest_verdicts(
        "x",
        "crashes=1, depth=10",
        &dfs,
        &clean_mc_report(),
        &mut report,
    );
    report.finish();
    pin(
        &report,
        "RCN200",
        Severity::Error,
        "the DFS explorer finds a violating schedule but the BFS checker certifies clean",
    );

    // ...and the converse: the BFS checker believes in a schedule the DFS
    // explorer never found.
    let clean_dfs = rcn_faults::CrashtestReport {
        stats: rcn_faults::ExplorerStats::default(),
        counterexample: None,
    };
    let cex = synthetic_counterexample();
    let bfs = rcn_mc::McReport {
        counterexample: Some(rcn_mc::McCounterexample {
            schedule: cex.schedule,
            violation: cex.violation,
        }),
        ..clean_mc_report()
    };
    let mut report = Report::new();
    rcn_analyze::compare_crashtest_verdicts(
        "x",
        "crashes=1, depth=10",
        &clean_dfs,
        &bfs,
        &mut report,
    );
    report.finish();
    pin(
        &report,
        "RCN200",
        Severity::Error,
        "the BFS checker finds `p0` but the DFS explorer certifies clean",
    );
}

#[test]
fn rcn200_agreement_certificates_are_pinned() {
    // Real run: both engines find the TAS violation.
    let sys = rcn_protocols::TasConsensus::system(vec![0, 1]);
    let report = lint_sys(&sys);
    pin(
        &report,
        "RCN200",
        Severity::Info,
        "both find a violating schedule",
    );
    // Real run: both engines certify the recoverable protocol clean.
    let sys = rcn_protocols::TnnRecoverable::system(5, 2, vec![0, 1]);
    let report = lint_sys(&sys);
    pin(&report, "RCN200", Severity::Info, "both certify clean");
}

#[test]
fn rcn201_divergence_and_agreement_are_pinned() {
    let mut report = Report::new();
    rcn_analyze::compare_valency_verdicts(
        "x",
        "z=1, clamp=2",
        "bivalent",
        "0-univalent",
        &mut report,
    );
    report.finish();
    pin(
        &report,
        "RCN201",
        Severity::Error,
        "the decider stack says the initial configuration is bivalent, the BFS checker says 0-univalent",
    );

    let mut report = Report::new();
    rcn_analyze::compare_valency_verdicts("x", "z=1, clamp=2", "bivalent", "bivalent", &mut report);
    report.finish();
    pin(
        &report,
        "RCN201",
        Severity::Info,
        "differential valency agrees at z=1, clamp=2: initial configuration is bivalent",
    );
}

#[test]
fn rcn202_budget_clip_is_pinned() {
    // A state cap of 3 clips both engines on any real protocol: the
    // comparison must be skipped with a warning, never trusted.
    let sys = rcn_protocols::TasConsensus::system(vec![0, 1]);
    let lint = rcn_analyze::CrossCrashtest {
        max_crashes: 1,
        max_depth: 10,
        max_states: 3,
    };
    let cfg = ExploreConfig::default();
    let graphs: Vec<_> = sys
        .processes()
        .into_iter()
        .map(|pid| rcn_analyze::explore_process(&sys, pid, &cfg))
        .collect();
    let mut report = Report::new();
    use rcn_analyze::ProgramLint;
    lint.check(&sys, &graphs, &cfg, &mut report);
    report.finish();
    pin(
        &report,
        "RCN202",
        Severity::Warn,
        "cross-check budget too small",
    );
    pin(
        &report,
        "RCN202",
        Severity::Warn,
        "the RCN200 comparison was skipped",
    );
    assert_eq!(report.errors(), 0, "a clipped comparison must not error");
}

#[test]
fn rcn203_bridge_verdicts_are_pinned() {
    let sys = rcn_protocols::TasConsensus::system(vec![0, 1]);

    // A schedule that violates nothing cannot clear the bridge: replay
    // finds no violation on either side, so confirmation fails.
    let benign = rcn_model::Schedule::of_steps([ProcessId(0)]);
    let mut report = Report::new();
    rcn_analyze::check_replay_bridge("test&set consensus", &sys, &benign, &mut report);
    report.finish();
    pin(
        &report,
        "RCN203",
        Severity::Error,
        "fails the abstract↔threaded replay bridge",
    );

    // The checker's real TAS counterexample must be confirmed.
    let bfs = rcn_mc::model_check(&sys, rcn_mc::McConfig::default());
    let cex = bfs.counterexample.expect("TAS diverges under one crash");
    let mut report = Report::new();
    rcn_analyze::check_replay_bridge("test&set consensus", &sys, &cex.schedule, &mut report);
    report.finish();
    pin(
        &report,
        "RCN203",
        Severity::Info,
        "confirmed by the abstract↔threaded replay bridge",
    );
}

#[test]
fn text_rendering_is_pinned() {
    let table: TableType = serde_json::from_str(BROKEN_TABLE_JSON).unwrap();
    let report = lint(&table);
    let expected = "\
error[RCN001]: outcome of op0 on v0 returns out-of-range response r9 (type has 2 responses)
  --> broken: cell (v0, op0)
  = help: keep response ids below num_responses

error[RCN001]: outcome of op0 on v1 targets out-of-range value v5 (type has 2 values)
  --> broken: cell (v1, op0)
  = help: keep next-value ids below num_values

2 errors, 0 warnings, 0 info
";
    assert_eq!(report.render_text(), expected);
}

#[test]
fn json_rendering_is_machine_readable() {
    let table: TableType = serde_json::from_str(BROKEN_TABLE_JSON).unwrap();
    let report = lint(&table);
    let json = report.render_json();
    for fragment in ["\"RCN001\"", "\"Error\"", "\"broken\"", "out-of-range"] {
        assert!(json.contains(fragment), "missing {fragment} in:\n{json}");
    }
}

#[test]
fn deny_warnings_gates_reports() {
    let mut b = TableType::builder("island", 3, 1, 1);
    b.set(0, 0, Outcome::new(Response(0), ValueId(0)));
    b.set(1, 0, Outcome::new(Response(0), ValueId(2)));
    b.set(2, 0, Outcome::new(Response(0), ValueId(1)));
    let report = lint(&b.build().unwrap());
    assert_eq!(report.errors(), 0);
    assert!(report.warnings() > 0);
    assert!(!report.should_fail(false));
    assert!(report.should_fail(true));
}
