//! Property-based robustness: the linter must never panic, and its
//! verdicts must respect basic invariants, on arbitrary valid tables.

use proptest::prelude::*;
use rcn_analyze::Registry;
use rcn_spec::{Outcome, Response, TableType, ValueId};

/// Builds a valid (closed) table from fuzz data: sizes plus a flat pool of
/// `(response, next)` seeds reduced into range.
fn build_table(nv: usize, no: usize, nr: usize, cells: &[(u16, u16)]) -> TableType {
    let mut b = TableType::builder("fuzz", nv, no, nr);
    for v in 0..nv {
        for op in 0..no {
            let (r, n) = cells[v * no + op];
            b.set(
                v as u16,
                op as u16,
                Outcome::new(Response(r % nr as u16), ValueId(n % nv as u16)),
            );
        }
    }
    b.build().expect("reduced outcomes are always in range")
}

proptest! {
    /// Linting an arbitrary valid table terminates without panicking and
    /// never reports closedness errors (the builder guarantees closure).
    #[test]
    fn linter_never_panics_on_valid_tables(
        nv in 1usize..6,
        no in 1usize..5,
        nr in 1usize..6,
        cells in prop::collection::vec((0u16..64, 0u16..64), 30),
    ) {
        let table = build_table(nv, no, nr, &cells);
        let report = Registry::with_defaults().lint_type(&table);
        prop_assert!(report.diagnostics.iter().all(|d| d.code != "RCN001"));
        prop_assert_eq!(report.errors(), 0);
    }

    /// The linter agrees with `TableType::validate` on serde round-trips:
    /// a table that validates lints without errors.
    #[test]
    fn lint_and_validate_agree_after_roundtrip(
        nv in 1usize..5,
        no in 1usize..4,
        nr in 1usize..5,
        cells in prop::collection::vec((0u16..64, 0u16..64), 20),
    ) {
        let table = build_table(nv, no, nr, &cells);
        let json = serde_json::to_string(&table).unwrap();
        let back: TableType = serde_json::from_str(&json).unwrap();
        prop_assert!(back.validate().is_ok());
        let report = Registry::with_defaults().lint_type(&back);
        prop_assert_eq!(report.errors(), 0);
    }
}
