//! Bounded abstract exploration of program state machines.
//!
//! The §4 protocols are [`rcn_model::Program`]s: deterministic per-process
//! state machines whose transitions are driven by object responses. This
//! module explores each process's local-state machine through every
//! *feasible* response of the operation it invokes — a response is
//! feasible for `(object, op)` if some value of the object's type can
//! return it — which over-approximates the set of states any real
//! execution can reach without enumerating global configurations.

use rcn_model::{Action, LocalState, ObjectId, Program, System};
use rcn_spec::{ObjectType, OpId, Response, ValueId};
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

/// Serializes panic-hook swaps across threads (lints run concurrently in
/// test binaries).
static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f`, catching panics without letting the default hook print a
/// backtrace. Returns the panic payload as a string on unwind.
pub(crate) fn silent_catch<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    let guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    panic::set_hook(prev);
    drop(guard);
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Bounds for the abstract exploration and the crash-divergence search.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum number of distinct local states explored per process.
    pub max_states: usize,
    /// Maximum number of crashes injected by the crash-divergence search.
    pub max_crashes: usize,
    /// Maximum schedule length in the crash-divergence search (also bounds
    /// its recursion depth).
    pub max_sched_steps: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 20_000,
            max_crashes: 2,
            max_sched_steps: 60,
        }
    }
}

/// A place where the program broke its totality contract during
/// exploration.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Index into [`ProcessGraph::states`] of the state involved.
    pub state: usize,
    /// The feasible response that made `transition` panic, or `None` if
    /// `action` itself panicked.
    pub response: Option<Response>,
    /// The panic payload.
    pub payload: String,
}

/// The abstract local-state machine of one process: every state reachable
/// from the initial state under feasible responses.
#[derive(Debug, Clone)]
pub struct ProcessGraph {
    /// The process's input value.
    pub input: u32,
    /// The explored states; index 0 is the initial (and post-crash) state.
    pub states: Vec<LocalState>,
    /// The pending action of each state (`None` if `action` panicked).
    pub actions: Vec<Option<Action>>,
    /// Successor state indices of each state (empty for output states).
    pub edges: Vec<Vec<usize>>,
    /// Totality violations found while exploring.
    pub panics: Vec<PanicSite>,
    /// `true` if [`ExploreConfig::max_states`] was hit and the graph is
    /// incomplete.
    pub truncated: bool,
}

impl ProcessGraph {
    /// Indices of states whose action is an output.
    pub fn output_states(&self) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&i| matches!(self.actions[i], Some(Action::Output(_))))
            .collect()
    }

    /// The set of objects invoked by any explored state.
    pub fn touched_objects(&self) -> Vec<ObjectId> {
        let mut seen: Vec<ObjectId> = self
            .actions
            .iter()
            .filter_map(|a| match a {
                Some(Action::Invoke { object, .. }) => Some(*object),
                _ => None,
            })
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen
    }

    /// States (indices) from which no path reaches an output state.
    /// Meaningful only when the graph is not [`truncated`](Self::truncated).
    pub fn states_without_output_path(&self) -> Vec<usize> {
        let n = self.states.len();
        // Reverse reachability from output states.
        let mut rev = vec![Vec::new(); n];
        for (from, succs) in self.edges.iter().enumerate() {
            for &to in succs {
                rev[to].push(from);
            }
        }
        let mut good = vec![false; n];
        let mut frontier = self.output_states();
        for &s in &frontier {
            good[s] = true;
        }
        while let Some(s) = frontier.pop() {
            for &p in &rev[s] {
                if !good[p] {
                    good[p] = true;
                    frontier.push(p);
                }
            }
        }
        (0..n).filter(|&i| !good[i]).collect()
    }
}

/// The feasible responses of `(object, op)`: every response some value of
/// the object's type can return for `op`. Returns `Err` when `op` is out
/// of range for the type (an RCN102-class totality violation).
fn feasible_responses(ty: &dyn ObjectType, op: OpId) -> Result<Vec<Response>, String> {
    if op.index() >= ty.num_ops() {
        return Err(format!(
            "op {op} is out of range for {} ({} ops)",
            ty.name(),
            ty.num_ops()
        ));
    }
    let mut responses: Vec<Response> = (0..ty.num_values())
        .map(|v| ty.apply(ValueId(v as u16), op).response)
        .collect();
    responses.sort_unstable();
    responses.dedup();
    Ok(responses)
}

/// Explores the local-state machine of process `pid` of `sys`.
pub fn explore_process(
    sys: &System,
    pid: rcn_model::ProcessId,
    cfg: &ExploreConfig,
) -> ProcessGraph {
    let program: &dyn Program = sys.program();
    let input = sys.inputs()[pid.index()];
    let initial = program.initial_state(pid, input);
    let mut graph = ProcessGraph {
        input,
        states: vec![initial.clone()],
        actions: Vec::new(),
        edges: Vec::new(),
        panics: Vec::new(),
        truncated: false,
    };
    let mut index: HashMap<LocalState, usize> = HashMap::new();
    index.insert(initial, 0);
    // Per-(object, op) feasible-response cache.
    let mut feasible: HashMap<(ObjectId, OpId), Result<Vec<Response>, String>> = HashMap::new();
    let mut cursor = 0;
    while cursor < graph.states.len() {
        let state = graph.states[cursor].clone();
        let action = silent_catch(|| program.action(pid, &state));
        let mut succs = Vec::new();
        match action {
            Err(payload) => {
                graph.panics.push(PanicSite {
                    state: cursor,
                    response: None,
                    payload,
                });
                graph.actions.push(None);
            }
            Ok(Action::Output(v)) => {
                graph.actions.push(Some(Action::Output(v)));
            }
            Ok(Action::Invoke { object, op }) => {
                graph.actions.push(Some(Action::Invoke { object, op }));
                let responses = feasible
                    .entry((object, op))
                    .or_insert_with(|| {
                        if object.index() >= sys.layout().len() {
                            Err(format!(
                                "object {object} is out of range ({} objects)",
                                sys.layout().len()
                            ))
                        } else {
                            silent_catch(|| {
                                feasible_responses(sys.layout().object_type(object), op)
                            })
                            .unwrap_or_else(Err)
                        }
                    })
                    .clone();
                match responses {
                    Err(payload) => graph.panics.push(PanicSite {
                        state: cursor,
                        response: None,
                        payload,
                    }),
                    Ok(responses) => {
                        for r in responses {
                            match silent_catch(|| program.transition(pid, &state, r)) {
                                Err(payload) => graph.panics.push(PanicSite {
                                    state: cursor,
                                    response: Some(r),
                                    payload,
                                }),
                                Ok(next) => {
                                    let next_id = *index.entry(next.clone()).or_insert_with(|| {
                                        graph.states.push(next);
                                        graph.states.len() - 1
                                    });
                                    succs.push(next_id);
                                }
                            }
                        }
                    }
                }
            }
        }
        succs.sort_unstable();
        succs.dedup();
        graph.edges.push(succs);
        cursor += 1;
        if graph.states.len() > cfg.max_states {
            graph.truncated = true;
            break;
        }
    }
    // Align actions/edges with states for any trailing unexplored states.
    while graph.actions.len() < graph.states.len() {
        graph.actions.push(None);
        graph.edges.push(Vec::new());
        graph.truncated = true;
    }
    graph
}

/// A concrete crash schedule on which a process can output two different
/// values — the cheap static precursor to the full adversary model check.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The diverging process.
    pub pid: rcn_model::ProcessId,
    /// The process's input.
    pub input: u32,
    /// The first value output along the schedule.
    pub first: u32,
    /// The later, different value output along the same schedule.
    pub second: u32,
    /// The schedule (steps and crashes, any process) exhibiting it.
    pub schedule: String,
}

/// Searches for a crash-divergence: a schedule of steps and crashes (at
/// most [`ExploreConfig::max_crashes`] crashes in total) along which some
/// single process outputs two different values.
///
/// Unlike the abstract graph exploration this runs the *real* executor
/// over whole configurations, so responses are exact: a reported
/// divergence is a genuine execution of the system. The search is a
/// memoized DFS bounded by [`ExploreConfig::max_sched_steps`] schedule
/// length and [`ExploreConfig::max_states`] visited configurations, so a
/// `None` on a large system means "none found within bounds", not a proof
/// of absence.
pub fn crash_divergence(sys: &System, cfg: &ExploreConfig) -> Option<Divergence> {
    let mut search = CrashSearch {
        sys,
        cfg,
        events: Vec::new(),
        visited: std::collections::HashSet::new(),
    };
    let config = sys.initial_config();
    let firsts = config.decided.clone();
    let (pid, first, second) = search.dfs(config, firsts, 0, 0)?;
    let schedule = search
        .events
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ");
    Some(Divergence {
        pid,
        input: sys.inputs()[pid.index()],
        first,
        second,
        schedule,
    })
}

/// Depth-first search over crashy executions with a bounded global crash
/// budget, looking for a process that outputs two different values along
/// one schedule.
struct CrashSearch<'a> {
    sys: &'a System,
    cfg: &'a ExploreConfig,
    /// The event path of the current branch; on success it holds the full
    /// divergence schedule.
    events: Vec<rcn_model::Event>,
    #[allow(clippy::type_complexity)]
    visited: std::collections::HashSet<(rcn_model::Configuration, Vec<Option<u32>>, usize)>,
}

impl CrashSearch<'_> {
    fn dfs(
        &mut self,
        config: rcn_model::Configuration,
        firsts: Vec<Option<u32>>,
        crashes: usize,
        depth: usize,
    ) -> Option<(rcn_model::ProcessId, u32, u32)> {
        use rcn_model::Event;
        if depth >= self.cfg.max_sched_steps || self.visited.len() > self.cfg.max_states {
            return None;
        }
        if !self
            .visited
            .insert((config.clone(), firsts.clone(), crashes))
        {
            return None;
        }
        let mut choices = Vec::with_capacity(2 * self.sys.n());
        for pid in self.sys.processes() {
            // Steps of decided processes are no-ops; only crashes matter
            // for them.
            if !matches!(self.sys.action_of(&config, pid), Action::Output(_)) {
                choices.push(Event::Step(pid));
            }
            if crashes < self.cfg.max_crashes {
                choices.push(Event::Crash(pid));
            }
        }
        for event in choices {
            let mut next = config.clone();
            let effect = self.sys.apply(&mut next, event);
            self.events.push(event);
            let mut new_firsts = firsts.clone();
            for &(pid, v) in &effect.outputs {
                match firsts[pid.index()] {
                    Some(w) if w != v => return Some((pid, w, v)),
                    _ => new_firsts[pid.index()] = Some(v),
                }
            }
            let next_crashes = crashes + usize::from(matches!(event, Event::Crash(_)));
            if let Some(hit) = self.dfs(next, new_firsts, next_crashes, depth + 1) {
                return Some(hit);
            }
            self.events.pop();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::{HeapLayout, OutputInput, ProcessId};
    use std::sync::Arc;

    #[test]
    fn silent_catch_returns_payloads() {
        assert_eq!(silent_catch(|| 1 + 1), Ok(2));
        let err = silent_catch(|| panic!("boom {}", 7)).unwrap_err();
        assert!(err.contains("boom 7"));
    }

    #[test]
    fn output_input_graph_is_a_single_output_state() {
        let sys = System::new(
            Arc::new(OutputInput),
            Arc::new(HeapLayout::new()),
            vec![3, 3],
        );
        let g = explore_process(&sys, ProcessId::new(0), &ExploreConfig::default());
        assert_eq!(g.states.len(), 1);
        assert_eq!(g.output_states(), vec![0]);
        assert!(g.panics.is_empty());
        assert!(!g.truncated);
        assert!(g.states_without_output_path().is_empty());
        assert!(g.touched_objects().is_empty());
    }

    #[test]
    fn output_input_never_diverges() {
        let sys = System::new(
            Arc::new(OutputInput),
            Arc::new(HeapLayout::new()),
            vec![3, 3],
        );
        assert!(crash_divergence(&sys, &ExploreConfig::default()).is_none());
    }
}
