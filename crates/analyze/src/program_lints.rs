//! Program lints (`RCN1xx`): hypotheses about protocol programs.
//!
//! The §4 algorithms assume programs whose crash-restart behavior is total
//! and deterministic, and recoverable wait-freedom requires every state to
//! keep a path to an output. These lints check those hypotheses on the
//! abstract per-process state machine ([`crate::ProcessGraph`]) and — for
//! crash divergence — on real solo executions.

use crate::diag::{Diagnostic, Locus, Report, Severity};
use crate::explore::{crash_divergence, ExploreConfig, ProcessGraph};
use crate::lint::ProgramLint;
use rcn_model::{ObjectId, System};

fn subject(sys: &System) -> String {
    sys.program().name()
}

/// `RCN100` — the exploration bound was hit; downstream results are
/// partial.
pub struct AnalysisBound;

impl ProgramLint for AnalysisBound {
    fn code(&self) -> &'static str {
        "RCN100"
    }
    fn name(&self) -> &'static str {
        "analysis-bound"
    }
    fn description(&self) -> &'static str {
        "the bounded exploration was truncated; results are partial"
    }
    fn check(
        &self,
        sys: &System,
        graphs: &[ProcessGraph],
        _cfg: &ExploreConfig,
        report: &mut Report,
    ) {
        for (i, g) in graphs.iter().enumerate() {
            if g.truncated {
                report.push(Diagnostic::new(
                    self.code(),
                    Severity::Info,
                    Locus::program(subject(sys)),
                    format!(
                        "process p{i}: abstract state space exceeds the bound \
                         ({} states explored); liveness lints are partial",
                        g.states.len()
                    ),
                ));
            }
        }
    }
}

/// `RCN101` — every reachable state must keep a path to an output.
///
/// Recoverable wait-freedom demands that a process running solo decides;
/// a reachable local state with no path to any [`rcn_model::Action::Output`]
/// (under feasible responses) is a liveness red flag.
pub struct NoOutputPath;

impl ProgramLint for NoOutputPath {
    fn code(&self) -> &'static str {
        "RCN101"
    }
    fn name(&self) -> &'static str {
        "no-output-path"
    }
    fn description(&self) -> &'static str {
        "reachable states with no path to any output state"
    }
    fn check(
        &self,
        sys: &System,
        graphs: &[ProcessGraph],
        _cfg: &ExploreConfig,
        report: &mut Report,
    ) {
        for (i, g) in graphs.iter().enumerate() {
            if g.truncated {
                continue; // RCN100 reports the truncation
            }
            let stuck = g.states_without_output_path();
            if stuck.is_empty() {
                continue;
            }
            if g.output_states().is_empty() {
                report.push(
                    Diagnostic::new(
                        self.code(),
                        Severity::Warn,
                        Locus::program(subject(sys)),
                        format!(
                            "process p{i} (input {}) can never reach an output state \
                             ({} states explored)",
                            g.input,
                            g.states.len()
                        ),
                    )
                    .with_suggestion("a recoverable wait-free program must decide in solo runs"),
                );
                continue;
            }
            let exemplar = &g.states[stuck[0]];
            report.push(
                Diagnostic::new(
                    self.code(),
                    Severity::Warn,
                    Locus::state(subject(sys), exemplar.to_string()),
                    format!(
                        "process p{i} (input {}): {} of {} reachable states have no \
                         path to an output, e.g. {exemplar}",
                        g.input,
                        stuck.len(),
                        g.states.len()
                    ),
                )
                .with_suggestion(
                    "check for retry loops that can spin forever under some response \
                     sequence",
                ),
            );
        }
    }
}

/// `RCN102` — programs must be total on feasible responses.
///
/// `transition` must not panic for any response its invoked operation can
/// actually return (and `action` must not panic at all): the §4 protocols
/// assume total deterministic programs.
pub struct TransitionTotality;

impl ProgramLint for TransitionTotality {
    fn code(&self) -> &'static str {
        "RCN102"
    }
    fn name(&self) -> &'static str {
        "transition-totality"
    }
    fn description(&self) -> &'static str {
        "action/transition panics on reachable states and feasible responses"
    }
    fn check(
        &self,
        sys: &System,
        graphs: &[ProcessGraph],
        _cfg: &ExploreConfig,
        report: &mut Report,
    ) {
        for (i, g) in graphs.iter().enumerate() {
            for site in &g.panics {
                let state = &g.states[site.state];
                let message = match site.response {
                    Some(r) => format!(
                        "process p{i}: transition panics on feasible response {r} in \
                         state {state}: {}",
                        site.payload
                    ),
                    None => format!(
                        "process p{i}: action fails in state {state}: {}",
                        site.payload
                    ),
                };
                report.push(
                    Diagnostic::new(
                        self.code(),
                        Severity::Error,
                        Locus::state(subject(sys), state.to_string()),
                        message,
                    )
                    .with_suggestion(
                        "make the program total for every response the invoked \
                         operation can return",
                    ),
                );
            }
        }
    }
}

/// `RCN103` — every shared object should be reachable.
///
/// An object in the heap layout that no reachable state of any process
/// ever invokes is dead weight in the layout (and often a sign that the
/// plan builder and the program disagree).
pub struct DeadObjects;

impl ProgramLint for DeadObjects {
    fn code(&self) -> &'static str {
        "RCN103"
    }
    fn name(&self) -> &'static str {
        "dead-object"
    }
    fn description(&self) -> &'static str {
        "shared objects never accessed by any reachable state"
    }
    fn check(
        &self,
        sys: &System,
        graphs: &[ProcessGraph],
        _cfg: &ExploreConfig,
        report: &mut Report,
    ) {
        if graphs.iter().any(|g| g.truncated) {
            return; // partial graphs would produce false positives
        }
        let mut touched = vec![false; sys.layout().len()];
        for g in graphs {
            for obj in g.touched_objects() {
                touched[obj.index()] = true;
            }
        }
        for (idx, hit) in touched.iter().enumerate() {
            if !hit {
                let id = ObjectId(idx as u16);
                let layout = sys.layout();
                report.push(
                    Diagnostic::new(
                        self.code(),
                        Severity::Warn,
                        Locus::object(
                            subject(sys),
                            format!(
                                "{id} ({} : {})",
                                layout.name(id),
                                layout.object_type(id).name()
                            ),
                        ),
                        format!(
                            "object {id} ({}) is never accessed by any reachable state \
                             of any process",
                            layout.name(id)
                        ),
                    )
                    .with_suggestion("drop the object from the layout"),
                );
            }
        }
    }
}

/// `RCN104` — crash-divergence: a restarted run must not decide
/// differently.
///
/// Finds a concrete schedule of steps and crashes along which one process
/// outputs two different values — exactly the failure mode that separates
/// the recoverable hierarchy from the classical one (Golab's test-and-set
/// separation, Lemma 16's `T_{n,n'}` collapse). A bounded exhaustive
/// search over real executions: a hit is a genuine counterexample
/// schedule; silence on large systems means "none within bounds".
pub struct CrashDivergence;

impl ProgramLint for CrashDivergence {
    fn code(&self) -> &'static str {
        "RCN104"
    }
    fn name(&self) -> &'static str {
        "crash-divergence"
    }
    fn description(&self) -> &'static str {
        "a crash schedule on which one process outputs two different values"
    }
    fn check(
        &self,
        sys: &System,
        graphs: &[ProcessGraph],
        cfg: &ExploreConfig,
        report: &mut Report,
    ) {
        // If totality already failed, the simulation could trip the same
        // panic; RCN102 has it covered.
        if graphs.iter().any(|g| !g.panics.is_empty()) {
            return;
        }
        let found = crate::explore::silent_catch(|| crash_divergence(sys, cfg));
        let Ok(Some(d)) = found else { return };
        report.push(
            Diagnostic::new(
                self.code(),
                Severity::Warn,
                Locus::program(subject(sys)),
                format!(
                    "process p{} (input {}) outputs {} and later {} along the crash \
                     schedule `{}`",
                    d.pid.index(),
                    d.input,
                    d.first,
                    d.second,
                    d.schedule
                ),
            )
            .with_suggestion(
                "guard the first shared-memory operation with a read (as in the \
                 paper's recoverable T_{n,n'} algorithm) so a restarted process \
                 rediscovers its pre-crash progress",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_process;
    use rcn_model::{Action, HeapLayout, LocalState, ProcessId, Program};
    use rcn_spec::Response;
    use std::sync::Arc;

    /// A program that invokes a register op forever and never outputs.
    struct Spinner {
        object: rcn_model::ObjectId,
    }
    impl Program for Spinner {
        fn name(&self) -> String {
            "spinner".into()
        }
        fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
            LocalState::word1(input)
        }
        fn action(&self, _pid: ProcessId, _state: &LocalState) -> Action {
            Action::Invoke {
                object: self.object,
                op: rcn_spec::OpId(0),
            }
        }
        fn transition(&self, _pid: ProcessId, state: &LocalState, _r: Response) -> LocalState {
            state.clone()
        }
    }

    fn spinner_system() -> System {
        let mut layout = HeapLayout::new();
        let object = layout.add_object(
            "R",
            Arc::new(rcn_spec::zoo::Register::new(2)),
            rcn_spec::ValueId(0),
        );
        System::new(Arc::new(Spinner { object }), Arc::new(layout), vec![0, 1])
    }

    #[test]
    fn spinner_never_outputs() {
        let sys = spinner_system();
        let cfg = ExploreConfig::default();
        let graphs: Vec<_> = sys
            .processes()
            .into_iter()
            .map(|p| explore_process(&sys, p, &cfg))
            .collect();
        let mut report = Report::new();
        NoOutputPath.check(&sys, &graphs, &cfg, &mut report);
        assert_eq!(report.warnings(), 2);
        assert!(report.diagnostics[0]
            .message
            .contains("never reach an output"));
    }
}
