//! Static analysis for the `rcn` workspace.
//!
//! This crate turns the paper's hypotheses about sequential specifications
//! and recoverable protocols into *lints*: small named checks with stable
//! `RCN0xx`/`RCN1xx` codes that either certify a property (with an explicit
//! witness) or refute it (with a concrete counterexample), rendered in a
//! rustc-style text format or as JSON.
//!
//! Two lint families:
//!
//! * **Spec lints** (`RCN001`–`RCN006`) run over any
//!   [`ObjectType`](rcn_spec::ObjectType): closedness of the transition
//!   table, unreachable values, dead response codes, duplicate operations,
//!   a readability certificate or refutation (Definition 2 of the paper),
//!   and idempotent-operation detection.
//! * **Program lints** (`RCN100`–`RCN104`) run over a
//!   [`System`](rcn_model::System): bounded abstract exploration of each
//!   process's reachable local states checks output-liveness, totality of
//!   `transition` on feasible responses, dead shared objects, and — via
//!   real solo executions with crashes — crash-divergence, the failure
//!   mode that separates the recoverable consensus hierarchy from the
//!   classical one.
//! * **Cross-checker lints** (`RCN200`–`RCN203`) run two structurally
//!   independent engines on the same question — `rcn-faults`' DFS vs
//!   `rcn-mc`'s BFS for crashtest verdicts, `rcn-valency`'s budgeted
//!   graph vs `rcn-mc`'s worklist fixpoint for valency facts, plus the
//!   abstract↔threaded replay bridge for checker counterexamples — and
//!   turn any disagreement into a hard error (see [`CrossCrashtest`],
//!   [`CrossValency`], [`ReplayBridge`]).
//!
//! Entry points: [`Registry::with_defaults`], then
//! [`Registry::lint_type`] / [`Registry::lint_system`]; the resulting
//! [`Report`] knows how to render itself and whether it should fail a
//! build ([`Report::should_fail`]).
//!
//! ```
//! use rcn_analyze::Registry;
//!
//! let registry = Registry::with_defaults();
//! let report = registry.lint_type(&rcn_spec::zoo::StickyBit);
//! assert_eq!(report.errors(), 0);
//! println!("{}", report.render_text());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cross_lints;
mod diag;
mod explore;
mod lint;
mod program_lints;
mod spec_lints;

pub use cross_lints::{
    check_replay_bridge, compare_crashtest_verdicts, compare_valency_verdicts, CrossCrashtest,
    CrossValency, ReplayBridge,
};
pub use diag::{Diagnostic, Locus, LocusKind, Report, Severity};
pub use explore::{
    crash_divergence, explore_process, Divergence, ExploreConfig, PanicSite, ProcessGraph,
};
pub use lint::{ProgramLint, Registry, SpecLint};
pub use program_lints::{
    AnalysisBound, CrashDivergence, DeadObjects, NoOutputPath, TransitionTotality,
};
pub use spec_lints::{
    Closedness, DeadResponses, DuplicateOps, IdempotentOps, Readability, UnreachableValues,
};
