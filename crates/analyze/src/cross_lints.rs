//! Cross-checker lints (`RCN2xx`): differential second opinions.
//!
//! Every other lint in this crate checks a *hypothesis*; these lints check
//! the *checkers*. Two structurally independent engines answer the same
//! question — `rcn-faults`' memoized DFS vs `rcn-mc`'s breadth-first
//! search for crash-divergence verdicts, `rcn-valency`'s budgeted graph vs
//! `rcn-mc`'s worklist fixpoint for valency facts — and any disagreement
//! is a hard error: one of the engines (we do not know which) has an
//! unsound pruning, a semantics drift, or a budget bug. Agreement is
//! surfaced as an `Info` certificate carrying both sides' search effort.
//!
//! Codes:
//!
//! * `RCN200` — DFS explorer and BFS checker disagree on whether an
//!   in-budget violating schedule exists (error).
//! * `RCN201` — decider-stack valency and checker valency disagree on the
//!   initial configuration (error).
//! * `RCN202` — a budget clipped one side before the cross-check could be
//!   exhaustive; the comparison is skipped rather than trusted (warning).
//!   Emitted by the `RCN200`/`RCN201` lints, which own the budgets.
//! * `RCN203` — the checker's counterexample schedule fails the
//!   abstract↔threaded replay bridge (error): a schedule only one
//!   executor believes in is not a counterexample, it is a bug report.
//!
//! The cross-lints only run on programs whose exploration found no
//! totality panics: executing a program that panics on feasible responses
//! (`RCN102`) would abort the lint run itself.

use crate::diag::{Diagnostic, Locus, Report, Severity};
use crate::explore::{ExploreConfig, ProcessGraph};
use crate::lint::ProgramLint;
use rcn_model::{Schedule, System};

fn subject(sys: &System) -> String {
    sys.program().name()
}

/// `true` if the program can be executed without tripping a totality
/// panic (the gate for every cross-lint).
fn executable(graphs: &[ProcessGraph]) -> bool {
    graphs.iter().all(|g| g.panics.is_empty())
}

/// Pushes the `RCN200` comparison of a DFS crashtest report and a BFS
/// checker report (both already exhaustive at the same budget): an error
/// on verdict divergence, an `Info` certificate on agreement. Public so
/// divergences can be synthesized and their rendering pinned in tests.
pub fn compare_crashtest_verdicts(
    subject: &str,
    budget: &str,
    dfs: &rcn_faults::CrashtestReport,
    bfs: &rcn_mc::McReport,
    report: &mut Report,
) {
    let dfs_effort = format!(
        "dfs: {} states, {} events, {} memo hits, {} re-explored",
        dfs.stats.states_visited,
        dfs.stats.events_applied,
        dfs.stats.memo_hits,
        dfs.stats.re_explored
    );
    let bfs_effort = format!(
        "bfs: {} states, {} events, frontier peak {}, dedup {:.0}%",
        bfs.stats.states_visited,
        bfs.stats.events_applied,
        bfs.stats.frontier_peak,
        bfs.stats.dedup_ratio() * 100.0
    );
    match (&dfs.counterexample, &bfs.counterexample) {
        (Some(_), None) => report.push(
            Diagnostic::new(
                "RCN200",
                Severity::Error,
                Locus::program(subject),
                format!(
                    "differential divergence at {budget}: the DFS explorer finds a violating \
                     schedule but the BFS checker certifies clean ({dfs_effort}; {bfs_effort})"
                ),
            )
            .with_suggestion(
                "one engine has an unsound pruning or a semantics drift; \
                 rerun `rcn check` and `rcn crashtest` at this budget and diff the schedules",
            ),
        ),
        (None, Some(cex)) => report.push(
            Diagnostic::new(
                "RCN200",
                Severity::Error,
                Locus::program(subject),
                format!(
                    "differential divergence at {budget}: the BFS checker finds `{}` but the \
                     DFS explorer certifies clean ({dfs_effort}; {bfs_effort})",
                    cex.schedule
                ),
            )
            .with_suggestion(
                "one engine has an unsound pruning or a semantics drift; \
                 rerun `rcn check` and `rcn crashtest` at this budget and diff the schedules",
            ),
        ),
        (dfs_cex, _) => {
            let verdict = match dfs_cex {
                Some(_) => "both find a violating schedule",
                None => "both certify clean",
            };
            report.push(Diagnostic::new(
                "RCN200",
                Severity::Info,
                Locus::program(subject),
                format!("differential crashtest agrees at {budget}: {verdict} ({dfs_effort}; {bfs_effort})"),
            ));
        }
    }
}

/// Pushes the `RCN201` comparison of two already-exhaustive valency
/// verdicts (rendered in the shared `bivalent` / `{v}-univalent` /
/// `undetermined` vocabulary): an error on disagreement, an `Info`
/// certificate on agreement. Public for the same pinning reason as
/// [`compare_crashtest_verdicts`].
pub fn compare_valency_verdicts(
    subject: &str,
    budget: &str,
    decider: &str,
    checker: &str,
    report: &mut Report,
) {
    if decider == checker {
        report.push(Diagnostic::new(
            "RCN201",
            Severity::Info,
            Locus::program(subject),
            format!("differential valency agrees at {budget}: initial configuration is {decider}"),
        ));
    } else {
        report.push(
            Diagnostic::new(
                "RCN201",
                Severity::Error,
                Locus::program(subject),
                format!(
                    "differential divergence at {budget}: the decider stack says the initial \
                     configuration is {decider}, the BFS checker says {checker}"
                ),
            )
            .with_suggestion(
                "the budgeted-graph and worklist valency fixpoints disagree on identical \
                 budgets; one reachability computation is wrong",
            ),
        );
    }
}

/// Replays `schedule` through both the abstract executor and the threaded
/// runtime and pushes the `RCN203` verdict: an error when the bridge does
/// not confirm the same violation and outputs on both sides, an `Info`
/// certificate when it does. Public so the non-confirming case can be
/// exercised with a schedule that is not a counterexample.
pub fn check_replay_bridge(subject: &str, sys: &System, schedule: &Schedule, report: &mut Report) {
    let replay = rcn_faults::replay(sys, schedule);
    if replay.confirmed() {
        report.push(Diagnostic::new(
            "RCN203",
            Severity::Info,
            Locus::program(subject),
            format!(
                "checker counterexample `{schedule}` confirmed by the abstract↔threaded \
                 replay bridge"
            ),
        ));
    } else {
        report.push(
            Diagnostic::new(
                "RCN203",
                Severity::Error,
                Locus::program(subject),
                format!(
                    "checker counterexample `{schedule}` fails the abstract↔threaded replay \
                     bridge ({replay})"
                ),
            )
            .with_suggestion(
                "a schedule only one executor believes in is not a counterexample; \
                 diff the two replays with `rcn crashtest --replay`",
            ),
        );
    }
}

fn budget_warn(subject: &str, code: &'static str, what: &str, report: &mut Report) {
    report.push(
        Diagnostic::new(
            "RCN202",
            Severity::Warn,
            Locus::program(subject),
            format!("cross-check budget too small: {what}; the {code} comparison was skipped"),
        )
        .with_suggestion("raise the cross-check state budget or shrink the instance"),
    );
}

/// `RCN200`/`RCN202` — differential crashtest: DFS explorer vs BFS
/// checker at one shared budget.
pub struct CrossCrashtest {
    /// Per-process crash budget for both engines.
    pub max_crashes: usize,
    /// Schedule-length cap for both engines.
    pub max_depth: usize,
    /// State cap for both engines; clipping either side downgrades the
    /// comparison to an `RCN202` warning.
    pub max_states: usize,
}

impl Default for CrossCrashtest {
    fn default() -> Self {
        CrossCrashtest {
            max_crashes: 1,
            max_depth: 10,
            max_states: 200_000,
        }
    }
}

impl CrossCrashtest {
    fn budget_label(&self) -> String {
        format!("crashes={}, depth={}", self.max_crashes, self.max_depth)
    }
}

impl ProgramLint for CrossCrashtest {
    fn code(&self) -> &'static str {
        "RCN200"
    }
    fn name(&self) -> &'static str {
        "differential-crashtest"
    }
    fn description(&self) -> &'static str {
        "DFS explorer and BFS checker must agree on crash-divergence verdicts"
    }
    fn check(
        &self,
        sys: &System,
        graphs: &[ProcessGraph],
        _cfg: &ExploreConfig,
        report: &mut Report,
    ) {
        if !executable(graphs) {
            return;
        }
        let subject = subject(sys);
        // The DFS side runs the sharded engine: the cross-check then also
        // exercises the parallel search's bit-identical-verdict contract
        // against an engine that shares none of its code.
        let dfs = rcn_faults::CrashExplorer::new(
            sys,
            rcn_faults::CrashtestConfig {
                max_crashes: self.max_crashes,
                max_depth: self.max_depth,
                max_states: self.max_states,
                ..Default::default()
            },
        )
        .with_threads(2)
        .explore();
        let bfs = rcn_mc::model_check(
            sys,
            rcn_mc::McConfig {
                max_crashes: self.max_crashes,
                max_depth: self.max_depth,
                max_states: self.max_states,
                ..Default::default()
            },
        );
        // A violation verdict is budget-exact on both sides; only a clean
        // verdict needs exhaustiveness to be comparable.
        let dfs_conclusive = dfs.counterexample.is_some() || dfs.stats.exhaustive();
        let bfs_conclusive =
            bfs.counterexample.is_some() || bfs.coverage == rcn_mc::Coverage::Exhaustive;
        if !dfs_conclusive || !bfs_conclusive {
            budget_warn(
                &subject,
                "RCN200",
                &format!(
                    "state cap {} clipped the {} search",
                    self.max_states,
                    if dfs_conclusive { "BFS" } else { "DFS" }
                ),
                report,
            );
            return;
        }
        compare_crashtest_verdicts(&subject, &self.budget_label(), &dfs, &bfs, report);
    }
}

/// `RCN201`/`RCN202` — differential valency: the decider stack's budgeted
/// graph vs the checker's worklist fixpoint at one shared `E_z*` budget.
pub struct CrossValency {
    /// The paper's budget multiplier `z` for both engines.
    pub z: usize,
    /// The allowance clamp for both engines.
    pub clamp: u16,
    /// State cap for both engines; clipping either side downgrades the
    /// comparison to an `RCN202` warning.
    pub max_states: usize,
}

impl Default for CrossValency {
    fn default() -> Self {
        CrossValency {
            z: 1,
            clamp: 2,
            max_states: 60_000,
        }
    }
}

impl ProgramLint for CrossValency {
    fn code(&self) -> &'static str {
        "RCN201"
    }
    fn name(&self) -> &'static str {
        "differential-valency"
    }
    fn description(&self) -> &'static str {
        "decider-stack and BFS-checker valency verdicts must agree"
    }
    fn check(
        &self,
        sys: &System,
        graphs: &[ProcessGraph],
        _cfg: &ExploreConfig,
        report: &mut Report,
    ) {
        if !executable(graphs) {
            return;
        }
        let subject = subject(sys);
        let budget = format!("z={}, clamp={}", self.z, self.clamp);
        let decider =
            match rcn_valency::BudgetedGraph::explore(sys, self.z, self.clamp, self.max_states) {
                Ok(graph) => graph.initial_valency().to_string(),
                Err(rcn_valency::ExploreError::TooLarge { limit }) => {
                    budget_warn(
                        &subject,
                        "RCN201",
                        &format!("the budgeted `E_z*` graph exceeds {limit} states"),
                        report,
                    );
                    return;
                }
            };
        let checker = rcn_mc::valency_check(
            sys,
            rcn_mc::ValencyConfig {
                z: self.z,
                clamp: self.clamp,
                max_states: self.max_states,
            },
        );
        if checker.coverage != rcn_mc::Coverage::Exhaustive {
            budget_warn(
                &subject,
                "RCN201",
                &format!("state cap {} clipped the checker's graph", self.max_states),
                report,
            );
            return;
        }
        compare_valency_verdicts(
            &subject,
            &budget,
            &decider,
            &checker.valency.to_string(),
            report,
        );
    }
}

/// `RCN203` — every counterexample the BFS checker reports must survive
/// the abstract↔threaded replay bridge.
pub struct ReplayBridge {
    /// Per-process crash budget for the checker run.
    pub max_crashes: usize,
    /// Schedule-length cap for the checker run.
    pub max_depth: usize,
    /// State cap for the checker run (a clipped clean run emits nothing:
    /// there is no schedule to bridge).
    pub max_states: usize,
}

impl Default for ReplayBridge {
    fn default() -> Self {
        let c = CrossCrashtest::default();
        ReplayBridge {
            max_crashes: c.max_crashes,
            max_depth: c.max_depth,
            max_states: c.max_states,
        }
    }
}

impl ProgramLint for ReplayBridge {
    fn code(&self) -> &'static str {
        "RCN203"
    }
    fn name(&self) -> &'static str {
        "replay-bridge"
    }
    fn description(&self) -> &'static str {
        "checker counterexamples must replay identically on both executors"
    }
    fn check(
        &self,
        sys: &System,
        graphs: &[ProcessGraph],
        _cfg: &ExploreConfig,
        report: &mut Report,
    ) {
        if !executable(graphs) {
            return;
        }
        // The bridge needs real threaded execution; systems built with
        // `new_unchecked` carry no consensus contract to confirm.
        if !sys.is_consensus_checked() {
            return;
        }
        let bfs = rcn_mc::model_check(
            sys,
            rcn_mc::McConfig {
                max_crashes: self.max_crashes,
                max_depth: self.max_depth,
                max_states: self.max_states,
                ..Default::default()
            },
        );
        if let Some(cex) = &bfs.counterexample {
            check_replay_bridge(&subject(sys), sys, &cex.schedule, report);
        }
    }
}
