//! Spec lints (`RCN0xx`): hypotheses about sequential object-type
//! specifications.
//!
//! These certify or refute the side conditions the paper's theorems place
//! on types: well-formedness of the sequential specification (§2),
//! readability (Theorem 14's hypothesis), and structural hygiene that the
//! deciders rely on (reachable values, live responses, distinguishable
//! operations, crash-idempotent operations).

use crate::diag::{Diagnostic, Locus, Report, Severity};
use crate::explore::silent_catch;
use crate::lint::SpecLint;
use rcn_spec::{ObjectType, OpId, Outcome, ValueId};

/// A fully materialized, in-range transition table of a type — the common
/// precondition of every lint past closedness.
struct Table {
    name: String,
    num_values: usize,
    num_ops: usize,
    num_responses: usize,
    /// `cells[v][op]`, guaranteed in range.
    cells: Vec<Vec<Outcome>>,
}

impl Table {
    /// Captures the table if (and only if) the spec is closed: every
    /// in-range `apply` returns without panicking and yields an in-range
    /// outcome. Lints that need a closed table bail out on `None`;
    /// [`Closedness`] reports the precise failures.
    fn capture(ty: &dyn ObjectType) -> Option<Table> {
        let (num_values, num_ops, num_responses) =
            (ty.num_values(), ty.num_ops(), ty.num_responses());
        if num_values == 0 || num_ops == 0 {
            return None;
        }
        let mut cells = Vec::with_capacity(num_values);
        for v in 0..num_values {
            let mut row = Vec::with_capacity(num_ops);
            for op in 0..num_ops {
                let out = silent_catch(|| ty.apply(ValueId(v as u16), OpId(op as u16))).ok()?;
                if out.next.index() >= num_values || out.response.index() >= num_responses {
                    return None;
                }
                row.push(out);
            }
            cells.push(row);
        }
        Some(Table {
            name: ty.name(),
            num_values,
            num_ops,
            num_responses,
            cells,
        })
    }
}

/// `RCN001` — the sequential specification must be closed.
///
/// Paper §2 defines a type by a *total* deterministic specification: every
/// `(value, op)` pair has a response and a resulting value, both in range.
/// `TableType::validate` checks the same property for tables; this lint
/// checks it for any [`ObjectType`], including hand-written ones whose
/// `apply` might panic.
pub struct Closedness;

impl SpecLint for Closedness {
    fn code(&self) -> &'static str {
        "RCN001"
    }
    fn name(&self) -> &'static str {
        "spec-closedness"
    }
    fn description(&self) -> &'static str {
        "every (value, op) pair must yield an in-range outcome (§2 totality)"
    }
    fn check(&self, ty: &dyn ObjectType, report: &mut Report) {
        let name = ty.name();
        let (nv, no, nr) = (ty.num_values(), ty.num_ops(), ty.num_responses());
        if nv == 0 || no == 0 {
            report.push(
                Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    Locus::ty(&name),
                    format!("type has {nv} values and {no} operations; both must be nonzero"),
                )
                .with_suggestion("a deterministic type needs at least one value and one operation"),
            );
            return;
        }
        for v in 0..nv {
            for op in 0..no {
                let (value, op) = (ValueId(v as u16), OpId(op as u16));
                let vn = ty.value_name(value);
                let on = ty.op_name(op);
                match silent_catch(|| ty.apply(value, op)) {
                    Err(panic) => report.push(
                        Diagnostic::new(
                            self.code(),
                            Severity::Error,
                            Locus::cell(&name, &vn, &on),
                            format!("apply({vn}, {on}) panicked: {panic}"),
                        )
                        .with_suggestion("apply must be total for all in-range values and ops"),
                    ),
                    Ok(out) => {
                        if out.next.index() >= nv {
                            report.push(
                                Diagnostic::new(
                                    self.code(),
                                    Severity::Error,
                                    Locus::cell(&name, &vn, &on),
                                    format!(
                                        "outcome of {on} on {vn} targets out-of-range value {} \
                                         (type has {nv} values)",
                                        out.next
                                    ),
                                )
                                .with_suggestion("keep next-value ids below num_values"),
                            );
                        }
                        if out.response.index() >= nr {
                            report.push(
                                Diagnostic::new(
                                    self.code(),
                                    Severity::Error,
                                    Locus::cell(&name, &vn, &on),
                                    format!(
                                        "outcome of {on} on {vn} returns out-of-range response {} \
                                         (type has {nr} responses)",
                                        out.response
                                    ),
                                )
                                .with_suggestion("keep response ids below num_responses"),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// `RCN002` — every value should be reachable from a plausible initial
/// value.
///
/// The deciders enumerate instances over initial values; a value that no
/// source value can ever reach is dead weight that inflates the search
/// space without affecting any consensus number. Source values (values no
/// other value transitions into) are the only plausible initial values; if
/// every value has a predecessor, reachability is checked from `v0` (the
/// zoo's conventional initial value).
pub struct UnreachableValues;

impl SpecLint for UnreachableValues {
    fn code(&self) -> &'static str {
        "RCN002"
    }
    fn name(&self) -> &'static str {
        "unreachable-value"
    }
    fn description(&self) -> &'static str {
        "values unreachable from any source (candidate initial) value"
    }
    fn check(&self, ty: &dyn ObjectType, report: &mut Report) {
        let Some(t) = Table::capture(ty) else { return };
        // In-degree from *distinct* values: sources have none.
        let mut has_pred = vec![false; t.num_values];
        for (v, row) in t.cells.iter().enumerate() {
            for out in row {
                if out.next.index() != v {
                    has_pred[out.next.index()] = true;
                }
            }
        }
        let mut frontier: Vec<usize> = (0..t.num_values).filter(|&v| !has_pred[v]).collect();
        if frontier.is_empty() {
            frontier.push(0); // every value is in a cycle: start from v0
        }
        let starts = frontier.clone();
        let mut reached = vec![false; t.num_values];
        for &s in &frontier {
            reached[s] = true;
        }
        while let Some(v) = frontier.pop() {
            for out in &t.cells[v] {
                if !reached[out.next.index()] {
                    reached[out.next.index()] = true;
                    frontier.push(out.next.index());
                }
            }
        }
        let start_names: Vec<String> = starts
            .iter()
            .map(|&v| ty.value_name(ValueId(v as u16)))
            .collect();
        for (v, seen) in reached.iter().enumerate().take(t.num_values) {
            if !seen {
                let vn = ty.value_name(ValueId(v as u16));
                report.push(
                    Diagnostic::new(
                        self.code(),
                        Severity::Warn,
                        Locus::value(&t.name, &vn),
                        format!(
                            "value {vn} is unreachable from every candidate initial value \
                             ({})",
                            start_names.join(", ")
                        ),
                    )
                    .with_suggestion(
                        "remove the value, or add a transition that reaches it; \
                         unreachable values only inflate the decider instance space",
                    ),
                );
            }
        }
    }
}

/// `RCN003` — declared responses should be live.
///
/// A response id that no `(value, op)` cell ever returns cannot occur in
/// any execution; it is legal (the paper's `T_{n,n'}` deliberately
/// oversizes its `op_R` value-report space) but worth surfacing, because
/// the discerning/recording analyses size their per-response structures by
/// `num_responses`.
pub struct DeadResponses;

impl SpecLint for DeadResponses {
    fn code(&self) -> &'static str {
        "RCN003"
    }
    fn name(&self) -> &'static str {
        "dead-response"
    }
    fn description(&self) -> &'static str {
        "response ids that no operation ever returns"
    }
    fn check(&self, ty: &dyn ObjectType, report: &mut Report) {
        let Some(t) = Table::capture(ty) else { return };
        let mut live = vec![false; t.num_responses];
        for row in &t.cells {
            for out in row {
                live[out.response.index()] = true;
            }
        }
        let dead: Vec<String> = (0..t.num_responses)
            .filter(|&r| !live[r])
            .map(|r| ty.response_name(rcn_spec::Response(r as u16)))
            .collect();
        if !dead.is_empty() {
            report.push(
                Diagnostic::new(
                    self.code(),
                    Severity::Info,
                    Locus::response(&t.name, dead.join(", ")),
                    format!(
                        "{} of {} declared responses are never returned: {}",
                        dead.len(),
                        t.num_responses,
                        dead.join(", ")
                    ),
                )
                .with_suggestion("shrink num_responses if the gap is unintentional"),
            );
        }
    }
}

/// `RCN004` — operations should be pairwise distinguishable.
///
/// Two operations with identical columns (same response and same next
/// value on every value) are the *same* operation twice; they cannot
/// change any consensus number, but they multiply the decider's
/// op-multiset instance space. Info, not warn: legitimate full-grid
/// families contain duplicates by construction (every `cas(v,v)` of
/// compare-and-swap is the read).
pub struct DuplicateOps;

impl SpecLint for DuplicateOps {
    fn code(&self) -> &'static str {
        "RCN004"
    }
    fn name(&self) -> &'static str {
        "duplicate-op"
    }
    fn description(&self) -> &'static str {
        "operations indistinguishable from an earlier operation"
    }
    fn check(&self, ty: &dyn ObjectType, report: &mut Report) {
        let Some(t) = Table::capture(ty) else { return };
        for j in 1..t.num_ops {
            for i in 0..j {
                if (0..t.num_values).all(|v| t.cells[v][i] == t.cells[v][j]) {
                    let (oi, oj) = (ty.op_name(OpId(i as u16)), ty.op_name(OpId(j as u16)));
                    report.push(
                        Diagnostic::new(
                            self.code(),
                            Severity::Info,
                            Locus::op(&t.name, &oj),
                            format!(
                                "operation {oj} is indistinguishable from {oi}: identical \
                                 response and next value on every value"
                            ),
                        )
                        .with_suggestion(
                            "drop one duplicate; it cannot affect consensus numbers but \
                             inflates every op-multiset enumeration",
                        ),
                    );
                    break; // one report per duplicated op
                }
            }
        }
    }
}

/// `RCN005` — readability certification (Theorem 14's hypothesis).
///
/// The paper's robustness theorem holds for deterministic *readable*
/// types. This lint certifies readability with an explicit witness (the
/// read operation and its value↦response table) or refutes it with, per
/// operation, a concrete mutation or an indistinguishable value pair.
pub struct Readability;

impl SpecLint for Readability {
    fn code(&self) -> &'static str {
        "RCN005"
    }
    fn name(&self) -> &'static str {
        "readability"
    }
    fn description(&self) -> &'static str {
        "certify or refute readability with explicit witnesses (Theorem 14)"
    }
    fn check(&self, ty: &dyn ObjectType, report: &mut Report) {
        let Some(t) = Table::capture(ty) else { return };
        // A read op: never mutates, responses injective on values.
        for op in 0..t.num_ops {
            if (0..t.num_values).all(|v| t.cells[v][op].next.index() == v) {
                let mut seen = vec![None; t.num_responses];
                let injective = (0..t.num_values).all(|v| {
                    let r = t.cells[v][op].response.index();
                    seen[r].replace(v).is_none()
                });
                if injective {
                    let on = ty.op_name(OpId(op as u16));
                    let witness: Vec<String> = (0..t.num_values)
                        .map(|v| {
                            format!(
                                "{}↦{}",
                                ty.value_name(ValueId(v as u16)),
                                ty.response_name(t.cells[v][op].response)
                            )
                        })
                        .collect();
                    report.push(Diagnostic::new(
                        self.code(),
                        Severity::Info,
                        Locus::op(&t.name, &on),
                        format!(
                            "certified readable: {on} never mutates and identifies every \
                             value ({})",
                            witness.join(", ")
                        ),
                    ));
                    return;
                }
            }
        }
        // Not readable: refute each operation with a concrete obstruction.
        let mut reasons = Vec::new();
        for op in 0..t.num_ops.min(4) {
            let on = ty.op_name(OpId(op as u16));
            if let Some(v) = (0..t.num_values).find(|&v| t.cells[v][op].next.index() != v) {
                reasons.push(format!(
                    "{on} mutates {}→{}",
                    ty.value_name(ValueId(v as u16)),
                    ty.value_name(t.cells[v][op].next)
                ));
                continue;
            }
            let mut by_resp = vec![None; t.num_responses];
            for v in 0..t.num_values {
                let r = t.cells[v][op].response.index();
                if let Some(w) = by_resp[r].replace(v) {
                    reasons.push(format!(
                        "{on} cannot distinguish {} from {} (both return {})",
                        ty.value_name(ValueId(w as u16)),
                        ty.value_name(ValueId(v as u16)),
                        ty.response_name(t.cells[v][op].response)
                    ));
                    break;
                }
            }
        }
        if t.num_ops > 4 {
            reasons.push(format!("… and {} more operations", t.num_ops - 4));
        }
        report.push(
            Diagnostic::new(
                self.code(),
                Severity::Info,
                Locus::ty(&t.name),
                format!("not readable: {}", reasons.join("; ")),
            )
            .with_suggestion(
                "Theorem 14 (RCN = recording number) does not apply; use the deciders' \
                 recording bound directly, or augment the type with +read",
            ),
        );
    }
}

/// `RCN006` — crash-idempotent operations.
///
/// In the individual-crash model a restarted process may re-apply its last
/// operation. Operations that are idempotent on values (`f(f(v)) = f(v)`)
/// cannot push the object further on re-application — the structural
/// property that makes crash-retry benign in Golab-style arguments.
pub struct IdempotentOps;

impl SpecLint for IdempotentOps {
    fn code(&self) -> &'static str {
        "RCN006"
    }
    fn name(&self) -> &'static str {
        "idempotent-op"
    }
    fn description(&self) -> &'static str {
        "operations that are idempotent on values (crash-retry safe)"
    }
    fn check(&self, ty: &dyn ObjectType, report: &mut Report) {
        let Some(t) = Table::capture(ty) else { return };
        let mut fully = Vec::new();
        let mut value_only = Vec::new();
        for op in 0..t.num_ops {
            let idem_values = (0..t.num_values).all(|v| {
                let once = t.cells[v][op];
                t.cells[once.next.index()][op].next == once.next
            });
            if !idem_values {
                continue;
            }
            let idem_responses = (0..t.num_values).all(|v| {
                let once = t.cells[v][op];
                t.cells[once.next.index()][op].response == once.response
            });
            let on = ty.op_name(OpId(op as u16));
            if idem_responses {
                fully.push(on);
            } else {
                value_only.push(on);
            }
        }
        if !fully.is_empty() {
            report.push(Diagnostic::new(
                self.code(),
                Severity::Info,
                Locus::ty(&t.name),
                format!(
                    "crash-retry safe (idempotent in value and response): {}",
                    fully.join(", ")
                ),
            ));
        }
        if !value_only.is_empty() {
            report.push(Diagnostic::new(
                self.code(),
                Severity::Info,
                Locus::ty(&t.name),
                format!(
                    "idempotent on values but not responses (re-application keeps the \
                     object, may answer differently): {}",
                    value_only.join(", ")
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_spec::zoo::{BoundedQueue, Register, StickyBit, TestAndSet, Tnn};
    use rcn_spec::Response;

    fn run(lint: &dyn SpecLint, ty: &dyn ObjectType) -> Report {
        let mut r = Report::new();
        lint.check(ty, &mut r);
        r
    }

    /// A type whose apply panics on one cell.
    struct Panicky;
    impl ObjectType for Panicky {
        fn name(&self) -> String {
            "panicky".into()
        }
        fn num_values(&self) -> usize {
            2
        }
        fn num_ops(&self) -> usize {
            1
        }
        fn num_responses(&self) -> usize {
            1
        }
        fn apply(&self, value: ValueId, _op: OpId) -> Outcome {
            assert!(value.index() == 0, "no spec for v1");
            Outcome::new(Response(0), ValueId(0))
        }
    }

    #[test]
    fn closedness_accepts_the_zoo_and_flags_panics() {
        assert_eq!(run(&Closedness, &TestAndSet::new()).errors(), 0);
        assert_eq!(run(&Closedness, &Tnn::new(5, 2)).errors(), 0);
        let r = run(&Closedness, &Panicky);
        assert_eq!(r.errors(), 1);
        assert!(r.diagnostics[0].message.contains("panicked"));
    }

    #[test]
    fn unreachable_values_flags_isolated_value() {
        // 3 values, 1 op: v0 -> v0 (the only source); v1 <-> v2 feed each
        // other, so neither is a source, yet v0 reaches neither.
        let mut b = rcn_spec::TableType::builder("island", 3, 1, 1);
        b.set(0, 0, Outcome::new(Response(0), ValueId(0)));
        b.set(1, 0, Outcome::new(Response(0), ValueId(2)));
        b.set(2, 0, Outcome::new(Response(0), ValueId(1)));
        let t = b.build().unwrap();
        let r = run(&UnreachableValues, &t);
        assert_eq!(r.warnings(), 2);
        assert!(r.diagnostics[0].message.contains("unreachable"));
        // The zoo is clean.
        assert_eq!(run(&UnreachableValues, &StickyBit::new()).warnings(), 0);
        assert_eq!(run(&UnreachableValues, &Register::new(3)).warnings(), 0);
        assert_eq!(run(&UnreachableValues, &Tnn::new(5, 2)).warnings(), 0);
    }

    #[test]
    fn dead_responses_flags_gap_and_tnn_value_reports() {
        let mut b = rcn_spec::TableType::builder("gappy", 1, 1, 3);
        b.set(0, 0, Outcome::new(Response(2), ValueId(0)));
        let t = b.build().unwrap();
        let r = run(&DeadResponses, &t);
        assert_eq!(r.count(Severity::Info), 1);
        assert!(r.diagnostics[0].message.contains("never returned"));
        // T_{5,2} deliberately oversizes op_R's report space: info, not warn.
        let r = run(&DeadResponses, &Tnn::new(5, 2));
        assert_eq!(r.warnings(), 0);
    }

    #[test]
    fn duplicate_ops_flags_identical_columns() {
        let mut b = rcn_spec::TableType::builder("dup", 2, 2, 2);
        for v in 0..2u16 {
            for op in 0..2u16 {
                b.set(v, op, Outcome::new(Response(v), ValueId(v)));
            }
        }
        let t = b.build().unwrap();
        let r = run(&DuplicateOps, &t);
        assert_eq!(r.count(Severity::Info), 1);
        assert!(r.diagnostics[0].message.contains("indistinguishable"));
        assert_eq!(
            run(&DuplicateOps, &Register::new(3)).count(Severity::Info),
            0
        );
    }

    #[test]
    fn readability_certifies_and_refutes() {
        let r = run(&Readability, &TestAndSet::new());
        assert_eq!(r.count(Severity::Info), 1);
        assert!(r.diagnostics[0].message.contains("certified readable"));
        let r = run(&Readability, &BoundedQueue::new(2, 2));
        assert!(r.diagnostics[0].message.contains("not readable"));
        let r = run(&Readability, &Tnn::new(5, 2));
        assert!(r.diagnostics[0].message.contains("not readable"));
    }

    #[test]
    fn idempotence_covers_register_writes() {
        let r = run(&IdempotentOps, &Register::new(2));
        let text = r.render_text();
        assert!(text.contains("crash-retry safe"));
    }
}
