//! The lint traits and the default registry.
//!
//! A lint is a small, named check with a stable `RCN0xx`/`RCN1xx` code.
//! [`Registry::with_defaults`] wires up every built-in lint; callers then
//! use [`Registry::lint_type`] for sequential specifications and
//! [`Registry::lint_system`] for protocol programs.

use crate::diag::Report;
use crate::explore::{explore_process, ExploreConfig, ProcessGraph};
use rcn_model::System;
use rcn_obs::Tracer;
use rcn_spec::ObjectType;

/// A lint over a sequential specification ([`ObjectType`]).
pub trait SpecLint {
    /// Stable diagnostic code, e.g. `"RCN001"`.
    fn code(&self) -> &'static str;
    /// Short kebab-case name, e.g. `"closedness"`.
    fn name(&self) -> &'static str;
    /// One-line description of what the lint checks.
    fn description(&self) -> &'static str;
    /// Runs the lint, pushing diagnostics into `report`.
    fn check(&self, ty: &dyn ObjectType, report: &mut Report);
}

/// A lint over a protocol program, given its per-process abstract state
/// graphs.
pub trait ProgramLint {
    /// Stable diagnostic code, e.g. `"RCN101"`.
    fn code(&self) -> &'static str;
    /// Short kebab-case name, e.g. `"no-output-path"`.
    fn name(&self) -> &'static str;
    /// One-line description of what the lint checks.
    fn description(&self) -> &'static str;
    /// Runs the lint, pushing diagnostics into `report`.
    fn check(
        &self,
        sys: &System,
        graphs: &[ProcessGraph],
        cfg: &ExploreConfig,
        report: &mut Report,
    );
}

/// The set of lints to run, in order.
pub struct Registry {
    spec_lints: Vec<Box<dyn SpecLint>>,
    program_lints: Vec<Box<dyn ProgramLint>>,
}

impl Registry {
    /// An empty registry with no lints.
    pub fn new() -> Self {
        Registry {
            spec_lints: Vec::new(),
            program_lints: Vec::new(),
        }
    }

    /// The full built-in lint set: `RCN001`–`RCN006` over specifications,
    /// `RCN100`–`RCN104` over programs, and the `RCN200`–`RCN203`
    /// differential cross-checks (the budget-clip warning `RCN202` is
    /// emitted by the `RCN200`/`RCN201` lints, which own the budgets).
    pub fn with_defaults() -> Self {
        let mut r = Registry::new();
        r.register_spec(Box::new(crate::spec_lints::Closedness));
        r.register_spec(Box::new(crate::spec_lints::UnreachableValues));
        r.register_spec(Box::new(crate::spec_lints::DeadResponses));
        r.register_spec(Box::new(crate::spec_lints::DuplicateOps));
        r.register_spec(Box::new(crate::spec_lints::Readability));
        r.register_spec(Box::new(crate::spec_lints::IdempotentOps));
        r.register_program(Box::new(crate::program_lints::AnalysisBound));
        r.register_program(Box::new(crate::program_lints::NoOutputPath));
        r.register_program(Box::new(crate::program_lints::TransitionTotality));
        r.register_program(Box::new(crate::program_lints::DeadObjects));
        r.register_program(Box::new(crate::program_lints::CrashDivergence));
        r.register_program(Box::new(crate::cross_lints::CrossCrashtest::default()));
        r.register_program(Box::new(crate::cross_lints::CrossValency::default()));
        r.register_program(Box::new(crate::cross_lints::ReplayBridge::default()));
        r
    }

    /// Appends a specification lint.
    pub fn register_spec(&mut self, lint: Box<dyn SpecLint>) {
        self.spec_lints.push(lint);
    }

    /// Appends a program lint.
    pub fn register_program(&mut self, lint: Box<dyn ProgramLint>) {
        self.program_lints.push(lint);
    }

    /// `(code, name, description)` for every registered lint, spec lints
    /// first.
    pub fn descriptions(&self) -> Vec<(&'static str, &'static str, &'static str)> {
        let mut out: Vec<_> = self
            .spec_lints
            .iter()
            .map(|l| (l.code(), l.name(), l.description()))
            .collect();
        out.extend(
            self.program_lints
                .iter()
                .map(|l| (l.code(), l.name(), l.description())),
        );
        out
    }

    /// Lints a sequential specification.
    ///
    /// Closedness (`RCN001`) gates the rest: if the table is not a valid
    /// total specification, the structural lints would chase nonsense, so
    /// they are skipped.
    pub fn lint_type(&self, ty: &dyn ObjectType) -> Report {
        self.lint_type_traced(ty, &Tracer::disabled())
    }

    /// [`lint_type`](Self::lint_type) with observability: one `lint.type`
    /// span per run, a `lint.spec_passes` counter per lint executed, and
    /// `lint.diagnostics` incremented per diagnostic produced.
    pub fn lint_type_traced(&self, ty: &dyn ObjectType, tracer: &Tracer) -> Report {
        let _span = tracer.span_with("lint.type", self.spec_lints.len() as i64, &ty.name());
        let passes = tracer.counter("lint.spec_passes");
        let diags = tracer.counter("lint.diagnostics");
        let mut report = Report::new();
        for lint in &self.spec_lints {
            passes.incr();
            lint.check(ty, &mut report);
            if lint.code() == "RCN001" && report.errors() > 0 {
                break;
            }
        }
        report.finish();
        diags.add(report.diagnostics.len() as u64);
        report
    }

    /// Lints a protocol program by exploring each process's abstract
    /// state graph once and handing the graphs to every program lint.
    pub fn lint_system(&self, sys: &System, cfg: &ExploreConfig) -> Report {
        self.lint_system_traced(sys, cfg, &Tracer::disabled())
    }

    /// [`lint_system`](Self::lint_system) with observability: one
    /// `lint.system` span per run, a `lint.graphs_explored` counter per
    /// process graph built, `lint.program_passes` per lint executed, and
    /// `lint.diagnostics` per diagnostic produced.
    pub fn lint_system_traced(&self, sys: &System, cfg: &ExploreConfig, tracer: &Tracer) -> Report {
        let _span = tracer.span_with(
            "lint.system",
            self.program_lints.len() as i64,
            &sys.program().name(),
        );
        let graphs_counter = tracer.counter("lint.graphs_explored");
        let passes = tracer.counter("lint.program_passes");
        let diags = tracer.counter("lint.diagnostics");
        let graphs: Vec<ProcessGraph> = sys
            .processes()
            .into_iter()
            .map(|pid| {
                graphs_counter.incr();
                explore_process(sys, pid, cfg)
            })
            .collect();
        let mut report = Report::new();
        for lint in &self.program_lints {
            passes.incr();
            lint.check(sys, &graphs, cfg, &mut report);
        }
        report.finish();
        diags.add(report.diagnostics.len() as u64);
        report
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_codes() {
        let r = Registry::with_defaults();
        let codes: Vec<&str> = r.descriptions().iter().map(|(c, _, _)| *c).collect();
        // RCN202 (budget clip) is emitted by the RCN200/RCN201 lints
        // rather than registered separately, so it does not appear here.
        assert_eq!(
            codes,
            [
                "RCN001", "RCN002", "RCN003", "RCN004", "RCN005", "RCN006", "RCN100", "RCN101",
                "RCN102", "RCN103", "RCN104", "RCN200", "RCN201", "RCN203"
            ]
        );
    }

    #[test]
    fn unclosed_spec_gates_structural_lints() {
        struct Broken;
        impl rcn_spec::ObjectType for Broken {
            fn name(&self) -> String {
                "broken".into()
            }
            fn num_values(&self) -> usize {
                2
            }
            fn num_ops(&self) -> usize {
                1
            }
            fn num_responses(&self) -> usize {
                1
            }
            fn apply(&self, v: rcn_spec::ValueId, _op: rcn_spec::OpId) -> rcn_spec::Outcome {
                // Out-of-range next value for v1.
                rcn_spec::Outcome::new(rcn_spec::Response(0), rcn_spec::ValueId(v.0 + 7))
            }
        }
        let report = Registry::with_defaults().lint_type(&Broken);
        assert!(report.errors() > 0);
        assert!(report.diagnostics.iter().all(|d| d.code == "RCN001"));
    }

    #[test]
    fn traced_lint_counts_passes_and_diagnostics() {
        let tracer = Tracer::metrics_only();
        let reg = Registry::with_defaults();
        let report = reg.lint_type_traced(&rcn_spec::zoo::Register::new(3), &tracer);
        let snap = tracer.snapshot().expect("metrics tracer has a snapshot");
        assert_eq!(snap.counter("lint.spec_passes"), Some(6));
        assert_eq!(
            snap.counter("lint.diagnostics"),
            Some(report.diagnostics.len() as u64)
        );
        // Untraced runs produce the identical report.
        assert_eq!(report, reg.lint_type(&rcn_spec::zoo::Register::new(3)));
    }

    #[test]
    fn clean_type_reaches_info_lints() {
        let reg = Registry::with_defaults();
        let report = reg.lint_type(&rcn_spec::zoo::Register::new(3));
        assert_eq!(report.errors(), 0);
        // Readability + idempotence always have something to say.
        assert!(report.diagnostics.iter().any(|d| d.code == "RCN005"));
    }
}
