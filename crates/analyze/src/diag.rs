//! The diagnostics data model: severities, loci, diagnostics and reports.
//!
//! Every lint produces [`Diagnostic`]s — machine-readable findings in the
//! style of `rustc` — which a [`Report`] collects, sorts deterministically,
//! and renders either as human-readable text or as JSON (for tooling and
//! CI).

use serde::Serialize;
use std::fmt;

/// How bad a finding is.
///
/// Ordering is by badness: `Info < Warn < Error`, so
/// [`Report::worst`] can use `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Severity {
    /// A certified fact worth surfacing (e.g. a readability witness).
    Info,
    /// A suspicious but legal construction (e.g. a duplicate operation).
    Warn,
    /// A violated hypothesis (e.g. an out-of-range outcome).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warn => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// What kind of entity a diagnostic points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum LocusKind {
    /// A whole object type.
    Type,
    /// One value of a type.
    Value,
    /// One operation of a type.
    Op,
    /// One response id of a type.
    Response,
    /// One `(value, operation)` cell of a transition table.
    Cell,
    /// A whole program (a per-process state machine).
    Program,
    /// One local state of a program.
    State,
    /// One shared object of a program's heap layout.
    Object,
}

impl fmt::Display for LocusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocusKind::Type => write!(f, "type"),
            LocusKind::Value => write!(f, "value"),
            LocusKind::Op => write!(f, "op"),
            LocusKind::Response => write!(f, "response"),
            LocusKind::Cell => write!(f, "cell"),
            LocusKind::Program => write!(f, "program"),
            LocusKind::State => write!(f, "state"),
            LocusKind::Object => write!(f, "object"),
        }
    }
}

/// Where a diagnostic points: a subject (the type or program under
/// analysis), the kind of entity within it, and a rendered coordinate.
///
/// # Examples
///
/// ```
/// use rcn_analyze::{Locus, LocusKind};
/// let locus = Locus::cell("test-and-set", "v0", "op0");
/// assert_eq!(locus.kind, LocusKind::Cell);
/// assert_eq!(locus.to_string(), "test-and-set: cell (v0, op0)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct Locus {
    /// The name of the type or program under analysis.
    pub subject: String,
    /// The kind of entity pointed at.
    pub kind: LocusKind,
    /// The coordinate within the subject (e.g. `"v3"`, `"(v0, op1)"`,
    /// `"⟨1,0,0⟩"`); empty when the locus is the whole subject.
    pub detail: String,
}

impl Locus {
    /// A locus covering a whole type.
    pub fn ty(subject: impl Into<String>) -> Self {
        Locus {
            subject: subject.into(),
            kind: LocusKind::Type,
            detail: String::new(),
        }
    }

    /// A locus pointing at one value of a type.
    pub fn value(subject: impl Into<String>, value: impl Into<String>) -> Self {
        Locus {
            subject: subject.into(),
            kind: LocusKind::Value,
            detail: value.into(),
        }
    }

    /// A locus pointing at one operation of a type.
    pub fn op(subject: impl Into<String>, op: impl Into<String>) -> Self {
        Locus {
            subject: subject.into(),
            kind: LocusKind::Op,
            detail: op.into(),
        }
    }

    /// A locus pointing at one response id of a type.
    pub fn response(subject: impl Into<String>, response: impl Into<String>) -> Self {
        Locus {
            subject: subject.into(),
            kind: LocusKind::Response,
            detail: response.into(),
        }
    }

    /// A locus pointing at one `(value, op)` cell of a transition table.
    pub fn cell(
        subject: impl Into<String>,
        value: impl fmt::Display,
        op: impl fmt::Display,
    ) -> Self {
        Locus {
            subject: subject.into(),
            kind: LocusKind::Cell,
            detail: format!("({value}, {op})"),
        }
    }

    /// A locus covering a whole program.
    pub fn program(subject: impl Into<String>) -> Self {
        Locus {
            subject: subject.into(),
            kind: LocusKind::Program,
            detail: String::new(),
        }
    }

    /// A locus pointing at one local state of a program.
    pub fn state(subject: impl Into<String>, state: impl Into<String>) -> Self {
        Locus {
            subject: subject.into(),
            kind: LocusKind::State,
            detail: state.into(),
        }
    }

    /// A locus pointing at one shared object of a program's layout.
    pub fn object(subject: impl Into<String>, object: impl Into<String>) -> Self {
        Locus {
            subject: subject.into(),
            kind: LocusKind::Object,
            detail: object.into(),
        }
    }
}

impl fmt::Display for Locus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.detail.is_empty() {
            write!(f, "{}: {}", self.subject, self.kind)
        } else {
            write!(f, "{}: {} {}", self.subject, self.kind, self.detail)
        }
    }
}

/// One finding: a stable code, a severity, a locus, a human-readable
/// message, and an optional suggestion.
///
/// Codes are `RCN0xx` for spec lints (over [`rcn_spec::ObjectType`]) and
/// `RCN1xx` for program lints (over [`rcn_model::Program`] state machines).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// The stable lint code, e.g. `"RCN001"`.
    pub code: String,
    /// The severity of the finding.
    pub severity: Severity,
    /// Where the finding points.
    pub locus: Locus,
    /// The human-readable description of the finding.
    pub message: String,
    /// An optional actionable suggestion.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic without a suggestion.
    pub fn new(code: &str, severity: Severity, locus: Locus, message: impl Into<String>) -> Self {
        Diagnostic {
            code: code.to_string(),
            severity,
            locus,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a suggestion.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }
}

/// `rustc`-style rendering:
///
/// ```text
/// error[RCN001]: outcome of op0 on v0 targets out-of-range v9
///   --> bad-table: cell (v0, op0)
///   = help: keep next-value ids below num_values
/// ```
impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        write!(f, "  --> {}", self.locus)?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  = help: {s}")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics for one analysis run.
///
/// # Examples
///
/// ```
/// use rcn_analyze::{Diagnostic, Locus, Report, Severity};
/// let mut report = Report::new();
/// report.push(Diagnostic::new(
///     "RCN001",
///     Severity::Error,
///     Locus::ty("bad"),
///     "something is off",
/// ));
/// assert_eq!(report.errors(), 1);
/// assert!(report.render_text().contains("error[RCN001]"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct Report {
    /// The findings, in deterministic order (severity-descending, then
    /// code, then locus) after [`finish`](Report::finish).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    /// Appends all diagnostics of another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Sorts the diagnostics deterministically: errors first, then by
    /// code, subject and locus detail.
    pub fn finish(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.cmp(&b.code))
                .then_with(|| a.locus.subject.cmp(&b.locus.subject))
                .then_with(|| a.locus.detail.cmp(&b.locus.detail))
                .then_with(|| a.message.cmp(&b.message))
        });
    }

    /// Number of diagnostics with the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of errors.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warnings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// The worst severity present, or `None` for an empty report.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Returns `true` if the report should fail a gated run: it contains
    /// an error, or (`deny_warnings`) a warning.
    pub fn should_fail(&self, deny_warnings: bool) -> bool {
        match self.worst() {
            Some(Severity::Error) => true,
            Some(Severity::Warn) => deny_warnings,
            _ => false,
        }
    }

    /// Renders the report as human-readable text, one rustc-style block
    /// per diagnostic plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push_str("\n\n");
        }
        out.push_str(&format!(
            "{} error{}, {} warning{}, {} info",
            self.errors(),
            if self.errors() == 1 { "" } else { "s" },
            self.warnings(),
            if self.warnings() == 1 { "" } else { "s" },
            self.count(Severity::Info),
        ));
        out.push('\n');
        out
    }

    /// Renders the report as pretty-printed JSON.
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            "RCN005",
            Severity::Info,
            Locus::op("tas", "op1"),
            "op1 is a read",
        ));
        r.push(
            Diagnostic::new(
                "RCN001",
                Severity::Error,
                Locus::cell("tas", "v0", "op0"),
                "outcome out of range",
            )
            .with_suggestion("fix the table"),
        );
        r.push(Diagnostic::new(
            "RCN004",
            Severity::Warn,
            Locus::op("tas", "op2"),
            "duplicate op",
        ));
        r
    }

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn finish_sorts_errors_first() {
        let mut r = sample();
        r.finish();
        assert_eq!(r.diagnostics[0].code, "RCN001");
        assert_eq!(r.worst(), Some(Severity::Error));
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
    }

    #[test]
    fn gating_honours_deny_warnings() {
        let mut warn_only = Report::new();
        warn_only.push(Diagnostic::new(
            "RCN004",
            Severity::Warn,
            Locus::ty("t"),
            "m",
        ));
        assert!(!warn_only.should_fail(false));
        assert!(warn_only.should_fail(true));
        assert!(!Report::new().should_fail(true));
        assert!(sample().should_fail(false));
    }

    #[test]
    fn text_rendering_is_rustc_style() {
        let mut r = sample();
        r.finish();
        let text = r.render_text();
        assert!(text.contains("error[RCN001]: outcome out of range"));
        assert!(text.contains("--> tas: cell (v0, op0)"));
        assert!(text.contains("= help: fix the table"));
        assert!(text.contains("1 error, 1 warning, 1 info"));
    }

    #[test]
    fn json_rendering_mentions_all_fields() {
        let json = sample().render_json();
        assert!(json.contains("\"code\": \"RCN001\""));
        assert!(json.contains("\"severity\": \"Error\""));
        assert!(json.contains("\"suggestion\""));
    }

    #[test]
    fn locus_constructors_render() {
        assert_eq!(Locus::ty("t").to_string(), "t: type");
        assert_eq!(Locus::value("t", "v1").to_string(), "t: value v1");
        assert_eq!(Locus::response("t", "r2").to_string(), "t: response r2");
        assert_eq!(Locus::program("p").to_string(), "p: program");
        assert_eq!(Locus::state("p", "⟨1⟩").to_string(), "p: state ⟨1⟩");
        assert_eq!(Locus::object("p", "obj0").to_string(), "p: object obj0");
    }
}
