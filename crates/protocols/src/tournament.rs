//! Recoverable consensus from recording witnesses, via a tournament tree.
//!
//! This is our machine-verified variant of the DFFR'22 Theorem 8 direction
//! (*n-recording readable type ⟹ recoverable consensus number ≥ n*). The
//! paper cites but does not restate DFFR's construction, so we implement a
//! construction of our own and validate it with the model checker in
//! `rcn-valency` (see EXPERIMENTS.md, E5). It covers **non-hiding**
//! witnesses — those whose initial value `u` satisfies `u ∉ U_0 ∪ U_1` —
//! which is exactly what makes the crash-safety argument go through:
//!
//! * *at-most-once*: a process applies its operation only after reading `u`;
//!   since any nonempty schedule leaves a value in `U_0 ∪ U_1 ∌ u`, reading
//!   `u` proves nobody (including a pre-crash self) has applied yet;
//! * *team detection*: once the value is in `U_x` it stays in `U_x` (the
//!   `U` sets are closed under continuations), so any later read identifies
//!   the first mover's team, across any number of crashes;
//! * *value agreement*: the tree reduces n-process consensus to a chain of
//!   2-team contests; each team is a subtree whose members have already
//!   agreed on a candidate recursively, and a candidate register per team
//!   (written before the team touches the contest object) publishes it.
//!
//! Hiding witnesses (`u ∈ U_x`, `|T_x̄| = 1`) are not supported; the plan
//! builder reports which contests lack a non-hiding witness.

use rcn_decide::Analysis;
use rcn_model::{Action, HeapLayout, LocalState, ObjectId, ProcessId, Program, System};
use rcn_spec::zoo::Register;
use rcn_spec::{ObjectType, OpId, Response, ValueId};
use std::fmt;
use std::sync::Arc;

/// Stage codes within a tournament node (stored in `LocalState` word 2).
const STAGE_WRITE_CAND: u32 = 0;
const STAGE_READ_FIRST: u32 = 1;
const STAGE_APPLY: u32 = 2;
const STAGE_READ_SECOND: u32 = 3;
const STAGE_READ_WINNER: u32 = 4;

/// One contest of the tournament: a subset of processes split into two
/// teams with a non-hiding recording witness over one object.
#[derive(Debug, Clone)]
struct PlanNode {
    /// `(process, team, op)` for each participant.
    members: Vec<(usize, u8, OpId)>,
    /// The witness's initial value `u`.
    initial: ValueId,
    /// `team_of_value[v]` = the team whose first move can produce value `v`.
    team_of_value: Vec<Option<u8>>,
    /// The contest object (filled when the layout is built).
    object: ObjectId,
    /// Candidate registers, one per team.
    cand: [ObjectId; 2],
}

/// Errors from [`TournamentConsensus::try_new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The type has no read operation (the construction needs one).
    NotReadable,
    /// No non-hiding recording witness exists for a contest with the given
    /// team sizes.
    NoWitness {
        /// Size of team 0 (a subtree of processes).
        team0: usize,
        /// Size of team 1.
        team1: usize,
    },
    /// Fewer than 2 processes.
    TooFewProcesses,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NotReadable => write!(f, "the type is not readable"),
            PlanError::NoWitness { team0, team1 } => write!(
                f,
                "no non-hiding recording witness for a ({team0} vs {team1}) contest"
            ),
            PlanError::TooFewProcesses => write!(f, "need at least 2 processes"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Tournament-tree recoverable consensus from a readable type with
/// non-hiding recording witnesses.
///
/// # Examples
///
/// Sticky bits support contests of every shape, so the construction gives
/// recoverable consensus for any number of processes:
///
/// ```
/// use rcn_protocols::TournamentConsensus;
/// use rcn_model::{drive, CrashBudget, CrashyAdversary};
/// use rcn_spec::zoo::StickyBit;
/// use std::sync::Arc;
///
/// let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![1, 0, 1]).unwrap();
/// let mut adv = CrashyAdversary::new(3, 0.3, CrashBudget::new(1, 3));
/// let report = drive(&sys, &mut adv, 50_000);
/// assert!(report.is_clean_consensus());
/// ```
#[derive(Debug)]
pub struct TournamentConsensus {
    nodes: Vec<PlanNode>,
    /// Per process: the node ids it participates in, leaf-most first.
    paths: Vec<Vec<usize>>,
    /// The type's read op and its response → value decoding.
    read_op: OpId,
    resp_to_value: Vec<Option<ValueId>>,
}

impl TournamentConsensus {
    /// Builds the tournament system for the given inputs over objects of
    /// type `ty`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the type is not readable, there are fewer
    /// than 2 processes, or some contest lacks a non-hiding witness.
    ///
    /// # Panics
    ///
    /// Panics if any input is not binary.
    pub fn try_new(
        ty: Arc<dyn ObjectType + Send + Sync>,
        inputs: Vec<u32>,
    ) -> Result<System, PlanError> {
        assert!(inputs.iter().all(|&x| x <= 1), "inputs must be binary");
        let n = inputs.len();
        if n < 2 {
            return Err(PlanError::TooFewProcesses);
        }
        let read_op = ty.read_op().ok_or(PlanError::NotReadable)?;
        let mut resp_to_value = vec![None; ty.num_responses()];
        for v in 0..ty.num_values() {
            let out = ty.apply(ValueId(v as u16), read_op);
            resp_to_value[out.response.index()] = Some(ValueId(v as u16));
        }

        // Build the (left-leaning) tree of contests over process ranges.
        let mut nodes: Vec<PlanNode> = Vec::new();
        build_tree(&*ty, 0, n, &mut nodes)?;

        // Allocate objects: contest object + 2 candidate registers per node.
        let mut layout = HeapLayout::new();
        for (i, node) in nodes.iter_mut().enumerate() {
            node.object = layout.add_object(format!("O{i}"), ty.clone(), node.initial);
            let c0 = layout.add_object(
                format!("C{i}.0"),
                Arc::new(Register::new(3)),
                ValueId::new(2), // ⊥
            );
            let c1 = layout.add_object(
                format!("C{i}.1"),
                Arc::new(Register::new(3)),
                ValueId::new(2),
            );
            node.cand = [c0, c1];
        }

        // Per-process participation paths (nodes are created bottom-up, so
        // increasing node id order is leaf-most first).
        let mut paths = vec![Vec::new(); n];
        for (id, node) in nodes.iter().enumerate() {
            for &(p, _, _) in &node.members {
                paths[p].push(id);
            }
        }

        let program = TournamentConsensus {
            nodes,
            paths,
            read_op,
            resp_to_value,
        };
        Ok(System::new(Arc::new(program), Arc::new(layout), inputs))
    }

    fn node_role(&self, node: &PlanNode, pid: usize) -> (u8, OpId) {
        node.members
            .iter()
            .find(|&&(p, _, _)| p == pid)
            .map(|&(_, team, op)| (team, op))
            .expect("process participates in its path nodes")
    }
}

/// Recursively builds contests for the process range `[lo, hi)`.
fn build_tree(
    ty: &dyn ObjectType,
    lo: usize,
    hi: usize,
    nodes: &mut Vec<PlanNode>,
) -> Result<(), PlanError> {
    let size = hi - lo;
    if size <= 1 {
        return Ok(());
    }
    let mid = lo + size / 2;
    build_tree(ty, lo, mid, nodes)?;
    build_tree(ty, mid, hi, nodes)?;
    let team0: Vec<usize> = (lo..mid).collect();
    let team1: Vec<usize> = (mid..hi).collect();
    let node = find_contest_witness(ty, &team0, &team1)?;
    nodes.push(node);
    Ok(())
}

/// Searches for a non-hiding recording witness for the given teams:
/// a value `u` and per-member ops with `U_0 ∩ U_1 = ∅` and `u ∉ U_0 ∪ U_1`.
fn find_contest_witness(
    ty: &dyn ObjectType,
    team0: &[usize],
    team1: &[usize],
) -> Result<PlanNode, PlanError> {
    let (a, b) = (team0.len(), team1.len());
    let num_ops = ty.num_ops();
    // Candidate op assignments for the two teams: first the uniform ones
    // (one op per team — these succeed immediately for the common types and
    // keep the search polynomial), then the full multiset space.
    let uniform = (0..num_ops).flat_map(move |x| {
        (0..num_ops).map(move |y| (vec![OpId(x as u16); a], vec![OpId(y as u16); b]))
    });
    let full = multisets(num_ops, a).into_iter().flat_map(move |ops0| {
        multisets(num_ops, b)
            .into_iter()
            .map(move |ops1| (ops0.clone(), ops1))
    });
    for u in 0..ty.num_values() {
        let u = ValueId(u as u16);
        for (ops0, ops1) in uniform.clone().chain(full.clone()) {
            {
                let mut ops: Vec<OpId> = Vec::with_capacity(a + b);
                ops.extend(&ops0);
                ops.extend(&ops1);
                let analysis = Analysis::new(ty, u, &ops);
                let t0: Vec<usize> = (0..a).collect();
                let t1: Vec<usize> = (a..a + b).collect();
                let u0 = analysis.value_set(&t0);
                let u1 = analysis.value_set(&t1);
                if u0.intersects(&u1) || u0.contains(u.index()) || u1.contains(u.index()) {
                    continue;
                }
                let mut team_of_value = vec![None; ty.num_values()];
                for v in u0.iter() {
                    team_of_value[v] = Some(0);
                }
                for v in u1.iter() {
                    team_of_value[v] = Some(1);
                }
                let mut members = Vec::with_capacity(a + b);
                for (k, &p) in team0.iter().enumerate() {
                    members.push((p, 0u8, ops[k]));
                }
                for (k, &p) in team1.iter().enumerate() {
                    members.push((p, 1u8, ops[a + k]));
                }
                return Ok(PlanNode {
                    members,
                    initial: u,
                    team_of_value,
                    object: ObjectId::new(0), // filled later
                    cand: [ObjectId::new(0), ObjectId::new(0)],
                });
            }
        }
    }
    Err(PlanError::NoWitness { team0: a, team1: b })
}

/// Non-decreasing op sequences of length `k` over `0..num_ops` (owned, so
/// the candidate iterators above stay `Clone`; the lists are small for the
/// node sizes the tournament uses).
fn multisets(num_ops: usize, k: usize) -> Vec<Vec<OpId>> {
    let mut out = Vec::new();
    let mut current = vec![OpId(0); k];
    loop {
        out.push(current.clone());
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if current[i].index() + 1 < num_ops {
                let bumped = OpId(current[i].0 + 1);
                for slot in current.iter_mut().skip(i) {
                    *slot = bumped;
                }
                break;
            }
        }
    }
}

// Local state layout: [candidate, path_index, stage, winner_team].
impl Program for TournamentConsensus {
    fn name(&self) -> String {
        format!("tournament-consensus<{} nodes>", self.nodes.len())
    }

    fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
        LocalState::from_words([input, 0, STAGE_WRITE_CAND, 0])
    }

    fn action(&self, pid: ProcessId, state: &LocalState) -> Action {
        let path = &self.paths[pid.index()];
        let k = state.word(1) as usize;
        if k >= path.len() {
            return Action::Output(state.word(0));
        }
        let node = &self.nodes[path[k]];
        let (team, op) = self.node_role(node, pid.index());
        match state.word(2) {
            STAGE_WRITE_CAND => Action::Invoke {
                object: node.cand[team as usize],
                // Register write(k) has op id k.
                op: OpId::new(state.word(0) as u16),
            },
            STAGE_READ_FIRST | STAGE_READ_SECOND => Action::Invoke {
                object: node.object,
                op: self.read_op,
            },
            STAGE_APPLY => Action::Invoke {
                object: node.object,
                op,
            },
            STAGE_READ_WINNER => Action::Invoke {
                object: node.cand[state.word(3) as usize],
                op: OpId::new(3), // read of a domain-3 register
            },
            other => panic!("invalid stage {other}"),
        }
    }

    fn transition(&self, pid: ProcessId, state: &LocalState, response: Response) -> LocalState {
        let path = &self.paths[pid.index()];
        let candidate = state.word(0);
        let k = state.word(1);
        let node = &self.nodes[path[k as usize]];
        match state.word(2) {
            STAGE_WRITE_CAND => LocalState::from_words([candidate, k, STAGE_READ_FIRST, 0]),
            STAGE_READ_FIRST => {
                let value =
                    self.resp_to_value[response.index()].expect("read responses decode to values");
                if value == node.initial {
                    // Untouched: nobody (including a pre-crash self) has
                    // applied; safe to apply now.
                    LocalState::from_words([candidate, k, STAGE_APPLY, 0])
                } else {
                    let winner = node.team_of_value[value.index()].unwrap_or(0);
                    LocalState::from_words([candidate, k, STAGE_READ_WINNER, winner as u32])
                }
            }
            STAGE_APPLY => LocalState::from_words([candidate, k, STAGE_READ_SECOND, 0]),
            STAGE_READ_SECOND => {
                let value =
                    self.resp_to_value[response.index()].expect("read responses decode to values");
                // After our own application the value cannot be u.
                let winner = node.team_of_value[value.index()].unwrap_or(0);
                LocalState::from_words([candidate, k, STAGE_READ_WINNER, winner as u32])
            }
            STAGE_READ_WINNER => {
                // The winning team wrote its agreed candidate before
                // touching the object, so the register is set.
                let new_candidate = match response.index() {
                    x @ (0 | 1) => x as u32,
                    _ => candidate, // ⊥ would indicate a plan bug
                };
                LocalState::from_words([new_candidate, k + 1, STAGE_WRITE_CAND, 0])
            }
            other => panic!("invalid stage {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::{drive, CrashBudget, CrashyAdversary, RoundRobin};
    use rcn_spec::zoo::{CompareAndSwap, Register as Reg, StickyBit, TeamCounter, TestAndSet, Tnn};

    #[test]
    fn sticky_bit_tournament_runs_clean() {
        for n in 2..5usize {
            let inputs: Vec<u32> = (0..n as u32).map(|i| i % 2).collect();
            let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), inputs).unwrap();
            let report = drive(&sys, &mut RoundRobin::new(), 10_000);
            assert!(report.is_clean_consensus(), "n={n}");
        }
    }

    #[test]
    fn sticky_bit_tournament_survives_random_crashes() {
        let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![1, 0, 1]).unwrap();
        for seed in 0..15 {
            let mut adv = CrashyAdversary::new(seed, 0.35, CrashBudget::new(1, 3));
            let report = drive(&sys, &mut adv, 50_000);
            assert!(
                report.is_clean_consensus(),
                "seed {seed}: {:?} via {}",
                report.violation,
                report.schedule
            );
        }
    }

    #[test]
    fn cas_tournament_works() {
        let sys =
            TournamentConsensus::try_new(Arc::new(CompareAndSwap::new(3)), vec![0, 1, 1]).unwrap();
        for seed in 0..10 {
            let mut adv = CrashyAdversary::new(seed, 0.3, CrashBudget::new(1, 3));
            let report = drive(&sys, &mut adv, 50_000);
            assert!(report.is_clean_consensus(), "seed {seed}");
        }
    }

    #[test]
    fn team_counter_supports_its_recording_number() {
        // TeamCounter(4) is 3-recording: the tournament runs 3 processes.
        let sys =
            TournamentConsensus::try_new(Arc::new(TeamCounter::new(4)), vec![1, 0, 0]).unwrap();
        for seed in 0..10 {
            let mut adv = CrashyAdversary::new(seed, 0.3, CrashBudget::new(1, 3));
            let report = drive(&sys, &mut adv, 50_000);
            assert!(report.is_clean_consensus(), "seed {seed}");
        }
    }

    #[test]
    fn readable_tnn_supports_two_processes() {
        // T_{3,2} is readable and 2-recording.
        let sys = TournamentConsensus::try_new(Arc::new(Tnn::new(3, 2)), vec![0, 1]).unwrap();
        let report = drive(&sys, &mut RoundRobin::new(), 10_000);
        assert!(report.is_clean_consensus());
    }

    #[test]
    fn registers_have_no_witness() {
        match TournamentConsensus::try_new(Arc::new(Reg::new(3)), vec![0, 1]) {
            Err(PlanError::NoWitness { team0: 1, team1: 1 }) => {}
            other => panic!("expected NoWitness, got {other:?}"),
        }
    }

    #[test]
    fn test_and_set_has_no_witness() {
        // Golab's separation strikes again: T&S is not 2-recording, so no
        // contest witness exists.
        assert!(TournamentConsensus::try_new(Arc::new(TestAndSet::new()), vec![0, 1]).is_err());
    }

    #[test]
    fn single_process_is_rejected() {
        assert_eq!(
            TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![1]).unwrap_err(),
            PlanError::TooFewProcesses
        );
    }

    #[test]
    fn decisions_follow_the_contest_winner() {
        let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![0, 1]).unwrap();
        let mut config = sys.initial_config();
        // Let p1 run alone to completion: it wins every contest.
        let d1 = sys.run_solo(&mut config, ProcessId::new(1), 1_000).unwrap();
        assert_eq!(d1, 1);
        let d0 = sys.run_solo(&mut config, ProcessId::new(0), 1_000).unwrap();
        assert_eq!(d0, 1, "p0 must adopt the winner's value");
    }
}
