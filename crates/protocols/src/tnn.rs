//! The two `T_{n,n'}` consensus algorithms of §4 of the paper.
//!
//! **Wait-free, n processes** (first algorithm): *"The object O begins with
//! value s. A process with input x ∈ {0,1} applies op_x to O and decides the
//! value returned by the operation."* Correct without crashes because the
//! first operation determines the next n−1 responses; **not** correct under
//! crashes (a crashed process re-applies, burning the counter).
//!
//! **Recoverable wait-free, n' processes** (second algorithm): *"A process
//! with input x first applies op_R. If the operation returns a value
//! s_{v,i}, then the process decides v. If the operation returns ⊥, then the
//! process decides 0 (we will argue that this never happens). Otherwise, the
//! operation returns the initial value s. In this case, the process applies
//! op_x and then decides the value returned."* A crash restarts the process
//! at the op_R step; because op_R is applied before every op_x, each process
//! applies at most one op_x, so the counter never exceeds n' < n and op_R
//! never breaks the object. With n'+1 or more processes this reasoning
//! fails — and the model checker exhibits concrete violations (Lemma 16).

use rcn_model::{Action, HeapLayout, LocalState, ObjectId, ProcessId, Program, System};
use rcn_spec::zoo::Tnn;
use rcn_spec::Response;
use std::sync::Arc;

/// Phases shared by both programs (stored in `LocalState` word 1).
const PHASE_START: u32 = 0;
const PHASE_APPLIED_R: u32 = 1;
const PHASE_DECIDED: u32 = 2;

/// The wait-free n-process consensus program using one `T_{n,n'}` object
/// (§4, first algorithm).
///
/// # Examples
///
/// ```
/// use rcn_protocols::TnnWaitFree;
/// use rcn_model::{drive, RoundRobin};
///
/// let sys = TnnWaitFree::system(5, 2, vec![0, 1, 1, 0, 1]);
/// let report = drive(&sys, &mut RoundRobin::new(), 100);
/// assert!(report.is_clean_consensus());
/// ```
#[derive(Debug, Clone)]
pub struct TnnWaitFree {
    tnn: Tnn,
    object: ObjectId,
}

impl TnnWaitFree {
    /// Builds the complete system: `inputs.len()` processes sharing one
    /// `T_{n,n'}` object initialized to `s`.
    ///
    /// # Panics
    ///
    /// Panics if the `T_{n,n'}` parameters are invalid or any input is not
    /// binary.
    pub fn system(n: usize, n_prime: usize, inputs: Vec<u32>) -> System {
        assert!(inputs.iter().all(|&x| x <= 1), "inputs must be binary");
        let tnn = Tnn::new(n, n_prime);
        let mut layout = HeapLayout::new();
        let object = layout.add_object("O", Arc::new(tnn), tnn.s());
        System::new(
            Arc::new(TnnWaitFree { tnn, object }),
            Arc::new(layout),
            inputs,
        )
    }
}

impl Program for TnnWaitFree {
    fn name(&self) -> String {
        format!("tnn-wait-free<{},{}>", self.tnn.n(), self.tnn.n_prime())
    }

    fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
        LocalState::from_words([input, PHASE_START, 0])
    }

    fn action(&self, _pid: ProcessId, state: &LocalState) -> Action {
        match state.word(1) {
            PHASE_START => Action::Invoke {
                object: self.object,
                op: self.tnn.op_x(state.word(0) as usize),
            },
            _ => Action::Output(state.word(2)),
        }
    }

    fn transition(&self, _pid: ProcessId, state: &LocalState, response: Response) -> LocalState {
        // op_x returns 0 or 1 below the collapse; decide it. A ⊥ response
        // (possible only with > n operations) decides 0 so the program stays
        // total — the checker will catch the resulting violations.
        let decision = match response.index() {
            x @ (0 | 1) => x as u32,
            _ => 0,
        };
        LocalState::from_words([state.word(0), PHASE_DECIDED, decision])
    }
}

/// The recoverable wait-free n'-process consensus program using one
/// `T_{n,n'}` object (§4, second algorithm).
///
/// # Examples
///
/// ```
/// use rcn_protocols::TnnRecoverable;
/// use rcn_model::{drive, CrashBudget, CrashyAdversary};
///
/// let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
/// let mut adv = CrashyAdversary::new(7, 0.3, CrashBudget::new(1, 2));
/// let report = drive(&sys, &mut adv, 10_000);
/// assert!(report.is_clean_consensus());
/// ```
#[derive(Debug, Clone)]
pub struct TnnRecoverable {
    tnn: Tnn,
    object: ObjectId,
}

impl TnnRecoverable {
    /// Builds the complete system. The paper runs this algorithm with
    /// `inputs.len() ≤ n'` processes; building it with more (e.g. `n' + 1`)
    /// is allowed so the model checker can exhibit Lemma 16's impossibility
    /// half.
    ///
    /// # Panics
    ///
    /// Panics if the `T_{n,n'}` parameters are invalid or any input is not
    /// binary.
    pub fn system(n: usize, n_prime: usize, inputs: Vec<u32>) -> System {
        assert!(inputs.iter().all(|&x| x <= 1), "inputs must be binary");
        let tnn = Tnn::new(n, n_prime);
        let mut layout = HeapLayout::new();
        let object = layout.add_object("O", Arc::new(tnn), tnn.s());
        System::new(
            Arc::new(TnnRecoverable { tnn, object }),
            Arc::new(layout),
            inputs,
        )
    }
}

impl Program for TnnRecoverable {
    fn name(&self) -> String {
        format!("tnn-recoverable<{},{}>", self.tnn.n(), self.tnn.n_prime())
    }

    fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
        LocalState::from_words([input, PHASE_START, 0])
    }

    fn action(&self, _pid: ProcessId, state: &LocalState) -> Action {
        match state.word(1) {
            PHASE_START => Action::Invoke {
                object: self.object,
                op: self.tnn.op_r(),
            },
            PHASE_APPLIED_R => Action::Invoke {
                object: self.object,
                op: self.tnn.op_x(state.word(0) as usize),
            },
            _ => Action::Output(state.word(2)),
        }
    }

    fn transition(&self, _pid: ProcessId, state: &LocalState, response: Response) -> LocalState {
        let input = state.word(0);
        match state.word(1) {
            PHASE_START => {
                // Response of op_R.
                if response == self.tnn.value_response(self.tnn.s()) {
                    // Initial value: proceed to apply op_x.
                    LocalState::from_words([input, PHASE_APPLIED_R, 0])
                } else if response == self.tnn.bottom_response() {
                    // "If the operation returns ⊥, decide 0 (never happens
                    // with ≤ n' processes)."
                    LocalState::from_words([input, PHASE_DECIDED, 0])
                } else {
                    // s_{v,i}: decide v.
                    let value = rcn_spec::ValueId((response.index() - 3) as u16);
                    let (v, _) = self
                        .tnn
                        .decode(value)
                        .expect("op_R reports only counter values");
                    LocalState::from_words([input, PHASE_DECIDED, v as u32])
                }
            }
            PHASE_APPLIED_R => {
                let decision = match response.index() {
                    x @ (0 | 1) => x as u32,
                    _ => 0, // ⊥: impossible with ≤ n' processes
                };
                LocalState::from_words([input, PHASE_DECIDED, decision])
            }
            other => panic!("no transition in phase {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::{drive, CrashBudget, CrashyAdversary, RoundRobin, Schedule};

    #[test]
    fn wait_free_decides_first_movers_input() {
        let sys = TnnWaitFree::system(4, 2, vec![0, 1, 1, 1]);
        let mut config = sys.initial_config();
        // p1 (input 1) goes first; everyone then decides 1.
        let sched: Schedule = "p1 p0 p2 p3".parse().unwrap();
        sys.run(&mut config, &sched);
        assert!(config.all_decided());
        assert_eq!(config.outputs(), vec![1]);
    }

    #[test]
    fn wait_free_is_clean_without_crashes() {
        for inputs in [vec![0, 1], vec![1, 0, 1], vec![0, 0, 1, 1]] {
            let n = inputs.len().max(2) + 1;
            let sys = TnnWaitFree::system(n, 1, inputs.clone());
            let report = drive(&sys, &mut RoundRobin::new(), 100);
            assert!(report.is_clean_consensus(), "inputs {inputs:?}");
        }
    }

    #[test]
    fn wait_free_breaks_under_crashes() {
        // A crashed winner re-applies op_x and burns the counter: with
        // T_{2,1}, p0 applies op_0, crashes, re-applies (value hits s_⊥
        // after the 2nd op), then p1's op_1 returns ⊥ → p1 decides 0
        // while... actually p0's second op still returns 0. Build a
        // concrete disagreement: p0 (input 0) applies, crashes, p1 applies
        // op_1 — the schedule exercises the broken path.
        let sys = TnnWaitFree::system(2, 1, vec![0, 1]);
        let mut config = sys.initial_config();
        let sched: Schedule = "p0 c0 p0 p1".parse().unwrap();
        sys.run(&mut config, &sched);
        // p1 saw ⊥ (3rd op) and decided the fallback 0; p0 decided 0: the
        // run "agrees" here, but the object is broken — the full model check
        // in the integration tests shows real violations for larger cases.
        assert!(config.all_decided());
    }

    #[test]
    fn recoverable_handles_crash_restart() {
        let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
        let mut config = sys.initial_config();
        // p0 reads s (op_R), crashes, re-reads, applies op_1, decides 1;
        // p1 then reads s_{1,1} via op_R and decides 1.
        let sched: Schedule = "p0 c0 p0 p0 p1".parse().unwrap();
        sys.run(&mut config, &sched);
        assert_eq!(sys.decided_value(&config, ProcessId::new(0)), Some(1));
        assert_eq!(sys.decided_value(&config, ProcessId::new(1)), Some(1));
    }

    #[test]
    fn recoverable_is_clean_under_random_crashes() {
        for seed in 0..20 {
            let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
            let mut adv = CrashyAdversary::new(seed, 0.35, CrashBudget::new(1, 2));
            let report = drive(&sys, &mut adv, 10_000);
            assert!(
                report.is_clean_consensus(),
                "seed {seed}: {:?} via {}",
                report.violation,
                report.schedule
            );
        }
    }

    #[test]
    fn recoverable_three_of_three_processes() {
        // n' = 3 processes on T_{4,3}.
        for seed in 0..10 {
            let sys = TnnRecoverable::system(4, 3, vec![1, 0, 1]);
            let mut adv = CrashyAdversary::new(seed, 0.3, CrashBudget::new(1, 3));
            let report = drive(&sys, &mut adv, 20_000);
            assert!(report.is_clean_consensus(), "seed {seed}");
        }
    }

    #[test]
    fn recoverable_op_r_decides_from_observed_counter() {
        let sys = TnnRecoverable::system(4, 2, vec![0, 1]);
        let mut config = sys.initial_config();
        // p1: op_R (sees s), op_1 (decides 1). p0: op_R sees s_{1,1} → 1.
        let sched: Schedule = "p1 p1 p0".parse().unwrap();
        sys.run(&mut config, &sched);
        assert_eq!(config.outputs(), vec![1]);
    }
}
