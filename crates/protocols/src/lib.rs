//! # rcn-protocols — consensus protocols from the paper
//!
//! Executable implementations (as [`rcn_model::Program`] state machines) of:
//!
//! * [`TnnWaitFree`] — §4's wait-free n-process consensus from one
//!   `T_{n,n'}` object;
//! * [`TnnRecoverable`] — §4's recoverable wait-free n'-process consensus
//!   (`op_R` first, then `op_x`);
//! * [`TasConsensus`] — the classic 2-process test-and-set consensus
//!   baseline that Golab proved unrecoverable;
//! * [`TournamentConsensus`] — recoverable consensus from any readable type
//!   with non-hiding recording witnesses (our verified variant of the
//!   DFFR'22 Theorem 8 direction), built automatically from decider
//!   witnesses.
//!
//! Every protocol builds a complete [`rcn_model::System`] ready for the
//! `rcn-valency` model checker or the `rcn-runtime` threaded executor.
//!
//! ## Quickstart
//!
//! ```
//! use rcn_protocols::TnnRecoverable;
//! use rcn_model::{drive, CrashBudget, CrashyAdversary};
//!
//! // The paper's recoverable algorithm on T_{5,2}, 2 processes, crashes on.
//! let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
//! let mut adv = CrashyAdversary::new(42, 0.3, CrashBudget::new(1, 2));
//! let report = drive(&sys, &mut adv, 10_000);
//! assert!(report.is_clean_consensus());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod tas;
mod tnn;
mod tournament;

pub use tas::TasConsensus;
pub use tnn::{TnnRecoverable, TnnWaitFree};
pub use tournament::{PlanError, TournamentConsensus};
