//! Classic 2-process consensus from test-and-set + registers, the baseline
//! for Golab's separation (experiment E7).
//!
//! Protocol (Herlihy-style): `p_i` announces its input in register `A[i]`,
//! then applies test&set. The winner (response 0) decides its own input;
//! the loser reads the winner's announcement and decides that.
//!
//! Wait-free and correct **without** crashes. With individual crashes it is
//! broken — Golab (SPAA'20) proved no test-and-set-based algorithm can work;
//! for this concrete protocol the failure is direct: the winner crashes,
//! forgets it won, re-applies test&set, now *loses*, and decides the other
//! process's value while the other process may never even have moved — or
//! both end up "losers" deciding each other's values.

use rcn_model::{Action, HeapLayout, LocalState, ObjectId, ProcessId, Program, System};
use rcn_spec::zoo::{Register, TestAndSet};
use rcn_spec::{Response, ValueId};
use std::sync::Arc;

const PHASE_ANNOUNCE: u32 = 0;
const PHASE_TAS: u32 = 1;
const PHASE_READ_OTHER: u32 = 2;
const PHASE_DECIDED: u32 = 3;

/// The 2-process test-and-set consensus program.
///
/// # Examples
///
/// ```
/// use rcn_protocols::TasConsensus;
/// use rcn_model::{drive, RoundRobin};
///
/// let sys = TasConsensus::system(vec![0, 1]);
/// let report = drive(&sys, &mut RoundRobin::new(), 100);
/// assert!(report.is_clean_consensus()); // crash-free runs are fine
/// ```
#[derive(Debug, Clone)]
pub struct TasConsensus {
    tas: ObjectId,
    announce: [ObjectId; 2],
}

impl TasConsensus {
    /// Builds the 2-process system: one test-and-set bit plus an
    /// announcement register per process.
    ///
    /// # Panics
    ///
    /// Panics unless exactly two binary inputs are given.
    pub fn system(inputs: Vec<u32>) -> System {
        assert_eq!(inputs.len(), 2, "the protocol is for exactly 2 processes");
        assert!(inputs.iter().all(|&x| x <= 1), "inputs must be binary");
        let mut layout = HeapLayout::new();
        let tas = layout.add_object("T", Arc::new(TestAndSet::new()), ValueId::new(0));
        // Register domain 3: values 0, 1, and ⊥ = 2 (initial).
        let a0 = layout.add_object("A0", Arc::new(Register::new(3)), ValueId::new(2));
        let a1 = layout.add_object("A1", Arc::new(Register::new(3)), ValueId::new(2));
        System::new(
            Arc::new(TasConsensus {
                tas,
                announce: [a0, a1],
            }),
            Arc::new(layout),
            inputs,
        )
    }
}

impl Program for TasConsensus {
    fn name(&self) -> String {
        "tas-consensus".into()
    }

    fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
        LocalState::from_words([input, PHASE_ANNOUNCE, 0])
    }

    fn action(&self, pid: ProcessId, state: &LocalState) -> Action {
        let me = pid.index();
        match state.word(1) {
            PHASE_ANNOUNCE => Action::Invoke {
                object: self.announce[me],
                // Register op ids: write(k) = k for k < domain.
                op: rcn_spec::OpId::new(state.word(0) as u16),
            },
            PHASE_TAS => Action::Invoke {
                object: self.tas,
                op: rcn_spec::OpId::new(0),
            },
            PHASE_READ_OTHER => Action::Invoke {
                object: self.announce[1 - me],
                op: rcn_spec::OpId::new(3), // read (domain 3)
            },
            _ => Action::Output(state.word(2)),
        }
    }

    fn transition(&self, _pid: ProcessId, state: &LocalState, response: Response) -> LocalState {
        let input = state.word(0);
        match state.word(1) {
            PHASE_ANNOUNCE => LocalState::from_words([input, PHASE_TAS, 0]),
            PHASE_TAS => {
                if response.index() == 0 {
                    // Won the test-and-set: decide own input.
                    LocalState::from_words([input, PHASE_DECIDED, input])
                } else {
                    LocalState::from_words([input, PHASE_READ_OTHER, 0])
                }
            }
            PHASE_READ_OTHER => {
                // The other process announced before applying test&set, so
                // (crash-free) its announcement is present. Decide it. If we
                // read ⊥ (only possible in crashed executions), fall back to
                // our own input — the checker flags the consequences.
                let d = match response.index() {
                    x @ (0 | 1) => x as u32,
                    _ => input,
                };
                LocalState::from_words([input, PHASE_DECIDED, d])
            }
            other => panic!("no transition in phase {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::{drive, RoundRobin, Schedule};

    #[test]
    fn crash_free_runs_agree_on_the_tas_winner() {
        for inputs in [vec![0, 1], vec![1, 0], vec![0, 0], vec![1, 1]] {
            let sys = TasConsensus::system(inputs.clone());
            let report = drive(&sys, &mut RoundRobin::new(), 100);
            assert!(report.is_clean_consensus(), "inputs {inputs:?}");
            // Round-robin: p0 wins the test&set, so everyone decides p0's
            // input.
            assert_eq!(
                report.config.outputs(),
                vec![inputs[0]],
                "inputs {inputs:?}"
            );
        }
    }

    #[test]
    fn specific_interleavings_decide_the_winner() {
        let sys = TasConsensus::system(vec![0, 1]);
        let mut config = sys.initial_config();
        // p1 announces and wins; p0 follows and reads p1's value.
        let sched: Schedule = "p1 p1 p0 p0 p0 p1".parse().unwrap();
        sys.run(&mut config, &sched);
        assert!(config.all_decided());
        assert_eq!(config.outputs(), vec![1]);
    }

    #[test]
    fn golabs_crash_scenario_breaks_agreement() {
        // The winner crashes after winning, re-runs, loses to itself, and
        // reads the other announcement while the other process decides its
        // own win: disagreement.
        let sys = TasConsensus::system(vec![0, 1]);
        let mut config = sys.initial_config();
        // p0: announce, t&s (wins, decides 0)… then crashes.
        // p0 re-runs: announce, t&s (loses), reads A1.
        // p1: announce, t&s (loses!, since bit is set), reads A0, decides 0…
        // but wait — we want p0 to decide 1. Drive it concretely:
        let sched: Schedule = "p0 p0 c0 p1 p1 p0 p0 p0 p1 p1".parse().unwrap();
        let effects = sys.run(&mut config, &sched);
        // p0 won before crashing (decided 0 is *not* recorded — it crashed
        // before reaching the output step), then after recovery p0 loses and
        // decides p1's input, while p1 also loses (bit already set) and
        // decides p0's input: 1 vs 0.
        let violated = effects.iter().any(|e| e.violation.is_some()) || config.outputs().len() > 1;
        assert!(violated, "outputs: {:?}", config.outputs());
    }
}
