//! Probe: model-check TnnRecoverable at n' and n'+1 processes.
use rcn_protocols::{TasConsensus, TnnRecoverable, TnnWaitFree};
use rcn_valency::check_consensus;

fn main() {
    let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
    let r = check_consensus(&sys, 1_000_000).unwrap();
    println!(
        "T_(5,2) recoverable, 2 procs: {} ({} configs)",
        r.verdict, r.configs
    );

    let sys = TnnRecoverable::system(5, 2, vec![0, 1, 1]);
    let r = check_consensus(&sys, 5_000_000).unwrap();
    println!(
        "T_(5,2) recoverable, 3 procs: {} ({} configs)",
        r.verdict, r.configs
    );

    let sys = TnnWaitFree::system(5, 2, vec![0, 1]);
    let r = check_consensus(&sys, 1_000_000).unwrap();
    println!(
        "T_(5,2) wait-free, 2 procs + crashes: {} ({} configs)",
        r.verdict, r.configs
    );

    let sys = TasConsensus::system(vec![0, 1]);
    let r = check_consensus(&sys, 1_000_000).unwrap();
    println!(
        "tas-consensus, crashes: {} ({} configs)",
        r.verdict, r.configs
    );
}
