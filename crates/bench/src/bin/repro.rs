//! `repro` — regenerates every checkable artifact of *"Determining
//! Recoverable Consensus Numbers"* (Ovens, PODC 2024).
//!
//! Usage: `repro [--out PATH] [experiment-id …]` where ids are `fig3`,
//! `lemma15`, `lemma16`, `valency`, `hierarchy`, `xn`, `tas`, `zoo`,
//! `universal`, `readability` (default: all). See EXPERIMENTS.md for the
//! mapping to the paper.
//!
//! With `--out PATH` the report is additionally written to `PATH` (the
//! driver used to dump `repro_output.txt` into the working directory
//! unconditionally; now nothing is written unless asked).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rcn_bench::{mixed_inputs, readable_zoo};
use rcn_core::{shipped_xn, HierarchyReport};
use rcn_decide::{
    classify, explain_recording, is_n_discerning, is_n_recording, Bound, SearchEngine, Team,
    Witness,
};
use rcn_protocols::{TasConsensus, TnnRecoverable, TnnWaitFree, TournamentConsensus};
use rcn_runtime::{run_threaded, RunOptions};
use rcn_spec::dot::{to_dot, to_table_text};
use rcn_spec::zoo::{StickyBit, TeamCounter, Tnn};
use rcn_spec::{ObjectType, OpId, Response};
use rcn_valency::{check_consensus, theorem13_chain, BudgetedGraph, ConfigGraph, Valency};
use std::sync::{Arc, Mutex, OnceLock};

/// Optional tee target for `--out PATH`: everything the experiments print
/// also lands here when set.
static OUT_FILE: OnceLock<Mutex<std::fs::File>> = OnceLock::new();

/// Like `print!`, teeing into the `--out` file when one is open.
macro_rules! out {
    ($($arg:tt)*) => {{
        let text = format!($($arg)*);
        std::print!("{text}");
        if let Some(f) = crate::OUT_FILE.get() {
            use std::io::Write as _;
            let _ = write!(f.lock().expect("out file"), "{text}");
        }
    }};
}

/// Like `println!`, teeing into the `--out` file when one is open.
macro_rules! outln {
    () => { outln!("") };
    ($($arg:tt)*) => {{
        let text = format!($($arg)*);
        std::println!("{text}");
        if let Some(f) = crate::OUT_FILE.get() {
            use std::io::Write as _;
            let _ = writeln!(f.lock().expect("out file"), "{text}");
        }
    }};
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            let Some(path) = args.next() else {
                eprintln!("error: missing value for `--out`");
                std::process::exit(2);
            };
            out_path = Some(path);
        } else if let Some(path) = arg.strip_prefix("--out=") {
            out_path = Some(path.to_string());
        } else {
            ids.push(arg);
        }
    }
    if let Some(path) = &out_path {
        let path = std::path::Path::new(path);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("error: cannot create {}: {e}", parent.display());
                    std::process::exit(2);
                }
            }
        }
        match std::fs::File::create(path) {
            Ok(file) => {
                let _ = OUT_FILE.set(Mutex::new(file));
            }
            Err(e) => {
                eprintln!("error: cannot open --out {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    let all = ids.is_empty();
    let want = |id: &str| all || ids.iter().any(|a| a == id);

    outln!("rcn repro — Determining Recoverable Consensus Numbers (PODC 2024)");
    outln!("==================================================================");
    if want("fig3") {
        e1_fig3();
    }
    if want("lemma15") {
        e2_lemma15();
    }
    if want("lemma16") {
        e3_lemma16();
    }
    if want("valency") {
        e4_valency();
    }
    if want("hierarchy") {
        e5_hierarchy();
    }
    if want("xn") {
        e6_xn();
    }
    if want("tas") {
        e7_tas();
    }
    if want("zoo") {
        e8_zoo();
    }
    if want("universal") {
        e9_universal();
    }
    if want("readability") {
        e10_readability();
    }
    outln!("\nall requested experiments completed");
}

fn banner(id: &str, what: &str) {
    outln!("\n--- {id}: {what} ---");
}

/// E1 / Figure 3: the state machine of `T_{5,2}`, checked against the prose
/// specification of §4 and rendered as a transition table + DOT.
fn e1_fig3() {
    banner("E1 (Figure 3)", "state machine of T_(5,2)");
    let t = Tnn::new(5, 2);
    // Check the §4 prose point-by-point.
    assert_eq!(t.num_values(), 10, "2n values");
    assert_eq!(
        t.apply(t.s(), t.op_x(0)),
        rcn_spec::Outcome::new(Response(0), t.s_xi(0, 1))
    );
    assert_eq!(
        t.apply(t.s(), t.op_x(1)),
        rcn_spec::Outcome::new(Response(1), t.s_xi(1, 1))
    );
    for x in 0..2 {
        for i in 1..4 {
            for op in 0..2 {
                let out = t.apply(t.s_xi(x, i), t.op_x(op));
                assert_eq!(out.response, Response(x as u16));
                assert_eq!(out.next, t.s_xi(x, i + 1));
            }
        }
        let out = t.apply(t.s_xi(x, 4), t.op_x(0));
        assert_eq!(out.next, t.s_bottom());
        // op_R reads at depth ≤ 2 and breaks at depth > 2.
        for i in 1..=2 {
            let out = t.apply(t.s_xi(x, i), t.op_r());
            assert_eq!(out.next, t.s_xi(x, i));
        }
        for i in 3..5 {
            let out = t.apply(t.s_xi(x, i), t.op_r());
            assert_eq!(out.next, t.s_bottom());
            assert_eq!(out.response, t.bottom_response());
        }
    }
    for op in 0..3u16 {
        let out = t.apply(t.s_bottom(), OpId::new(op));
        assert_eq!(out.next, t.s_bottom());
        assert_eq!(out.response, t.bottom_response());
    }
    outln!("prose specification of §4: all transitions verified ✓");
    outln!("{}", to_table_text(&t));
    let dot = to_dot(&t, false);
    outln!("(DOT output: {} bytes; render with `dot -Tpng`)", dot.len());
}

/// E2 / Lemma 15: `CN(T_{n,n'}) = n` — the decider confirms n-discerning
/// and refutes (n+1)-discerning across a parameter sweep.
fn e2_lemma15() {
    banner("E2 (Lemma 15)", "consensus number of T_(n,n') is n");
    outln!(
        "{:<10} {:>14} {:>18}",
        "type",
        "n-discerning",
        "(n+1)-discerning"
    );
    for (n, n_prime) in [
        (2, 1),
        (3, 1),
        (3, 2),
        (4, 1),
        (4, 2),
        (4, 3),
        (5, 2),
        (5, 4),
    ] {
        let t = Tnn::new(n, n_prime);
        let pos = is_n_discerning(&t, n);
        let neg = is_n_discerning(&t, n + 1);
        outln!("{:<10} {:>14} {:>18}", t.name(), pos, neg);
        assert!(pos && !neg, "Lemma 15 shape violated for {}", t.name());
    }
    outln!("paper: n-discerning ✓, not (n+1)-discerning ✓ for every (n,n')");
}

/// E3 / Lemma 16: `RCN(T_{n,n'}) = n'` — exhaustive model checks of the
/// paper's recoverable algorithm at n' (correct) and n'+1 (violation),
/// plus the wait-free algorithm correct crash-free and broken with crashes,
/// plus threaded runs.
fn e3_lemma16() {
    banner(
        "E3 (Lemma 16)",
        "recoverable consensus number of T_(n,n') is n'",
    );
    for (n, n_prime) in [(3usize, 1usize), (4, 2), (5, 2), (4, 3)] {
        // n' = 1 is the degenerate single-process case (one input).
        let inputs_ok = if n_prime >= 2 {
            mixed_inputs(n_prime)
        } else {
            vec![1]
        };
        let sys_ok = TnnRecoverable::system(n, n_prime, inputs_ok);
        let r_ok = check_consensus(&sys_ok, 10_000_000).expect("state space fits");
        let sys_bad = TnnRecoverable::system(n, n_prime, mixed_inputs(n_prime + 1));
        let r_bad = check_consensus(&sys_bad, 10_000_000).expect("state space fits");
        outln!(
            "T_({n},{n_prime}): @{n_prime} procs {} [{} configs] | @{} procs {}",
            if r_ok.verdict.is_correct() {
                "correct ✓"
            } else {
                "BROKEN ✗"
            },
            r_ok.configs,
            n_prime + 1,
            if r_bad.verdict.is_correct() {
                "correct (UNEXPECTED)"
            } else {
                "violation found ✓"
            },
        );
        assert!(r_ok.verdict.is_correct());
        assert!(!r_bad.verdict.is_correct());
    }
    // Wait-free algorithm: correct crash-free at n processes, broken with
    // crashes.
    let sys = TnnWaitFree::system(4, 2, mixed_inputs(4));
    let crash_free = ConfigGraph::explore_with(&sys, 10_000_000, false).expect("fits");
    let crash_free_verdict = rcn_valency::check_graph(&crash_free);
    let crashy = check_consensus(&sys, 10_000_000).expect("fits");
    outln!(
        "wait-free T_(4,2) @4 procs: crash-free {} | with crashes {}",
        if crash_free_verdict.is_correct() {
            "correct ✓"
        } else {
            "BROKEN ✗"
        },
        if crashy.verdict.is_correct() {
            "correct (UNEXPECTED)"
        } else {
            "violation found ✓"
        },
    );
    assert!(crash_free_verdict.is_correct());
    assert!(!crashy.verdict.is_correct());
    // Threaded confirmation.
    let mut clean = 0;
    for seed in 0..30 {
        let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
        if run_threaded(
            &sys,
            RunOptions {
                seed,
                crash_prob: 0.25,
                max_crashes: 4,
                ..Default::default()
            },
        )
        .is_clean_consensus()
        {
            clean += 1;
        }
    }
    outln!("threaded runs (2 threads, 25% crash prob): {clean}/30 clean ✓");
    assert_eq!(clean, 30);
}

/// E4 / Figures 1–2: the §3 valency machinery on a live protocol —
/// bivalence, critical execution, teams, common object, Observation 11
/// classification.
fn e4_valency() {
    banner(
        "E4 (Theorem 13 machinery, Figures 1-2)",
        "critical executions in E_z*",
    );
    for (label, sys) in [
        (
            "sticky-bit tournament, 2 procs",
            TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![0, 1]).expect("witness"),
        ),
        (
            "T_(5,2) recoverable, 2 procs",
            TnnRecoverable::system(5, 2, vec![0, 1]),
        ),
    ] {
        let graph = BudgetedGraph::explore(&sys, 1, 6, 2_000_000).expect("fits");
        assert_eq!(graph.initial_valency(), Valency::Bivalent, "Observation 1");
        let critical = graph.find_critical().expect("Lemma 6(a)");
        let info = graph.analyze_critical(critical);
        let teams: Vec<String> = info
            .teams
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|v| format!("p{i}→{v}")))
            .collect();
        outln!(
            "{label}: |E_1*-states|={}, critical α = {}, teams [{}], object {}, class {}",
            graph.len(),
            info.schedule,
            teams.join(", "),
            info.object
                .map(|o| sys.layout().name(o).to_string())
                .unwrap_or_else(|| "??".into()),
            info.class
                .map(|c| c.to_string())
                .unwrap_or_else(|| "n/a".into()),
        );
    }
    // The Theorem 13 chain walk (Figures 1-2): for every correct protocol
    // we ship, the first critical configuration already classifies as
    // n-recording, so the chain has a single link and no continuation.
    let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
    let chain = theorem13_chain(&sys, 1, 6, 2_000_000).expect("chain walk succeeds");
    outln!(
        "Theorem 13 chain on T_(5,2): {} link(s), reached n-recording = {} ✓",
        chain.links.len(),
        chain.reached_recording
    );
    assert!(chain.reached_recording);
}

/// E5 / Theorem 14: the hierarchy table over the readable zoo and the
/// robust level of type sets.
fn e5_hierarchy() {
    banner(
        "E5 (Theorem 14)",
        "robustness: classification of the readable zoo",
    );
    let engine = SearchEngine::new(0); // one worker per core
    let mut report = HierarchyReport::new(4);
    let mut types: Vec<Box<dyn ObjectType + Send + Sync>> = readable_zoo();
    types.push(Box::new(Tnn::new(4, 3)));
    types.push(Box::new(TeamCounter::new(4)));
    report
        .add_all(&types, &engine)
        .expect("cap 4 within engine range");
    outln!("{report}");
    let workers = engine.threads();
    outln!(
        "search engine ({workers} thread{}): {}",
        if workers == 1 { "" } else { "s" },
        engine.stats()
    );
    outln!("(readable types: CN = discerning number, RCN = recording number, by Ruppert + Thm 13 + DFFR Thm 8)");
}

/// E6: the `X_n` corollary — a readable type with CN n and RCN n−2.
fn e6_xn() {
    banner(
        "E6 (X_n corollary)",
        "readable type with CN n, RCN n−2 (n = 4)",
    );
    match shipped_xn(4) {
        Some(x4) => {
            let c = classify(&x4, 5);
            outln!(
                "synthesized X_4: readable={}, discerning={}, recording={}, CN={}, RCN={}",
                x4.is_readable(),
                c.discerning.display_level(),
                c.recording.display_level(),
                c.consensus_number,
                c.recoverable_consensus_number
            );
            assert_eq!(c.consensus_number, Bound::Exact(4));
            assert_eq!(c.recoverable_consensus_number, Bound::Exact(2));
            outln!("paper: CN(X_4) = 4, RCN(X_4) = 4 − 2 = 2 ✓ (synthesized reconstruction)");
        }
        None => outln!("no X_4 table shipped (run rcn-decide's xn_hunt)"),
    }
    // The gap-1 family we can also exhibit, as context.
    let c = classify(&TeamCounter::new(4), 5);
    outln!(
        "team-counter<4> (gap-1 family): CN={}, RCN={}",
        c.consensus_number,
        c.recoverable_consensus_number
    );
}

/// E7 / Golab's separation: test-and-set has CN 2 but RCN 1, with the
/// decider facts and a concrete crash counterexample for the classic
/// protocol.
fn e7_tas() {
    banner(
        "E7 (Golab)",
        "test-and-set: consensus 2, recoverable consensus 1",
    );
    let tas = rcn_spec::zoo::TestAndSet::new();
    outln!(
        "decider: 2-discerning={} (⇒ CN ≥ 2), 2-recording={} (⇒ RCN < 2 by Thm 13)",
        is_n_discerning(&tas, 2),
        is_n_recording(&tas, 2)
    );
    assert!(is_n_discerning(&tas, 2) && !is_n_recording(&tas, 2));
    // Spell out why the natural witness cannot record:
    let w = Witness::new(
        rcn_spec::ValueId::new(0),
        vec![Team::T0, Team::T1],
        vec![OpId::new(0), OpId::new(0)],
    );
    out!("{}", explain_recording(&tas, &w));
    outln!();
    let sys = TasConsensus::system(vec![0, 1]);
    let crash_free = ConfigGraph::explore_with(&sys, 1_000_000, false).expect("fits");
    let cf = rcn_valency::check_graph(&crash_free);
    let crashy = check_consensus(&sys, 1_000_000).expect("fits");
    outln!("classic T&S protocol: crash-free {cf}");
    outln!("with crashes: {}", crashy.verdict);
    assert!(cf.is_correct() && !crashy.verdict.is_correct());
}

/// E8: sanity of the consensus hierarchy levels against Herlihy's known
/// values for the readable zoo.
fn e8_zoo() {
    banner(
        "E8 (hierarchy sanity)",
        "decider levels vs known consensus numbers",
    );
    let expectations: Vec<(Box<dyn ObjectType + Send + Sync>, Bound, Bound)> = vec![
        (
            Box::new(rcn_spec::zoo::Register::new(2)),
            Bound::Exact(1),
            Bound::Exact(1),
        ),
        (
            Box::new(rcn_spec::zoo::TestAndSet::new()),
            Bound::Exact(2),
            Bound::Exact(1),
        ),
        (
            Box::new(rcn_spec::zoo::FetchAndAdd::new(4)),
            Bound::Exact(2),
            Bound::Exact(1),
        ),
        (
            Box::new(rcn_spec::zoo::Swap::new(2)),
            Bound::Exact(2),
            Bound::Exact(1),
        ),
        (
            Box::new(rcn_spec::zoo::CompareAndSwap::new(3)),
            Bound::AtLeast(4),
            Bound::AtLeast(4),
        ),
        (
            Box::new(rcn_spec::zoo::StickyBit::new()),
            Bound::AtLeast(4),
            Bound::AtLeast(4),
        ),
        (
            Box::new(rcn_spec::zoo::ConsensusObject::new()),
            Bound::AtLeast(4),
            Bound::AtLeast(4),
        ),
    ];
    outln!("{:<24} {:>8} {:>8}  match", "type", "CN", "RCN");
    for (ty, cn, rcn) in expectations {
        let c = classify(&*ty, 4);
        let ok = c.consensus_number == cn && c.recoverable_consensus_number == rcn;
        outln!(
            "{:<24} {:>8} {:>8}  {}",
            c.type_name,
            c.consensus_number.to_string(),
            c.recoverable_consensus_number.to_string(),
            if ok { "✓" } else { "✗" }
        );
        assert!(ok, "{} mismatch", c.type_name);
    }
    outln!("note: fetch-and-add and swap drop to RCN 1 — same forgetful-value");
    outln!("phenomenon as test-and-set, discovered automatically by the decider");
}

/// E9: universality (§1) — the one-shot universal simulation of an
/// arbitrary object from consensus slots, verified exhaustively.
fn e9_universal() {
    banner(
        "E9 (universality, §1)",
        "recoverable simulation of arbitrary objects",
    );
    use rcn_spec::ValueId;
    use rcn_universal::{verify_simulation, UniversalSim};
    let q = rcn_spec::zoo::BoundedQueue::new(2, 3);
    let inputs = vec![
        q.enq_op(0).index() as u32,
        q.enq_op(1).index() as u32,
        q.deq_op().index() as u32,
    ];
    let sys = UniversalSim::system(Arc::new(q.clone()), ValueId::new(0), inputs);
    let report = verify_simulation(&sys, &q, ValueId::new(0), 50_000_000).expect("fits");
    outln!(
        "queue<2,3>, 3 procs (2 enq + 1 deq): {} configs, linearizable = {} ✓",
        report.configs,
        report.is_linearizable()
    );
    assert!(report.is_linearizable());
    let s = rcn_spec::zoo::BoundedStack::new(2, 2);
    let inputs = vec![s.push_op(1).index() as u32, s.pop_op().index() as u32];
    let sys = UniversalSim::system(Arc::new(s.clone()), ValueId::new(0), inputs);
    let report = verify_simulation(&sys, &s, ValueId::new(0), 10_000_000).expect("fits");
    outln!(
        "stack<2,2>, 2 procs (push + pop): {} configs, linearizable = {} ✓",
        report.configs,
        report.is_linearizable()
    );
    assert!(report.is_linearizable());
}

/// E10: the readability hypothesis quantified — augmenting a queue with a
/// read operation lifts it to the top of both hierarchies, and the
/// tournament construction then solves recoverable consensus from it.
fn e10_readability() {
    banner(
        "E10 (readability)",
        "augmented queue: read turns CN 2 into CN ∞",
    );
    use rcn_spec::zoo::{BoundedQueue, WithRead};
    let plain = BoundedQueue::new(2, 2);
    let aug = WithRead::new(BoundedQueue::new(2, 2));
    let c_plain = classify(&plain, 4);
    let c_aug = classify(&aug, 4);
    outln!(
        "queue<2,2>       : readable={} CN={} RCN={}",
        c_plain.readable,
        c_plain.consensus_number,
        c_plain.recoverable_consensus_number
    );
    outln!(
        "queue<2,2>+read  : readable={} CN={} RCN={}",
        c_aug.readable,
        c_aug.consensus_number,
        c_aug.recoverable_consensus_number
    );
    let sys =
        rcn_core::solve_recoverable(Arc::new(WithRead::new(BoundedQueue::new(2, 2))), vec![0, 1])
            .expect("augmented queue has witnesses");
    let report = check_consensus(&sys, 10_000_000).expect("fits");
    outln!(
        "tournament over queue+read, 2 procs: {} ({} configs)",
        report.verdict,
        report.configs
    );
    assert!(report.verdict.is_correct());
}
