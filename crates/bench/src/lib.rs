//! Shared fixtures for the rcn benchmarks and the `repro` driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rcn_spec::zoo::{
    CompareAndSwap, ConsensusObject, FetchAndAdd, Register, StickyBit, Swap, TestAndSet,
};
use rcn_spec::ObjectType;

/// The standard readable zoo used across benches and experiments, as
/// boxed trait objects with stable ordering.
pub fn readable_zoo() -> Vec<Box<dyn ObjectType + Send + Sync>> {
    vec![
        Box::new(Register::new(2)),
        Box::new(TestAndSet::new()),
        Box::new(FetchAndAdd::new(4)),
        Box::new(Swap::new(2)),
        Box::new(CompareAndSwap::new(3)),
        Box::new(StickyBit::new()),
        Box::new(ConsensusObject::new()),
    ]
}

/// Alternating binary inputs of length `n` (always contains both values for
/// `n ≥ 2`).
pub fn mixed_inputs(n: usize) -> Vec<u32> {
    (0..n as u32).map(|i| i % 2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_is_nonempty_and_readable() {
        let zoo = readable_zoo();
        assert!(zoo.len() >= 7);
        for ty in &zoo {
            assert!(ty.is_readable(), "{}", ty.name());
        }
    }

    #[test]
    fn mixed_inputs_contain_both_values() {
        let inputs = mixed_inputs(5);
        assert!(inputs.contains(&0) && inputs.contains(&1));
        assert_eq!(inputs.len(), 5);
    }
}
