//! `Analysis` construction benchmarks: the word-level kernelized path
//! against the bit-at-a-time scalar reference, on the `team-counter:5`-class
//! instances the hierarchy-atlas campaign grinds through, plus the
//! incremental (`extend`) and engine-level (incremental + cached classify)
//! configurations.
//!
//! Besides the usual stdout report, this bench emits a machine-readable
//! `BENCH_analysis_kernels.json` trajectory file (under `$RCN_BENCH_DIR`,
//! default `bench-out/`) so the speedup is tracked across PRs instead of
//! living in prose. EXPERIMENTS.md E14 reads its curves from here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcn_decide::{Analysis, BenchRecord, BenchRecorder, SearchEngine};
use rcn_spec::zoo::{CompareAndSwap, TeamCounter};
use rcn_spec::{ObjectType, OpId, ValueId};
use std::time::Instant;

/// The dominant instance shape of a `team-counter:5` level-`n` search:
/// every process increments for its team (the all-`mut_0` multiset has the
/// largest reachable lattice).
fn team_counter_instance(n: usize) -> (TeamCounter, ValueId, Vec<OpId>) {
    (TeamCounter::new(5), ValueId::new(0), vec![OpId::new(0); n])
}

/// Times `runs` calls of `f` and returns seconds per call.
fn time_per_call<T>(runs: u64, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..runs {
        criterion::black_box(f());
    }
    start.elapsed().as_secs_f64() / runs as f64
}

/// Kernelized vs scalar construction across levels; records both curves.
fn kernel_vs_scalar(c: &mut Criterion, recorder: &mut BenchRecorder) {
    let mut group = c.benchmark_group("analysis_new_teamcounter5");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let (ty, u, ops) = team_counter_instance(n);
        group.bench_with_input(BenchmarkId::new("kernel", n), &n, |b, _| {
            b.iter(|| Analysis::new(&ty, u, &ops));
        });
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| Analysis::new_scalar(&ty, u, &ops));
        });
        let runs = 20;
        let kernel = time_per_call(runs, || Analysis::new(&ty, u, &ops));
        let scalar = time_per_call(runs, || Analysis::new_scalar(&ty, u, &ops));
        recorder.record(BenchRecord::from_timing(
            format!("analysis_new/team-counter:5/n={n}/kernel"),
            1,
            kernel,
            1,
        ));
        recorder.record(BenchRecord::from_timing(
            format!("analysis_new/team-counter:5/n={n}/scalar"),
            1,
            scalar,
            1,
        ));
    }
    group.finish();
}

/// Same comparison on a type with a larger value/response alphabet, where
/// each shifted-word OR replaces more single-bit inserts.
fn kernel_vs_scalar_cas(c: &mut Criterion, recorder: &mut BenchRecorder) {
    let ty = CompareAndSwap::new(4);
    let u = ValueId::new(0);
    let read = OpId::new(ty.num_ops() as u16 - 1);
    let mut group = c.benchmark_group("analysis_new_cas4");
    group.sample_size(10);
    for n in [4usize, 6] {
        let mut ops = vec![OpId::new(1); n - 1];
        ops.push(read);
        ops.sort();
        group.bench_with_input(BenchmarkId::new("kernel", n), &n, |b, _| {
            b.iter(|| Analysis::new(&ty, u, &ops));
        });
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| Analysis::new_scalar(&ty, u, &ops));
        });
        let runs = 10;
        let kernel = time_per_call(runs, || Analysis::new(&ty, u, &ops));
        let scalar = time_per_call(runs, || Analysis::new_scalar(&ty, u, &ops));
        recorder.record(BenchRecord::from_timing(
            format!("analysis_new/cas:4/n={n}/kernel"),
            1,
            kernel,
            1,
        ));
        recorder.record(BenchRecord::from_timing(
            format!("analysis_new/cas:4/n={n}/scalar"),
            1,
            scalar,
            1,
        ));
    }
    group.finish();
}

/// Incremental extension vs from-scratch at the same level.
fn incremental_extend(c: &mut Criterion, recorder: &mut BenchRecorder) {
    let mut group = c.benchmark_group("analysis_extend_teamcounter5");
    group.sample_size(10);
    for n in [6usize, 8] {
        let (ty, u, ops) = team_counter_instance(n);
        let prefix = Analysis::new(&ty, u, &ops[..n - 1]);
        group.bench_with_input(BenchmarkId::new("extend", n), &n, |b, _| {
            b.iter(|| Analysis::extend(&ty, u, &prefix, &ops, 1));
        });
        group.bench_with_input(BenchmarkId::new("scratch", n), &n, |b, _| {
            b.iter(|| Analysis::new(&ty, u, &ops));
        });
        let runs = 20;
        let extend = time_per_call(runs, || Analysis::extend(&ty, u, &prefix, &ops, 1));
        let scratch = time_per_call(runs, || Analysis::new(&ty, u, &ops));
        recorder.record(BenchRecord::from_timing(
            format!("analysis_extend/team-counter:5/n={n}/extend"),
            1,
            extend,
            1,
        ));
        recorder.record(BenchRecord::from_timing(
            format!("analysis_extend/team-counter:5/n={n}/scratch"),
            1,
            scratch,
            1,
        ));
    }
    group.finish();
}

/// Engine-level effect: a full classify with and without incremental
/// seeding, recorded with the engine's own counters.
fn classify_incremental(c: &mut Criterion, recorder: &mut BenchRecorder) {
    let ty = TeamCounter::new(5);
    let mut group = c.benchmark_group("classify_teamcounter5_cap5");
    group.sample_size(5);
    for (label, incremental) in [("incremental", true), ("from-scratch", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let engine = SearchEngine::sequential().with_incremental(incremental);
                engine.classify(&ty, 5).expect("cap in range")
            });
        });
        let engine = SearchEngine::sequential().with_incremental(incremental);
        engine.classify(&ty, 5).expect("cap in range");
        recorder.record(BenchRecord::from_stats(
            format!("classify/team-counter:5/cap=5/{label}"),
            1,
            &engine.stats(),
        ));
    }
    group.finish();
}

fn all(c: &mut Criterion) {
    let mut recorder = BenchRecorder::new("analysis_kernels");
    kernel_vs_scalar(c, &mut recorder);
    kernel_vs_scalar_cas(c, &mut recorder);
    incremental_extend(c, &mut recorder);
    classify_incremental(c, &mut recorder);
    let dir = std::env::var("RCN_BENCH_DIR").unwrap_or_else(|_| "bench-out".into());
    let path = std::path::Path::new(&dir).join(recorder.file_name());
    match recorder.write_to(&path) {
        Ok(()) => println!("bench records written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

criterion_group!(analysis, all);
criterion_main!(analysis);
