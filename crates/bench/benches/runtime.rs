//! Runtime benchmarks: threaded execution of the recoverable protocols over
//! the simulated NVM heap, with and without crash injection (E3's runtime
//! component).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcn_bench::mixed_inputs;
use rcn_protocols::{TnnRecoverable, TournamentConsensus};
use rcn_runtime::{run_threaded, RunOptions};
use rcn_spec::zoo::StickyBit;
use std::sync::Arc;

/// Threaded `TnnRecoverable` runs, crash-free vs crashy.
fn tnn_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_tnn_5_2");
    group.sample_size(20);
    for &(label, crash_prob) in &[("crash_free", 0.0), ("crashy", 0.25)] {
        group.bench_function(label, |b| {
            let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let report = run_threaded(
                    &sys,
                    RunOptions {
                        seed,
                        crash_prob,
                        max_crashes: 4,
                        ..Default::default()
                    },
                );
                assert!(report.is_clean_consensus());
                report.total_steps()
            });
        });
    }
    group.finish();
}

/// Tournament scaling with thread count.
fn tournament_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_tournament_sticky");
    group.sample_size(15);
    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let sys =
                TournamentConsensus::try_new(Arc::new(StickyBit::new()), mixed_inputs(n)).unwrap();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let report = run_threaded(
                    &sys,
                    RunOptions {
                        seed,
                        crash_prob: 0.1,
                        max_crashes: 3,
                        ..Default::default()
                    },
                );
                assert!(report.is_clean_consensus());
                report.total_steps()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, tnn_threaded, tournament_threaded);
criterion_main!(benches);
