//! Persistent-cache and partition-sharding benchmarks: cold-vs-warm
//! classification with a `DiskCache` attached, and the partition-sharded
//! search grain against the instance-level default.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcn_decide::{DiskCache, PartitionSharding, SearchEngine};
use rcn_spec::zoo::{TeamCounter, Tnn};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcn-bench-cache-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Cold run (empty cache directory, every analysis computed and persisted)
/// vs. warm run (every analysis loaded from disk). The warm/cold ratio is
/// the headline number for the persistent cache.
fn cold_vs_warm_classify(c: &mut Criterion) {
    let ty = TeamCounter::new(4);
    let mut group = c.benchmark_group("disk_cache_classify_team_counter_cap4");
    group.sample_size(10);

    group.bench_function("cold", |b| {
        let dir = scratch("cold");
        b.iter(|| {
            // Start from an empty directory every iteration: this measures
            // compute + serialize + persist.
            std::fs::remove_dir_all(&dir).ok();
            let engine = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
            criterion::black_box(engine.classify(&ty, 4).expect("cap in range"));
        });
        std::fs::remove_dir_all(&dir).ok();
    });

    group.bench_function("warm", |b| {
        let dir = scratch("warm");
        // Populate once; every iteration then loads instead of computing.
        SearchEngine::sequential()
            .with_disk_cache(DiskCache::new(&dir))
            .classify(&ty, 4)
            .expect("cap in range");
        b.iter(|| {
            let engine = SearchEngine::sequential().with_disk_cache(DiskCache::new(&dir));
            criterion::black_box(engine.classify(&ty, 4).expect("cap in range"));
        });
        std::fs::remove_dir_all(&dir).ok();
    });

    group.bench_function("no-cache", |b| {
        b.iter(|| {
            let engine = SearchEngine::sequential();
            criterion::black_box(engine.classify(&ty, 4).expect("cap in range"));
        });
    });
    group.finish();
}

/// Partition-level sharding on a partition-dominated workload: `T_{6,1}`
/// refutation at n = 7 has few instances but a large partition set per
/// instance, exactly the shape where instance-level sharding alone cannot
/// keep several workers busy. On a single-core host the two grains should
/// tie (the sharded task list must not cost measurable overhead).
fn partition_sharding_refutation(c: &mut Criterion) {
    let t = Tnn::new(6, 1);
    let mut group = c.benchmark_group("partition_sharding_tnn61_refute_n7");
    group.sample_size(10);
    for (label, sharding) in [
        ("instance-grain", PartitionSharding::Never),
        ("partition-grain", PartitionSharding::Always),
    ] {
        for threads in [1usize, 4] {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                let engine = SearchEngine::new(threads).with_partition_sharding(sharding);
                b.iter(|| {
                    assert!(engine
                        .find_discerning_witness(&t, 7)
                        .expect("level in range")
                        .is_none());
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    cold_vs_warm_classify,
    partition_sharding_refutation
);
criterion_main!(benches);
