//! Decider benchmarks: cost of the n-discerning / n-recording searches as a
//! function of the level `n` and the type (experiment E2's measurement
//! component, plus the zoo-classification cost of E5/E8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcn_bench::readable_zoo;
use rcn_decide::{classify, is_n_discerning, is_n_recording};
use rcn_spec::zoo::{StickyBit, Tnn};

/// E2: `T_{n,n'}` discerning sweep — the positive half of Lemma 15 at
/// increasing `n` (the decider confirms n-discerning each time).
fn discerning_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("discerning_tnn");
    for n in [3usize, 4, 5, 6] {
        let t = Tnn::new(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                assert!(is_n_discerning(&t, n));
            });
        });
    }
    group.finish();
}

/// The negative half: confirming NOT (n+1)-discerning requires exhausting
/// the whole witness space, the worst case of the search.
fn discerning_refutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("discerning_refute_tnn");
    for n in [3usize, 4, 5] {
        let t = Tnn::new(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                assert!(!is_n_discerning(&t, n + 1));
            });
        });
    }
    group.finish();
}

/// Recording sweep on the sticky bit (always succeeds; measures how the
/// witness space grows with n).
fn recording_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("recording_sticky");
    for n in [2usize, 3, 4, 5, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                assert!(is_n_recording(&StickyBit::new(), n));
            });
        });
    }
    group.finish();
}

/// E5/E8: full classification of the readable zoo at cap 4.
fn zoo_classification(c: &mut Criterion) {
    c.bench_function("classify_readable_zoo_cap4", |b| {
        b.iter(|| {
            for ty in readable_zoo() {
                let cls = classify(&*ty, 4);
                criterion::black_box(cls);
            }
        });
    });
}

criterion_group!(
    benches,
    discerning_sweep,
    discerning_refutation,
    recording_sweep,
    zoo_classification
);
criterion_main!(benches);
