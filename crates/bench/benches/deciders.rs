//! Decider benchmarks: cost of the n-discerning / n-recording searches as a
//! function of the level `n` and the type (experiment E2's measurement
//! component, plus the zoo-classification cost of E5/E8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcn_bench::readable_zoo;
use rcn_decide::{classify, is_n_discerning, is_n_recording, SearchEngine};
use rcn_spec::zoo::{StickyBit, Tnn};

/// E2: `T_{n,n'}` discerning sweep — the positive half of Lemma 15 at
/// increasing `n` (the decider confirms n-discerning each time).
fn discerning_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("discerning_tnn");
    for n in [3usize, 4, 5, 6] {
        let t = Tnn::new(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                assert!(is_n_discerning(&t, n));
            });
        });
    }
    group.finish();
}

/// The negative half: confirming NOT (n+1)-discerning requires exhausting
/// the whole witness space, the worst case of the search.
fn discerning_refutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("discerning_refute_tnn");
    for n in [3usize, 4, 5] {
        let t = Tnn::new(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                assert!(!is_n_discerning(&t, n + 1));
            });
        });
    }
    group.finish();
}

/// Recording sweep on the sticky bit (always succeeds; measures how the
/// witness space grows with n).
fn recording_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("recording_sticky");
    for n in [2usize, 3, 4, 5, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                assert!(is_n_recording(&StickyBit::new(), n));
            });
        });
    }
    group.finish();
}

/// E5/E8: full classification of the readable zoo at cap 4.
fn zoo_classification(c: &mut Criterion) {
    c.bench_function("classify_readable_zoo_cap4", |b| {
        b.iter(|| {
            for ty in readable_zoo() {
                let cls = classify(&*ty, 4);
                criterion::black_box(cls);
            }
        });
    });
}

/// The engine's headline case: a refutation sweep (the search must exhaust
/// the whole instance space, so sharding across threads pays off directly)
/// at increasing worker counts. On a multi-core box >1 thread beats 1; the
/// stats printed after the run confirm cache hits and the instances covered.
fn parallel_refutation_sweep(c: &mut Criterion) {
    let t = Tnn::new(5, 1);
    let mut group = c.benchmark_group("parallel_sweep");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let engine = SearchEngine::new(threads);
                b.iter(|| {
                    // T_{5,1} is 5-discerning but not 6-discerning: this is
                    // the full-space refutation at n = 6.
                    assert!(engine
                        .find_discerning_witness(&t, 6)
                        .expect("level in range")
                        .is_none());
                });
            },
        );
    }
    group.finish();
    let engine = SearchEngine::new(0);
    let c4 = engine.classify(&t, 5).expect("cap in range");
    criterion::black_box(c4);
    println!(
        "engine stats after classify(T_5,1, cap 5): {}",
        engine.stats()
    );
}

criterion_group!(
    benches,
    discerning_sweep,
    discerning_refutation,
    recording_sweep,
    zoo_classification,
    parallel_refutation_sweep
);
criterion_main!(benches);
