//! `BitSet` micro-benchmarks — the guard for the sparse-iteration fix.
//!
//! `iter` used to probe all 64 bit positions of every word, zero words
//! included, making iteration over a sparse wide set cost as much as a
//! dense one. The trailing_zeros word-walk makes the sparse case O(words +
//! elements); this bench keeps the dense and sparse curves visible so a
//! regression back to per-bit probing shows up as the sparse case
//! collapsing onto the dense one.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rcn_decide::BitSet;

const CAPACITY: usize = 4096;

fn set_with(density_per_word: usize) -> BitSet {
    let mut s = BitSet::new(CAPACITY);
    match 64usize.checked_div(density_per_word) {
        // Density 0 means sparse: far-apart elements, most words zero.
        None => {
            for e in [0usize, 700, 1400, 2100, 2800, 3500, CAPACITY - 1] {
                s.insert(e);
            }
        }
        Some(step) => {
            for w in 0..CAPACITY / 64 {
                for b in (0..64).step_by(step) {
                    s.insert(w * 64 + b);
                }
            }
        }
    }
    s
}

fn iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset_iter_4096");
    group.sample_size(20);
    for (label, density) in [("sparse-7", 0usize), ("half-dense", 32), ("dense", 64)] {
        let s = set_with(density);
        let expect = s.len();
        group.bench_with_input(BenchmarkId::from_parameter(label), &s, |b, s| {
            b.iter(|| {
                let mut count = 0usize;
                for e in s.iter() {
                    count += black_box(e) & 1;
                }
                black_box(count);
                assert!(s.len() == expect);
            });
        });
    }
    group.finish();
}

fn shifted_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset_union_shifted");
    group.sample_size(20);
    let mut src = BitSet::new(256);
    for e in (0..256).step_by(3) {
        src.insert(e);
    }
    for shift in [0usize, 7, 64, 129] {
        group.bench_with_input(BenchmarkId::from_parameter(shift), &shift, |b, &shift| {
            b.iter(|| {
                let mut dst = BitSet::new(CAPACITY);
                dst.union_shifted_with(&src, shift);
                black_box(dst.len())
            });
        });
    }
    group.finish();
}

criterion_group!(bitset, iteration, shifted_union);
criterion_main!(bitset);
