//! Benchmarks for the independent BFS model checker (`rcn-mc`) against
//! the memoized DFS explorer (`rcn-faults`) on the same protocols and
//! budgets — the differential pair the `RCN200` cross-check compares.
//!
//! Besides the stdout report, emits machine-readable `BENCH_mc.json`
//! records (under `$RCN_BENCH_DIR`, default `bench-out/`) carrying wall
//! time, states/sec (as `analyses_computed` states over `wall_seconds`),
//! and the full `mc.*` metrics snapshot (frontier peak, dedup hits,
//! events applied). EXPERIMENTS.md E16 reads its numbers from here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcn_decide::{BenchRecord, BenchRecorder};
use rcn_faults::{crashtest, CrashtestConfig};
use rcn_mc::{model_check, model_check_traced, McConfig};
use rcn_model::System;
use rcn_obs::Tracer;
use rcn_protocols::{TasConsensus, TnnRecoverable, TournamentConsensus};
use rcn_spec::zoo::StickyBit;
use std::sync::Arc;
use std::time::Instant;

fn protocols() -> Vec<(&'static str, System)> {
    vec![
        ("tas", TasConsensus::system(vec![0, 1])),
        (
            "tnn-recoverable:5,2",
            TnnRecoverable::system(5, 2, vec![0, 1]),
        ),
        (
            "tournament:sticky",
            TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![1, 0]).unwrap(),
        ),
    ]
}

/// Times `runs` calls of `f` and returns seconds per call.
fn time_per_call<T>(runs: u64, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..runs {
        criterion::black_box(f());
    }
    start.elapsed().as_secs_f64() / runs as f64
}

/// BFS checker vs DFS explorer at the default budget; records one BFS
/// entry per protocol with the full `mc.*` snapshot riding along.
fn bfs_vs_dfs(c: &mut Criterion, recorder: &mut BenchRecorder) {
    let mc_config = McConfig::default();
    let dfs_config = CrashtestConfig {
        max_crashes: mc_config.max_crashes,
        max_depth: mc_config.max_depth,
        max_states: mc_config.max_states,
        ..Default::default()
    };
    let mut group = c.benchmark_group("mc_check");
    group.sample_size(20);
    for (name, sys) in protocols() {
        group.bench_with_input(BenchmarkId::new("bfs", name), &sys, |b, sys| {
            b.iter(|| model_check(sys, mc_config));
        });
        group.bench_with_input(BenchmarkId::new("dfs", name), &sys, |b, sys| {
            b.iter(|| crashtest(sys, dfs_config));
        });
        let runs = 20;
        let bfs_wall = time_per_call(runs, || model_check(&sys, mc_config));
        let dfs_wall = time_per_call(runs, || crashtest(&sys, dfs_config));
        // One traced run per protocol puts frontier peak / dedup hits /
        // events applied into the record's metrics snapshot.
        let tracer = Tracer::metrics_only();
        let report = model_check_traced(&sys, mc_config, &tracer);
        let mut record = BenchRecord::from_timing(
            format!(
                "check/{name}/crashes={},depth={}/bfs",
                mc_config.max_crashes, mc_config.max_depth
            ),
            1,
            bfs_wall,
            report.stats.states_visited,
        );
        if let Some(snapshot) = tracer.snapshot() {
            record.metrics = snapshot;
        }
        recorder.record(record);
        recorder.record(BenchRecord::from_timing(
            format!(
                "check/{name}/crashes={},depth={}/dfs",
                dfs_config.max_crashes, dfs_config.max_depth
            ),
            1,
            dfs_wall,
            report.stats.states_visited,
        ));
    }
    group.finish();
}

/// Raw BFS throughput at a deeper budget (more states, same protocols):
/// the states/sec number EXPERIMENTS.md E16 quotes.
fn bfs_throughput(c: &mut Criterion, recorder: &mut BenchRecorder) {
    let config = McConfig {
        max_crashes: 2,
        max_depth: 20,
        max_states: 500_000,
        ..Default::default()
    };
    let mut group = c.benchmark_group("mc_throughput_depth20");
    group.sample_size(10);
    for (name, sys) in protocols() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &sys, |b, sys| {
            b.iter(|| model_check(sys, config));
        });
        let runs = 10;
        let wall = time_per_call(runs, || model_check(&sys, config));
        let report = model_check(&sys, config);
        recorder.record(BenchRecord::from_timing(
            format!("check/{name}/crashes=2,depth=20/bfs"),
            1,
            wall,
            report.stats.states_visited,
        ));
    }
    group.finish();
}

fn all(c: &mut Criterion) {
    let mut recorder = BenchRecorder::new("mc");
    bfs_vs_dfs(c, &mut recorder);
    bfs_throughput(c, &mut recorder);
    let dir = std::env::var("RCN_BENCH_DIR").unwrap_or_else(|_| "bench-out".into());
    let path = std::path::Path::new(&dir).join(recorder.file_name());
    match recorder.write_to(&path) {
        Ok(()) => println!("bench records written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

criterion_group!(mc, all);
criterion_main!(mc);
