//! Model-checker benchmarks: the cost of exhaustively verifying the §4
//! protocols (experiment E3's measurement component) and of the budgeted
//! valency exploration (E4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcn_protocols::{TnnRecoverable, TournamentConsensus};
use rcn_spec::zoo::StickyBit;
use rcn_valency::{check_consensus, BudgetedGraph};
use std::sync::Arc;

/// E3: verifying `TnnRecoverable` at its legal process count.
fn modelcheck_tnn(c: &mut Criterion) {
    let mut group = c.benchmark_group("modelcheck_tnn_recoverable");
    for n_prime in [1usize, 2, 3] {
        let inputs: Vec<u32> = (0..n_prime.max(1) as u32).map(|i| i % 2).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(n_prime),
            &n_prime,
            |b, &n_prime| {
                b.iter(|| {
                    let sys = TnnRecoverable::system(n_prime + 2, n_prime, inputs.clone());
                    let report = check_consensus(&sys, 10_000_000).unwrap();
                    assert!(report.verdict.is_correct());
                    report.configs
                });
            },
        );
    }
    group.finish();
}

/// E3 (impossibility half): finding the violation at n' + 1 processes.
fn modelcheck_tnn_violation(c: &mut Criterion) {
    c.bench_function("modelcheck_tnn_5_2_at_3procs", |b| {
        b.iter(|| {
            let sys = TnnRecoverable::system(5, 2, vec![0, 1, 1]);
            let report = check_consensus(&sys, 10_000_000).unwrap();
            assert!(!report.verdict.is_correct());
            report.configs
        });
    });
}

/// Tournament verification cost by process count.
fn modelcheck_tournament(c: &mut Criterion) {
    let mut group = c.benchmark_group("modelcheck_tournament_sticky");
    group.sample_size(10);
    for n in [2usize, 3] {
        let inputs: Vec<u32> = (0..n as u32).map(|i| i % 2).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), inputs.clone())
                    .unwrap();
                let report = check_consensus(&sys, 10_000_000).unwrap();
                assert!(report.verdict.is_correct());
                report.configs
            });
        });
    }
    group.finish();
}

/// E4: budgeted (`E_z*`) exploration + critical-execution search.
fn critical_search(c: &mut Criterion) {
    c.bench_function("critical_search_sticky_2proc", |b| {
        b.iter(|| {
            let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![0, 1]).unwrap();
            let graph = BudgetedGraph::explore(&sys, 1, 6, 1_000_000).unwrap();
            let critical = graph.find_critical().expect("critical exists");
            graph.analyze_critical(critical).schedule.len()
        });
    });
}

criterion_group!(
    benches,
    modelcheck_tnn,
    modelcheck_tnn_violation,
    modelcheck_tournament,
    critical_search
);
criterion_main!(benches);
