//! Specification-layer benchmarks: raw `apply` throughput (E1's measurement
//! component) and the `Analysis` reachability construction that powers the
//! deciders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcn_decide::Analysis;
use rcn_spec::zoo::Tnn;
use rcn_spec::{ObjectType, OpId, TableType, ValueId};

/// Sequential-spec application throughput: direct impl vs table normal form.
fn apply_throughput(c: &mut Criterion) {
    let t = Tnn::new(5, 2);
    let table = TableType::from_type(&t);
    let mut group = c.benchmark_group("apply_t52");
    group.bench_function("direct", |b| {
        b.iter(|| {
            let mut v = t.s();
            for _ in 0..1000 {
                for op in 0..3u16 {
                    let out = t.apply(v, OpId::new(op));
                    v = out.next;
                }
            }
            v
        });
    });
    group.bench_function("table", |b| {
        b.iter(|| {
            let mut v = ValueId::new(0);
            for _ in 0..1000 {
                for op in 0..3u16 {
                    let out = table.apply(v, OpId::new(op));
                    v = out.next;
                }
            }
            v
        });
    });
    group.finish();
}

/// Analysis construction cost: the `(applied set, value)` BFS that replaces
/// factorial schedule enumeration, by process count.
fn analysis_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_tnn_6_1");
    let t = Tnn::new(6, 1);
    for n in [4usize, 6, 8, 10] {
        let ops: Vec<OpId> = (0..n).map(|i| t.op_x(i % 2)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| Analysis::new(&t, t.s(), &ops));
        });
    }
    group.finish();
}

criterion_group!(benches, apply_throughput, analysis_construction);
criterion_main!(benches);
