//! Parsing of type expressions on the command line.
//!
//! Grammar: `name[:arg[,arg]]`, e.g. `register:3`, `tas`, `tnn:5,2`,
//! `cas:3`, `queue:2,3`, `team-counter:4`, `xn:4`, `+read` suffix to
//! augment with a read operation (`queue:2,2+read`).

use rcn_core::shipped_xn;
use rcn_spec::zoo::{
    BoundedQueue, BoundedStack, CompareAndSwap, ConsensusObject, FetchAndAdd, MultiConsensus,
    Register, StickyBit, Swap, TeamCounter, TestAndSet, Tnn, WithRead,
};
use rcn_spec::{ObjectType, TableType};
use std::fmt;
use std::sync::Arc;

/// A parsed, boxed type.
pub type DynType = Arc<dyn ObjectType + Send + Sync>;

/// Errors from [`parse_type`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTypeError {
    message: String,
}

impl ParseTypeError {
    fn new(message: impl Into<String>) -> Self {
        ParseTypeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ParseTypeError {}

/// The catalogue shown by `rcn types`.
pub const CATALOGUE: &[(&str, &str)] = &[
    (
        "register:D",
        "read/write register over D values (default 2)",
    ),
    ("tas", "test-and-set bit"),
    ("faa:M", "fetch-and-add modulo M (default 4)"),
    ("swap:D", "swap over D values (default 2)"),
    ("cas:D", "compare-and-swap over D values (default 3)"),
    ("sticky", "Plotkin sticky bit"),
    ("consensus", "binary consensus object"),
    ("mconsensus:D", "multi-valued consensus over D proposals"),
    (
        "queue:A,C",
        "bounded FIFO queue, alphabet A, capacity C (default 2,2)",
    ),
    ("stack:A,C", "bounded LIFO stack (default 2,2)"),
    ("tnn:N,N'", "the paper's T_{n,n'} (default 5,2)"),
    (
        "team-counter:N",
        "readable gap-1 family, CN N / RCN N-1 (default 4)",
    ),
    ("xn:N", "synthesized X_N reconstruction (shipped: N = 4)"),
    ("table:FILE", "a TableType from a JSON file"),
    (
        "<expr>+read",
        "augment any of the above with a read operation",
    ),
];

fn args_of(spec: &str) -> (&str, Vec<usize>) {
    match spec.split_once(':') {
        None => (spec, Vec::new()),
        Some((name, rest)) => (
            name,
            rest.split(',')
                .filter_map(|a| a.trim().parse().ok())
                .collect(),
        ),
    }
}

/// Parses a type expression.
///
/// # Errors
///
/// Returns [`ParseTypeError`] for unknown names, bad arguments, or
/// unreadable table files.
pub fn parse_type(spec: &str) -> Result<DynType, ParseTypeError> {
    let spec = spec.trim();
    if let Some(inner) = spec.strip_suffix("+read") {
        let base = parse_type(inner)?;
        // WithRead is generic over a concrete type; go through the table
        // normal form to augment a dynamic one.
        let table = TableType::from_type(&*base);
        return Ok(Arc::new(WithRead::new(table)));
    }
    if let Some(path) = spec.strip_prefix("table:") {
        let json = std::fs::read_to_string(path)
            .map_err(|e| ParseTypeError::new(format!("cannot read {path}: {e}")))?;
        let table: TableType = serde_json::from_str(&json)
            .map_err(|e| ParseTypeError::new(format!("bad table JSON in {path}: {e}")))?;
        table
            .validate()
            .map_err(|e| ParseTypeError::new(format!("invalid table in {path}: {e}")))?;
        return Ok(Arc::new(table));
    }
    let (name, args) = args_of(spec);
    let arg = |i: usize, default: usize| args.get(i).copied().unwrap_or(default);
    let ty: DynType = match name {
        "register" | "reg" => Arc::new(Register::new(arg(0, 2))),
        "tas" | "test-and-set" => Arc::new(TestAndSet::new()),
        "faa" | "fetch-and-add" => Arc::new(FetchAndAdd::new(arg(0, 4))),
        "swap" => Arc::new(Swap::new(arg(0, 2))),
        "cas" | "compare-and-swap" => Arc::new(CompareAndSwap::new(arg(0, 3))),
        "sticky" | "sticky-bit" => Arc::new(StickyBit::new()),
        "consensus" => Arc::new(ConsensusObject::new()),
        "mconsensus" | "multi-consensus" => Arc::new(MultiConsensus::new(arg(0, 2))),
        "queue" => Arc::new(BoundedQueue::new(arg(0, 2), arg(1, 2))),
        "stack" => Arc::new(BoundedStack::new(arg(0, 2), arg(1, 2))),
        "tnn" => Arc::new(Tnn::new(arg(0, 5), arg(1, 2))),
        "team-counter" | "tc" => Arc::new(TeamCounter::new(arg(0, 4))),
        "xn" => {
            let n = arg(0, 4);
            return shipped_xn(n)
                .map(|x| Arc::new(x) as DynType)
                .ok_or_else(|| {
                    ParseTypeError::new(format!("no synthesized X_{n} is shipped (try xn:4)"))
                });
        }
        other => {
            return Err(ParseTypeError::new(format!(
                "unknown type `{other}` (run `rcn types` for the catalogue)"
            )))
        }
    };
    Ok(ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_catalogue_entry_with_defaults() {
        for spec in [
            "register",
            "tas",
            "faa",
            "swap",
            "cas",
            "sticky",
            "consensus",
            "mconsensus",
            "queue",
            "stack",
            "tnn",
            "team-counter",
            "xn",
        ] {
            assert!(parse_type(spec).is_ok(), "{spec}");
        }
    }

    #[test]
    fn parses_arguments() {
        let t = parse_type("tnn:4,3").unwrap();
        assert_eq!(t.name(), "T_(4,3)");
        let t = parse_type("register:5").unwrap();
        assert_eq!(t.num_values(), 5);
        let t = parse_type("queue:2,3").unwrap();
        assert_eq!(t.name(), "queue<2,3>");
    }

    #[test]
    fn read_suffix_augments() {
        let t = parse_type("queue:2,2+read").unwrap();
        assert!(t.is_readable());
        assert!(t.name().ends_with("+read"));
    }

    #[test]
    fn unknown_types_error_helpfully() {
        let err = match parse_type("warp-drive") {
            Err(e) => e,
            Ok(_) => panic!("warp-drive must not parse"),
        };
        assert!(err.to_string().contains("unknown type"));
    }

    #[test]
    fn missing_xn_errors() {
        assert!(parse_type("xn:7").is_err());
        assert!(parse_type("xn:4").is_ok());
    }

    #[test]
    fn table_file_round_trip() {
        let table = TableType::from_type(&TestAndSet::new());
        let path = std::env::temp_dir().join("rcn_cli_test_table.json");
        std::fs::write(&path, serde_json::to_string(&table).unwrap()).unwrap();
        let parsed = parse_type(&format!("table:{}", path.display())).unwrap();
        assert_eq!(parsed.name(), "test-and-set");
        std::fs::remove_file(&path).ok();
    }
}
