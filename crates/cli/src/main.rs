//! `rcn` — command-line interface to the recoverable-consensus toolkit.
//!
//! ```text
//! rcn types                          list the type catalogue
//! rcn classify <type> [--cap N]      consensus + recoverable consensus numbers
//! rcn witness <type> <n> [discerning|recording]
//!                                    find a witness and explain it
//! rcn dot <type> [--self-loops]      Graphviz state machine (Figure 3 style)
//! rcn table <type>                   transition table as text
//! rcn solve <type> <inputs…>         build + exhaustively verify a
//!                                    recoverable consensus protocol
//! rcn simulate-tnn <n> <n'> <inputs…> model-check the paper's §4 algorithm
//! ```

mod types;

use rcn_decide::{explain_discerning, explain_recording, SearchEngine};
use rcn_protocols::TnnRecoverable;
use rcn_spec::dot::{to_dot, to_table_text};
use rcn_valency::check_consensus;
use std::process::ExitCode;
use types::{parse_type, CATALOGUE};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `rcn help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut args = args.iter().map(String::as_str);
    match args.next() {
        None | Some("help" | "--help" | "-h") => {
            print_help();
            Ok(())
        }
        Some("types") => {
            println!("{:<18} description", "expression");
            for (expr, desc) in CATALOGUE {
                println!("{expr:<18} {desc}");
            }
            Ok(())
        }
        Some("classify") => cmd_classify(&args.collect::<Vec<_>>()),
        Some("compare") => cmd_compare(&args.collect::<Vec<_>>()),
        Some("witness") => cmd_witness(&args.collect::<Vec<_>>()),
        Some("dot") => cmd_dot(&args.collect::<Vec<_>>()),
        Some("table") => cmd_table(&args.collect::<Vec<_>>()),
        Some("solve") => cmd_solve(&args.collect::<Vec<_>>()),
        Some("simulate-tnn") => cmd_simulate_tnn(&args.collect::<Vec<_>>()),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

fn print_help() {
    println!("rcn — determining recoverable consensus numbers (Ovens, PODC 2024)");
    println!();
    println!("commands:");
    println!("  types                               list the type catalogue");
    println!("  classify <type> [--cap N]           CN and RCN of a type (default cap 4)");
    println!("  compare <type>… [--cap N]           hierarchy table over several types");
    println!("  witness <type> <n> [kind]           find + explain a discerning/recording witness");
    println!();
    println!("search options (classify, compare, witness):");
    println!(
        "  --threads N                         search worker threads (0 = all cores, default 1)"
    );
    println!("  --stats                             print search statistics (analyses, cache hits, wall time)");
    println!();
    println!("  dot <type> [--self-loops]           Graphviz state machine");
    println!("  table <type>                        transition table");
    println!("  solve <type> <input>…               build + verify recoverable consensus");
    println!("  simulate-tnn <n> <n'> <input>…      model-check the §4 recoverable algorithm");
}

fn flag_value<'a>(args: &[&'a str], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|&a| a == flag)
        .and_then(|i| args.get(i + 1).copied())
}

fn positional<'a>(args: &'a [&'a str]) -> impl Iterator<Item = &'a str> + 'a {
    let mut skip_next = false;
    args.iter().copied().filter(move |a| {
        if skip_next {
            skip_next = false;
            return false;
        }
        if a.starts_with("--") {
            skip_next = matches!(*a, "--cap" | "--threads"); // flags with values
            return false;
        }
        true
    })
}

/// Builds the search engine from `--threads` (default: 1 worker, i.e. the
/// plain sequential search; 0 = one worker per core).
fn engine_from_args(args: &[&str]) -> Result<SearchEngine, String> {
    let threads: usize = flag_value(args, "--threads")
        .map(|v| v.parse().map_err(|_| "threads must be a number"))
        .transpose()?
        .unwrap_or(1);
    Ok(SearchEngine::new(threads))
}

fn maybe_print_stats(args: &[&str], engine: &SearchEngine) {
    if args.contains(&"--stats") {
        let n = engine.threads();
        println!(
            "search stats        : {} ({n} thread{})",
            engine.stats(),
            if n == 1 { "" } else { "s" }
        );
    }
}

fn cmd_classify(args: &[&str]) -> Result<(), String> {
    let spec = positional(args)
        .next()
        .ok_or("usage: rcn classify <type> [--cap N] [--threads N] [--stats]")?;
    let cap: usize = flag_value(args, "--cap")
        .map(|v| v.parse().map_err(|_| "cap must be a number"))
        .transpose()?
        .unwrap_or(4);
    let ty = parse_type(spec).map_err(|e| e.to_string())?;
    let engine = engine_from_args(args)?;
    let c = engine.classify(&*ty, cap).map_err(|e| e.to_string())?;
    println!("type                : {}", c.type_name);
    println!("readable            : {}", c.readable);
    println!("discerning number   : {}", c.discerning.display_level());
    println!("recording number    : {}", c.recording.display_level());
    println!("consensus number    : {}", c.consensus_number);
    println!("recoverable CN      : {}", c.recoverable_consensus_number);
    if let Some(w) = &c.discerning.witness {
        println!("discerning witness  : {}", w.describe(&*ty));
    }
    if let Some(w) = &c.recording.witness {
        println!("recording witness   : {}", w.describe(&*ty));
    }
    maybe_print_stats(args, &engine);
    Ok(())
}

fn cmd_compare(args: &[&str]) -> Result<(), String> {
    let cap: usize = flag_value(args, "--cap")
        .map(|v| v.parse().map_err(|_| "cap must be a number"))
        .transpose()?
        .unwrap_or(4);
    let specs: Vec<&str> = positional(args).collect();
    if specs.is_empty() {
        return Err("usage: rcn compare <type>… [--cap N] [--threads N] [--stats]".into());
    }
    if cap < 2 {
        return Err("cap must be at least 2".into());
    }
    let types = specs
        .iter()
        .map(|spec| parse_type(spec).map_err(|e| e.to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    let engine = engine_from_args(args)?;
    let mut report = rcn_core::HierarchyReport::new(cap);
    report.add_all(&types, &engine).map_err(|e| e.to_string())?;
    println!("{report}");
    maybe_print_stats(args, &engine);
    Ok(())
}

fn cmd_witness(args: &[&str]) -> Result<(), String> {
    let mut pos = positional(args);
    let spec = pos.next().ok_or("usage: rcn witness <type> <n> [kind]")?;
    let n: usize = pos
        .next()
        .ok_or("usage: rcn witness <type> <n> [kind]")?
        .parse()
        .map_err(|_| "n must be a number ≥ 2")?;
    let kind = pos.next().unwrap_or("recording");
    let ty = parse_type(spec).map_err(|e| e.to_string())?;
    let engine = engine_from_args(args)?;
    match kind {
        "discerning" => match engine
            .find_discerning_witness(&*ty, n)
            .map_err(|e| e.to_string())?
        {
            Some(w) => print!("{}", explain_discerning(&*ty, &w)),
            None => println!("{} is NOT {n}-discerning (no witness exists)", ty.name()),
        },
        "recording" => match engine
            .find_recording_witness(&*ty, n)
            .map_err(|e| e.to_string())?
        {
            Some(w) => print!("{}", explain_recording(&*ty, &w)),
            None => println!("{} is NOT {n}-recording (no witness exists)", ty.name()),
        },
        other => {
            return Err(format!(
                "kind must be `discerning` or `recording`, got `{other}`"
            ))
        }
    }
    maybe_print_stats(args, &engine);
    Ok(())
}

fn cmd_dot(args: &[&str]) -> Result<(), String> {
    let spec = positional(args).next().ok_or("usage: rcn dot <type>")?;
    let ty = parse_type(spec).map_err(|e| e.to_string())?;
    print!("{}", to_dot(&*ty, args.contains(&"--self-loops")));
    Ok(())
}

fn cmd_table(args: &[&str]) -> Result<(), String> {
    let spec = positional(args).next().ok_or("usage: rcn table <type>")?;
    let ty = parse_type(spec).map_err(|e| e.to_string())?;
    println!("{}", to_table_text(&*ty));
    Ok(())
}

fn parse_inputs_slice(items: &[&str]) -> Result<Vec<u32>, String> {
    let inputs: Result<Vec<u32>, _> = items.iter().map(|s| s.parse::<u32>()).collect();
    let inputs = inputs.map_err(|_| "inputs must be 0/1".to_string())?;
    if inputs.len() < 2 {
        return Err("need at least 2 inputs".into());
    }
    if inputs.iter().any(|&x| x > 1) {
        return Err("inputs must be binary (0 or 1)".into());
    }
    Ok(inputs)
}

fn cmd_solve(args: &[&str]) -> Result<(), String> {
    let pos: Vec<&str> = positional(args).collect();
    let (spec, rest) = pos
        .split_first()
        .ok_or("usage: rcn solve <type> <input>…")?;
    let inputs = parse_inputs_slice(rest)?;
    let ty = parse_type(spec).map_err(|e| e.to_string())?;
    let sys = rcn_core::solve_recoverable(ty, inputs).map_err(|e| e.to_string())?;
    println!(
        "built {} over {} shared objects",
        sys.program().name(),
        sys.layout().len()
    );
    let report = check_consensus(&sys, 50_000_000).map_err(|e| e.to_string())?;
    println!(
        "exhaustive verification ({} configurations): {}",
        report.configs, report.verdict
    );
    if report.verdict.is_correct() {
        Ok(())
    } else {
        Err("verification failed".into())
    }
}

fn cmd_simulate_tnn(args: &[&str]) -> Result<(), String> {
    let pos: Vec<&str> = positional(args).collect();
    if pos.len() < 3 {
        return Err("usage: rcn simulate-tnn <n> <n'> <input>…".into());
    }
    let n: usize = pos[0].parse().map_err(|_| "n must be a number")?;
    let n_prime: usize = pos[1].parse().map_err(|_| "n' must be a number")?;
    let inputs = parse_inputs_slice(&pos[2..])?;
    let procs = inputs.len();
    let sys = TnnRecoverable::system(n, n_prime, inputs);
    let report = check_consensus(&sys, 50_000_000).map_err(|e| e.to_string())?;
    println!(
        "T_({n},{n_prime}) recoverable algorithm, {procs} processes: {} ({} configurations)",
        report.verdict, report.configs
    );
    if procs <= n_prime {
        println!("(≤ n' processes: the paper's Lemma 16 says this must be correct)");
    } else {
        println!("(> n' processes: Lemma 16 says a violation must exist)");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[&str]) -> Vec<String> {
        items.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn help_and_types_run() {
        assert!(run(&s(&["help"])).is_ok());
        assert!(run(&s(&["types"])).is_ok());
        assert!(run(&s(&[])).is_ok());
    }

    #[test]
    fn classify_runs_on_small_types() {
        assert!(run(&s(&["classify", "tas"])).is_ok());
        assert!(run(&s(&["classify", "register:2", "--cap", "3"])).is_ok());
    }

    #[test]
    fn classify_accepts_threads_and_stats_flags() {
        assert!(run(&s(&["classify", "tas", "--threads", "2", "--stats"])).is_ok());
        assert!(run(&s(&["classify", "tas", "--threads", "0"])).is_ok());
        assert!(run(&s(&[
            "witness",
            "sticky",
            "3",
            "recording",
            "--threads",
            "2",
            "--stats"
        ]))
        .is_ok());
        assert!(run(&s(&[
            "compare",
            "tas",
            "register:2",
            "--threads",
            "2",
            "--cap",
            "3",
            "--stats"
        ]))
        .is_ok());
        // A flag value must not be eaten as a positional type name.
        assert!(run(&s(&["classify", "--threads", "2", "tas"])).is_ok());
    }

    #[test]
    fn out_of_range_caps_error_instead_of_panicking() {
        assert!(run(&s(&["classify", "tas", "--cap", "25"])).is_err());
        assert!(run(&s(&["classify", "tas", "--cap", "1"])).is_err());
        assert!(run(&s(&["witness", "tas", "25", "recording"])).is_err());
        assert!(run(&s(&["compare", "tas", "--cap", "25"])).is_err());
        assert!(run(&s(&["classify", "tas", "--threads", "x"])).is_err());
    }

    #[test]
    fn compare_renders_a_table() {
        assert!(run(&s(&["compare", "tas", "register:2", "--cap", "3"])).is_ok());
        assert!(run(&s(&["compare"])).is_err());
    }

    #[test]
    fn witness_explains_both_kinds() {
        assert!(run(&s(&["witness", "tas", "2", "discerning"])).is_ok());
        assert!(run(&s(&["witness", "sticky", "2", "recording"])).is_ok());
        assert!(run(&s(&["witness", "tas", "2", "nonsense"])).is_err());
    }

    #[test]
    fn dot_and_table_render() {
        assert!(run(&s(&["dot", "tnn:3,1"])).is_ok());
        assert!(run(&s(&["table", "tas"])).is_ok());
    }

    #[test]
    fn solve_verifies_sticky_and_rejects_tas() {
        assert!(run(&s(&["solve", "sticky", "0", "1"])).is_ok());
        assert!(run(&s(&["solve", "tas", "0", "1"])).is_err());
    }

    #[test]
    fn simulate_tnn_runs() {
        assert!(run(&s(&["simulate-tnn", "4", "2", "0", "1"])).is_ok());
    }

    #[test]
    fn bad_commands_and_args_error() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["classify"])).is_err());
        assert!(run(&s(&["solve", "sticky", "0", "7"])).is_err());
        assert!(run(&s(&["solve", "sticky", "0"])).is_err());
    }
}
